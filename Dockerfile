# repro.serve deployment image (docs/SERVE.md).
#
# Stdlib-only by design: the engine, the HTTP front and the example specs
# need nothing beyond CPython, so the image is slim and there is no pip
# install step to drift.
FROM python:3.12-slim

WORKDIR /app

COPY src/ src/
COPY examples/ examples/
COPY docs/SERVE.md docs/SERVE.md
COPY docs/OBSERVABILITY.md docs/OBSERVABILITY.md

ENV PYTHONPATH=/app/src \
    PYTHONUNBUFFERED=1

# Self-check at build time: 20 interleaved sessions must stay byte-identical
# to a sequential reference with one front-end compile and a clean shutdown.
RUN python -m repro.serve --smoke 20

EXPOSE 8070

# Liveness probes /healthz; Prometheus scrapes GET /metrics on the same
# port (text exposition 0.0.4, see docs/OBSERVABILITY.md) — the
# healthcheck deliberately does not hit /metrics, a scrape is not a
# liveness signal.
HEALTHCHECK --interval=30s --timeout=5s --start-period=5s \
    CMD python -c "import urllib.request; urllib.request.urlopen('http://127.0.0.1:8070/healthz', timeout=4)"

CMD ["python", "-m", "repro.serve", "--host", "0.0.0.0", "--port", "8070"]
