"""Simulation substrate: event scheduling, machines, networks and metrics.

This package stands in for the paper's hardware and operating-system
environment — the 32-processor KSR1 under OSF/1, the Sun/DEC client
workstations and the FDDI campus network — with explicit, tunable cost
models.  See DESIGN.md, Section 2 (substitutions) for the rationale.
"""

from .engine import EventHandle, EventScheduler
from .machine import (
    Cluster,
    CostModel,
    Machine,
    Processor,
    ksr1,
    paper_environment,
    workstation,
)
from .metrics import ExecutionMetrics, LatencySeries, mean, percentile, std_dev
from .network import (
    FDDI_PROFILE,
    LOSSY_PROFILE,
    Datagram,
    DatagramNetwork,
    LinkProfile,
    NetworkStats,
    ReliablePipe,
)

__all__ = [
    "Cluster",
    "CostModel",
    "Datagram",
    "DatagramNetwork",
    "EventHandle",
    "EventScheduler",
    "ExecutionMetrics",
    "FDDI_PROFILE",
    "LOSSY_PROFILE",
    "LatencySeries",
    "LinkProfile",
    "Machine",
    "NetworkStats",
    "Processor",
    "ReliablePipe",
    "ksr1",
    "mean",
    "paper_environment",
    "percentile",
    "std_dev",
    "workstation",
]
