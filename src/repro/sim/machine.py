"""Simulated machines: processors and the cost model.

The paper's server runs on a 32-processor KSR1 under OSF/1; its clients run on
single-processor Sun and DEC workstations.  We stand in for that hardware with
an explicit cost model so the *relative* effects the paper measures —
parallel speedup, synchronisation losses, context-switch overhead when modules
share a processor, and scheduler overhead — are reproducible and tunable.

All costs are in abstract "work units"; the executor treats one unit of
transition cost as the baseline.  Nothing in the reproduction depends on the
absolute scale, only on ratios (e.g. synchronisation cost relative to
per-transition processing cost), which is exactly the regime the paper's
Section 5 discusses.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional


@dataclass(frozen=True)
class CostModel:
    """Knobs of the simulated execution platform.

    Attributes
    ----------
    transition_cost_scale:
        Multiplier applied to each transition's declared ``cost``; modelling
        faster/slower per-PDU processing (the paper's "protocols with only
        small processing times" correspond to a small scale).
    sync_cost:
        Cost charged to the *sending* execution unit whenever an interaction
        crosses execution-unit boundaries (thread synchronisation: mutexes,
        condition variables and cache-line migration on the KSR1 ring).  The
        default of 3x the baseline transition cost is calibrated so that the
        Section 5.1 experiment (two connections, tiny P-Data units, kernel
        layers only) lands in the paper's reported 1.4-2.0 speedup band; see
        EXPERIMENTS.md.
    intra_unit_message_cost:
        Cost of passing an interaction between modules that share a unit
        (a queue append without locking); normally much smaller than
        ``sync_cost``.
    context_switch_cost:
        Charged per extra runnable unit sharing a processor within a round —
        the loss the paper's grouping strategy avoids.
    scheduler_cost_per_module:
        Per-module cost of one pass of the Estelle scheduler (transition
        selection bookkeeping).  A centralised scheduler pays this serially
        over *all* modules; the paper measured up to 80% of runtime spent
        here.  A decentralised scheduler pays it per unit, in parallel.
    dispatch_scan_cost:
        Cost of examining one candidate transition during selection; the
        hard-coded strategy scans the full transition list, the table-driven
        strategy scans only the current state's row.
    remote_message_cost:
        Extra cost when an interaction crosses simulated *machines* (client to
        server); stands in for transport-layer latency in work-unit terms.
    """

    transition_cost_scale: float = 1.0
    sync_cost: float = 3.0
    intra_unit_message_cost: float = 0.05
    context_switch_cost: float = 0.8
    scheduler_cost_per_module: float = 0.25
    dispatch_scan_cost: float = 0.08
    remote_message_cost: float = 2.0

    def scaled(self, **overrides: float) -> "CostModel":
        """Return a copy with some knobs replaced (convenience for sweeps)."""
        return replace(self, **overrides)


@dataclass
class Processor:
    """A single processor of a simulated machine.

    ``busy_time`` accumulates the work executed on this processor across all
    rounds; the executor uses per-round accounting, this is the lifetime sum
    used for utilisation metrics.
    """

    index: int
    busy_time: float = 0.0
    executed_transitions: int = 0
    context_switches: int = 0

    def reset(self) -> None:
        self.busy_time = 0.0
        self.executed_transitions = 0
        self.context_switches = 0


class Machine:
    """A simulated shared-memory multiprocessor (or a uniprocessor workstation)."""

    def __init__(
        self,
        name: str,
        processor_count: int,
        cost_model: Optional[CostModel] = None,
    ):
        if processor_count < 1:
            raise ValueError("a machine needs at least one processor")
        self.name = name
        self.processors = [Processor(i) for i in range(processor_count)]
        self.cost_model = cost_model or CostModel()

    @property
    def processor_count(self) -> int:
        return len(self.processors)

    def reset(self) -> None:
        for processor in self.processors:
            processor.reset()

    def total_busy_time(self) -> float:
        return sum(p.busy_time for p in self.processors)

    def utilisation(self, elapsed: float) -> float:
        """Mean processor utilisation over ``elapsed`` simulated time."""
        if elapsed <= 0:
            return 0.0
        return self.total_busy_time() / (elapsed * self.processor_count)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Machine({self.name!r}, processors={self.processor_count})"


def ksr1(processor_count: int = 32, cost_model: Optional[CostModel] = None) -> Machine:
    """The paper's server platform: a KSR1 with (up to) 32 processors."""
    return Machine("ksr1", processor_count, cost_model)


def workstation(name: str = "sun-1", cost_model: Optional[CostModel] = None) -> Machine:
    """A single-processor UNIX workstation (the paper's client platform)."""
    return Machine(name, 1, cost_model)


class Cluster:
    """A named collection of machines, addressed by the placement locations
    used in :class:`repro.estelle.Specification`.

    The paper's experimental environment (Fig. 2) is one KSR1 server machine
    plus several client workstations; :func:`paper_environment` builds it.
    """

    def __init__(self) -> None:
        self._machines: Dict[str, Machine] = {}

    def add(self, machine: Machine) -> Machine:
        if machine.name in self._machines:
            raise ValueError(f"machine {machine.name!r} already present in the cluster")
        self._machines[machine.name] = machine
        return machine

    def get(self, name: str) -> Machine:
        try:
            return self._machines[name]
        except KeyError as exc:
            raise KeyError(
                f"no machine named {name!r}; cluster has {sorted(self._machines)}"
            ) from exc

    def __contains__(self, name: str) -> bool:
        return name in self._machines

    def machines(self) -> List[Machine]:
        return list(self._machines.values())

    def reset(self) -> None:
        for machine in self._machines.values():
            machine.reset()


def paper_environment(
    client_count: int = 2,
    server_processors: int = 32,
    cost_model: Optional[CostModel] = None,
) -> Cluster:
    """The hardware environment of Fig. 2: one KSR1 plus client workstations."""
    cluster = Cluster()
    cluster.add(ksr1(server_processors, cost_model))
    for index in range(1, client_count + 1):
        cluster.add(workstation(f"client-ws-{index}", cost_model))
    return cluster
