"""A small discrete-event simulation engine.

The engine drives everything in the reproduction that needs a notion of
*time*: the simulated datagram network under the XMovie stream service, the
isochronous MTP sender, jitter buffers, and QoS monitoring.  The Estelle
runtime uses its own round-based cost accounting (see
:mod:`repro.runtime.executor`), but shares this clock abstraction when a
protocol stack and a media stream are simulated together.

The design is the classic event-list simulator: a priority queue of
``(time, sequence, callback)`` entries, a current-time cursor, and helpers for
periodic processes.  Determinism matters more than performance here — given
the same seed and the same schedule of events, a run always produces the same
trace, which the property-based tests rely on.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

EventCallback = Callable[[], None]


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)


class EventHandle:
    """Handle returned by :meth:`EventScheduler.schedule`; allows cancellation."""

    def __init__(self, event: _ScheduledEvent):
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class EventScheduler:
    """Deterministic discrete-event scheduler.

    Time is a float in abstract units; throughout the reproduction the
    convention is *milliseconds* for the stream/network simulation.
    """

    def __init__(self) -> None:
        self._queue: List[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self.now: float = 0.0
        self.processed_events = 0

    # -- scheduling --------------------------------------------------------------

    def schedule(
        self, delay: float, callback: EventCallback, label: str = ""
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule an event in the past (delay={delay})")
        event = _ScheduledEvent(
            time=self.now + delay,
            sequence=next(self._sequence),
            callback=callback,
            label=label,
        )
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_at(
        self, time: float, callback: EventCallback, label: str = ""
    ) -> EventHandle:
        """Schedule ``callback`` at an absolute simulation time.

        Strictly-past times raise, consistent with :meth:`schedule`'s
        negative-delay policy (silently clamping them to "now" would reorder
        causality without a trace); ``time == now`` is allowed and runs the
        callback on the next :meth:`step`.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule an event in the past (time={time}, now={self.now})"
            )
        return self.schedule(time - self.now, callback, label=label)

    def schedule_periodic(
        self,
        period: float,
        callback: EventCallback,
        count: Optional[int] = None,
        label: str = "",
    ) -> None:
        """Schedule ``callback`` every ``period`` units, ``count`` times (or forever).

        "Forever" in a terminating simulation means "until :meth:`run_until`'s
        horizon"; unbounded periodic events are only drained up to the horizon.
        """
        if period <= 0:
            raise ValueError("period must be positive")

        remaining = count

        def tick() -> None:
            nonlocal remaining
            callback()
            if remaining is not None:
                remaining -= 1
                if remaining <= 0:
                    return
            self.schedule(period, tick, label=label)

        self.schedule(period, tick, label=label)

    # -- execution ---------------------------------------------------------------

    def _pop_next(self) -> Optional[_ScheduledEvent]:
        while self._queue:
            event = heapq.heappop(self._queue)
            if not event.cancelled:
                return event
        return None

    def peek_next_time(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or None."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Process a single event; returns False when the queue is empty."""
        event = self._pop_next()
        if event is None:
            return False
        self.now = event.time
        event.callback()
        self.processed_events += 1
        return True

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains (or ``max_events`` is hit)."""
        processed = 0
        while max_events is None or processed < max_events:
            if not self.step():
                break
            processed += 1
        return processed

    def run_until(self, horizon: float) -> int:
        """Run events with time <= ``horizon``; advances ``now`` to the horizon."""
        processed = 0
        while True:
            next_time = self.peek_next_time()
            if next_time is None or next_time > horizon:
                break
            self.step()
            processed += 1
        self.now = max(self.now, horizon)
        return processed

    def pending(self) -> int:
        """Number of pending, non-cancelled events."""
        return sum(1 for e in self._queue if not e.cancelled)

    def reset(self) -> None:
        """Clear the queue and rewind the clock (for test isolation)."""
        self._queue.clear()
        self.now = 0.0
        self.processed_events = 0
