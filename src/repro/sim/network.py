"""Simulated datagram network: links, FDDI-like rings and UDP/IP delivery.

The paper runs the XMovie Movie Transmission Protocol "directly on top of UDP,
IP and FDDI".  We model that path as a best-effort datagram service over a
shared-medium link with configurable bandwidth, propagation delay, delay
jitter and loss.  The control path (OSI transport) uses a separate, reliable
ordered pipe built on the same link abstraction (see
:mod:`repro.osi.transport`).

The network is driven by the shared :class:`repro.sim.engine.EventScheduler`;
delivery is asynchronous (a callback fires on the receiver when a datagram
arrives) which is exactly the shape of the socket layer the original system
programmed against.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .engine import EventScheduler

DeliveryCallback = Callable[["Datagram"], None]

_datagram_counter = itertools.count(1)


@dataclass(frozen=True)
class Datagram:
    """A best-effort network datagram (UDP-like)."""

    source: str
    destination: str
    payload: bytes
    port: int = 0
    uid: int = field(default_factory=lambda: next(_datagram_counter))
    sent_at: float = 0.0

    @property
    def size(self) -> int:
        return len(self.payload)


@dataclass
class LinkProfile:
    """Transmission characteristics of a (shared) link.

    ``bandwidth`` is in bytes per millisecond (so 12.5 corresponds roughly to
    a 100 Mbit/s FDDI ring), ``latency`` and ``jitter`` in milliseconds, and
    ``loss_rate`` is a probability in [0, 1] applied per datagram.
    """

    bandwidth: float = 12.5 * 1024
    latency: float = 0.5
    jitter: float = 0.0
    loss_rate: float = 0.0

    def transmission_delay(self, size: int) -> float:
        if self.bandwidth <= 0:
            return 0.0
        return size / self.bandwidth

    def validate(self) -> None:
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError("loss_rate must be within [0, 1]")
        if self.latency < 0 or self.jitter < 0 or self.bandwidth < 0:
            raise ValueError("latency, jitter and bandwidth must be non-negative")


#: Approximation of the paper's FDDI campus ring: 100 Mbit/s, sub-millisecond
#: propagation, negligible loss.
FDDI_PROFILE = LinkProfile(bandwidth=12.5 * 1024, latency=0.3, jitter=0.05, loss_rate=0.0)

#: A congested best-effort path used by the loss/jitter experiments.
LOSSY_PROFILE = LinkProfile(bandwidth=4 * 1024, latency=2.0, jitter=1.5, loss_rate=0.02)


@dataclass
class NetworkStats:
    """Counters kept per network instance."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.sent if self.sent else 1.0


class DatagramNetwork:
    """Best-effort datagram delivery between named hosts.

    Hosts register a receive callback per (host, port).  Sending never blocks;
    datagrams are delivered through the event scheduler after the link's
    transmission + propagation delay, may be reordered by jitter and may be
    dropped according to the loss rate.  All randomness is drawn from a
    dedicated ``random.Random`` seeded at construction, keeping runs
    reproducible.
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        profile: Optional[LinkProfile] = None,
        seed: int = 7,
    ):
        self.scheduler = scheduler
        self.profile = profile or FDDI_PROFILE
        self.profile.validate()
        self._rng = random.Random(seed)
        self._receivers: Dict[Tuple[str, int], DeliveryCallback] = {}
        self.stats = NetworkStats()
        self.in_flight = 0

    # -- host management ----------------------------------------------------------

    def bind(self, host: str, port: int, callback: DeliveryCallback) -> None:
        """Register the receive callback for ``host``:``port``."""
        key = (host, port)
        if key in self._receivers:
            raise ValueError(f"{host}:{port} is already bound")
        self._receivers[key] = callback

    def unbind(self, host: str, port: int) -> None:
        self._receivers.pop((host, port), None)

    def is_bound(self, host: str, port: int) -> bool:
        return (host, port) in self._receivers

    # -- sending --------------------------------------------------------------------

    def send(self, source: str, destination: str, payload: bytes, port: int = 0) -> Datagram:
        """Send a datagram; returns it (even if it will eventually be dropped)."""
        datagram = Datagram(
            source=source,
            destination=destination,
            payload=bytes(payload),
            port=port,
            sent_at=self.scheduler.now,
        )
        self.stats.sent += 1
        self.stats.bytes_sent += datagram.size

        if self._rng.random() < self.profile.loss_rate:
            self.stats.dropped += 1
            return datagram

        delay = (
            self.profile.latency
            + self.profile.transmission_delay(datagram.size)
            + (self._rng.uniform(0.0, self.profile.jitter) if self.profile.jitter else 0.0)
        )
        self.in_flight += 1
        self.scheduler.schedule(
            delay, lambda: self._deliver(datagram), label=f"deliver#{datagram.uid}"
        )
        return datagram

    def _deliver(self, datagram: Datagram) -> None:
        self.in_flight -= 1
        callback = self._receivers.get((datagram.destination, datagram.port))
        if callback is None:
            # Matching real UDP semantics: datagrams to unbound ports vanish.
            self.stats.dropped += 1
            return
        self.stats.delivered += 1
        self.stats.bytes_delivered += datagram.size
        callback(datagram)


class ReliablePipe:
    """A reliable, ordered, bidirectional byte-message pipe between two hosts.

    This is the "simulated transport layer pipe" of the paper's Section 5.1
    test environment: the control stack (session/presentation/MCAM) runs on
    top of it.  Reliability is modelled directly (no retransmission machinery)
    because the underlying campus FDDI link in the original setup was
    effectively loss-free for the low-rate control traffic.
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        latency: float = 0.5,
        per_byte_delay: float = 0.0001,
    ):
        self.scheduler = scheduler
        self.latency = latency
        self.per_byte_delay = per_byte_delay
        self._endpoints: Dict[str, Callable[[str, bytes], None]] = {}
        self.messages_carried = 0
        self.bytes_carried = 0
        self._sequence = itertools.count()
        self._last_delivery_time: Dict[str, float] = {}

    def attach(self, endpoint: str, callback: Callable[[str, bytes], None]) -> None:
        """Attach an endpoint; ``callback(sender, payload)`` runs on delivery."""
        if endpoint in self._endpoints:
            raise ValueError(f"endpoint {endpoint!r} already attached to the pipe")
        self._endpoints[endpoint] = callback

    def detach(self, endpoint: str) -> None:
        self._endpoints.pop(endpoint, None)

    def send(self, sender: str, receiver: str, payload: bytes) -> None:
        """Deliver ``payload`` to ``receiver`` after the pipe delay, in order."""
        if receiver not in self._endpoints:
            raise ValueError(f"unknown pipe endpoint {receiver!r}")
        delay = self.latency + self.per_byte_delay * len(payload)
        # In-order delivery: never deliver earlier than the previous message
        # to the same receiver.
        earliest = self._last_delivery_time.get(receiver, 0.0)
        delivery_time = max(self.scheduler.now + delay, earliest)
        self._last_delivery_time[receiver] = delivery_time
        self.messages_carried += 1
        self.bytes_carried += len(payload)
        callback = self._endpoints[receiver]
        self.scheduler.schedule_at(
            delivery_time,
            lambda: callback(sender, bytes(payload)),
            label=f"pipe->{receiver}",
        )
