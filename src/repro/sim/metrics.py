"""Execution metrics collected by the runtime and the stream simulator.

Two kinds of metrics matter in the paper's evaluation:

* *Protocol execution metrics* (Section 5): elapsed simulated time, speedup of
  a parallel configuration relative to the sequential one, the share of time
  spent in the Estelle scheduler, synchronisation losses, and context-switch
  losses.  These are accumulated in :class:`ExecutionMetrics`.
* *Stream quality metrics* (Section 2 / Table 1): throughput, end-to-end
  delay, delay jitter and loss of the continuous-media stream.  Those live in
  :mod:`repro.stream.qos`; this module only provides the small statistics
  helpers shared by both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    return sum(values) / len(values) if values else 0.0


def std_dev(values: Sequence[float]) -> float:
    """Population standard deviation (0.0 for fewer than two samples)."""
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile; ``fraction`` in [0, 1]."""
    if not values:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


#: the ways a round loop can stop (``ExecutionMetrics.stop_reason``):
#: ``"quiescent"`` — no transition enabled and no delay timer pending;
#: ``"budget"`` — the ``max_rounds`` budget ran out with work still enabled;
#: ``"deadline"`` — the simulated clock reached the caller's deadline.
STOP_REASONS = ("quiescent", "budget", "deadline")


@dataclass
class ExecutionMetrics:
    """Accumulated cost breakdown of one execution of a specification."""

    elapsed_time: float = 0.0
    rounds: int = 0
    transitions_fired: int = 0
    external_steps: int = 0
    transition_time: float = 0.0
    dispatch_time: float = 0.0
    scheduler_time: float = 0.0
    sync_time: float = 0.0
    context_switch_time: float = 0.0
    messages_intra_unit: int = 0
    messages_cross_unit: int = 0
    messages_cross_machine: int = 0
    per_processor_busy: Dict[str, float] = field(default_factory=dict)
    round_makespans: List[float] = field(default_factory=list)
    #: why the most recent ``run()`` stopped (one of :data:`STOP_REASONS`,
    #: or ``None`` before the first run).  ``"quiescent"`` is the only value
    #: that means the specification has nothing left to do; a long-running
    #: service uses the distinction to report session health honestly
    #: instead of conflating "done" with "ran out of budget".
    stop_reason: Optional[str] = None

    # -- derived quantities -------------------------------------------------------

    @property
    def total_work(self) -> float:
        """Sum of all accounted work, regardless of where it ran."""
        return (
            self.transition_time
            + self.dispatch_time
            + self.scheduler_time
            + self.sync_time
            + self.context_switch_time
        )

    @property
    def scheduler_share(self) -> float:
        """Fraction of total work spent in the Estelle scheduler (paper: up to 0.8)."""
        total = self.total_work
        return self.scheduler_time / total if total > 0 else 0.0

    @property
    def overhead_share(self) -> float:
        """Fraction of work that is pure overhead (scheduler + sync + switches)."""
        total = self.total_work
        if total <= 0:
            return 0.0
        return (self.scheduler_time + self.sync_time + self.context_switch_time) / total

    def utilisation(self, processor_count: int) -> float:
        """Mean processor utilisation implied by the elapsed time."""
        if self.elapsed_time <= 0 or processor_count <= 0:
            return 0.0
        return self.total_work / (self.elapsed_time * processor_count)

    def speedup_against(self, baseline: "ExecutionMetrics") -> float:
        """Speedup of this run relative to ``baseline`` (baseline / this)."""
        if self.elapsed_time <= 0:
            return float("inf")
        return baseline.elapsed_time / self.elapsed_time

    @property
    def work_utilisation(self) -> float:
        """Accounted work per unit of elapsed simulated time.

        ``utilisation(n)`` divided by the processor count — reportable
        without knowing the cluster shape, which is all ``summary()`` has.
        A value near the processor count means the cluster was saturated;
        near zero means rounds were mostly idle waiting on one busy unit.
        """
        if self.elapsed_time <= 0:
            return 0.0
        return self.total_work / self.elapsed_time

    def summary(self) -> Dict[str, Any]:
        """A flat dictionary used by the benchmark harness's report tables.

        All values are floats except ``stop_reason`` (one of
        :data:`STOP_REASONS`, or ``""`` before the first run) — reports
        that aggregate runs must not conflate "quiescent" (the protocol
        finished) with "budget" (the loop was cut off mid-flight).
        """
        return {
            "elapsed_time": self.elapsed_time,
            "rounds": float(self.rounds),
            "transitions_fired": float(self.transitions_fired),
            "external_steps": float(self.external_steps),
            "transition_time": self.transition_time,
            "dispatch_time": self.dispatch_time,
            "scheduler_time": self.scheduler_time,
            "sync_time": self.sync_time,
            "context_switch_time": self.context_switch_time,
            "scheduler_share": self.scheduler_share,
            "overhead_share": self.overhead_share,
            "work_utilisation": self.work_utilisation,
            "stop_reason": self.stop_reason or "",
        }


@dataclass
class LatencySeries:
    """A growing series of latency samples with summary statistics.

    Used by the MCAM client to record per-operation response times and by the
    MTP receiver for packet delays.
    """

    samples: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        if value < 0:
            raise ValueError("latency samples must be non-negative")
        self.samples.append(value)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return mean(self.samples)

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def jitter(self) -> float:
        """Mean absolute difference between consecutive samples (RFC-3550 style)."""
        if len(self.samples) < 2:
            return 0.0
        diffs = [
            abs(b - a) for a, b in zip(self.samples, self.samples[1:])
        ]
        return mean(diffs)

    def percentile(self, fraction: float) -> float:
        return percentile(self.samples, fraction)

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "p95": self.percentile(0.95),
            "jitter": self.jitter,
        }
