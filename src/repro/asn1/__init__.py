"""ASN.1 (ISO 8824) types, BER (ISO 8825) transfer syntax and a small compiler.

The MCAM PDUs are specified in ASN.1 and carried in BER through the
presentation layer; :mod:`repro.mcam.pdus` builds its PDU schemas on top of
this package.  :mod:`repro.asn1.parallel` reproduces the paper's negative
result on parallel encoding/decoding.
"""

from .ber import BerError, decode, encode, encoded_size
from .compiler import Asn1Module, Asn1SyntaxError, compile_module
from .parallel import (
    ParallelEncodingModel,
    SequentialBatchCodec,
    ThreadedBatchCodec,
    model_parallel_encoding_time,
)
from .types import (
    Asn1Error,
    Asn1Type,
    Asn1ValidationError,
    Boolean,
    Choice,
    Component,
    Enumerated,
    IA5String,
    Integer,
    Null,
    OctetString,
    Sequence,
    SequenceOf,
    Tag,
    Tagged,
)

__all__ = [
    "Asn1Error",
    "Asn1Module",
    "Asn1SyntaxError",
    "Asn1Type",
    "Asn1ValidationError",
    "BerError",
    "Boolean",
    "Choice",
    "Component",
    "Enumerated",
    "IA5String",
    "Integer",
    "Null",
    "OctetString",
    "ParallelEncodingModel",
    "Sequence",
    "SequenceOf",
    "SequentialBatchCodec",
    "Tag",
    "Tagged",
    "ThreadedBatchCodec",
    "compile_module",
    "decode",
    "encode",
    "encoded_size",
    "model_parallel_encoding_time",
]
