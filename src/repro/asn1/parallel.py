"""Parallel ASN.1 encoding/decoding (the paper's negative result).

Footnote 3 of the paper: *"One might expect performance gains for parallel
encoding/decoding.  In [12], we show that by parallelization in this area, we
do not obtain better performance."*  The reason is that per-PDU encoding work
is small compared to the cost of distributing work items to workers and
collecting the results.

This module provides two ways to reproduce that finding:

* :class:`ThreadedBatchCodec` — a real ``ThreadPoolExecutor``-based
  batch encoder.  Measured wall-clock time (the pytest-benchmark in
  ``benchmarks/bench_asn1_parallel.py``) shows no speedup over the sequential
  path, matching the paper.
* :func:`model_parallel_encoding_time` — an analytic cost model with explicit
  per-item dispatch overhead, used to show *why* the speedup is absent: once
  the per-item coordination cost is of the same order as the per-item encoding
  cost, added workers stop helping.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, List, Sequence, Tuple

from .ber import decode, encode
from .types import Asn1Type


class SequentialBatchCodec:
    """Encode/decode a batch of values one after the other (the baseline)."""

    name = "sequential"

    def encode_batch(self, schema: Asn1Type, values: Sequence[Any]) -> List[bytes]:
        return [encode(schema, value) for value in values]

    def decode_batch(self, schema: Asn1Type, blobs: Sequence[bytes]) -> List[Any]:
        return [decode(schema, blob) for blob in blobs]


class ThreadedBatchCodec:
    """Encode/decode a batch using a pool of worker threads.

    The interface matches :class:`SequentialBatchCodec` so benchmarks can swap
    the two.  Chunking is by contiguous slices (one chunk per worker), which
    is the most favourable arrangement for the parallel side — and it still
    does not win, which is the point of the experiment.
    """

    def __init__(self, workers: int = 2):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.name = f"threaded-{workers}"

    def _chunks(self, items: Sequence[Any]) -> List[Sequence[Any]]:
        if not items:
            return []
        size = max(1, (len(items) + self.workers - 1) // self.workers)
        return [items[i : i + size] for i in range(0, len(items), size)]

    def encode_batch(self, schema: Asn1Type, values: Sequence[Any]) -> List[bytes]:
        chunks = self._chunks(values)
        if len(chunks) <= 1:
            return [encode(schema, value) for value in values]
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            results = pool.map(
                lambda chunk: [encode(schema, value) for value in chunk], chunks
            )
            return [blob for chunk_result in results for blob in chunk_result]

    def decode_batch(self, schema: Asn1Type, blobs: Sequence[bytes]) -> List[Any]:
        chunks = self._chunks(blobs)
        if len(chunks) <= 1:
            return [decode(schema, blob) for blob in blobs]
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            results = pool.map(
                lambda chunk: [decode(schema, blob) for blob in chunk], chunks
            )
            return [value for chunk_result in results for value in chunk_result]


@dataclass(frozen=True)
class ParallelEncodingModel:
    """Analytic model of parallel PDU encoding on a shared-memory machine.

    ``per_item_cost`` is the work to encode one PDU; ``dispatch_cost`` is the
    per-item cost of handing the item to a worker and collecting the result
    (queue locking, cache migration); ``chunk_setup_cost`` is a fixed cost per
    worker per batch.
    """

    per_item_cost: float = 1.0
    dispatch_cost: float = 1.0
    chunk_setup_cost: float = 2.0

    def sequential_time(self, items: int) -> float:
        return self.per_item_cost * items

    def parallel_time(self, items: int, workers: int) -> float:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if workers == 1 or items == 0:
            return self.sequential_time(items)
        per_worker_items = -(-items // workers)  # ceil division
        compute = per_worker_items * self.per_item_cost
        coordination = items * self.dispatch_cost / workers + self.chunk_setup_cost
        # The serial part: results are collected by the single caller thread.
        collection = items * self.dispatch_cost
        return compute + coordination + collection

    def speedup(self, items: int, workers: int) -> float:
        parallel = self.parallel_time(items, workers)
        if parallel <= 0:
            return float("inf")
        return self.sequential_time(items) / parallel


def model_parallel_encoding_time(
    items: int, workers: int, model: ParallelEncodingModel | None = None
) -> Tuple[float, float, float]:
    """Return (sequential time, parallel time, speedup) under the cost model."""
    model = model or ParallelEncodingModel()
    sequential = model.sequential_time(items)
    parallel = model.parallel_time(items, workers)
    speedup = sequential / parallel if parallel > 0 else float("inf")
    return sequential, parallel, speedup
