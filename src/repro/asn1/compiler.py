"""A small ASN.1 "compiler": textual ASN.1 modules → schema objects.

The paper had to implement an ASN.1-to-C++ translator so the MCAM PDU
definitions could be used from the Estelle specification ([9] in the paper).
This module is the Python counterpart: it parses the subset of ASN.1 (ISO
8824) notation that the MCAM PDUs use and produces the schema objects of
:mod:`repro.asn1.types`, ready for BER encoding.

Supported notation::

    ModuleName DEFINITIONS ::= BEGIN
        MovieId   ::= INTEGER
        Title     ::= IA5String
        Status    ::= ENUMERATED { success(0), failure(1) }
        Attribute ::= SEQUENCE {
            name  IA5String,
            value IA5String OPTIONAL,
            kind  INTEGER DEFAULT 0
        }
        AttributeList ::= SEQUENCE OF Attribute
        Pdu ::= CHOICE { request Attribute, status Status }
    END

Comments (``-- ...`` to end of line) are ignored.  Type references may appear
before their definition; resolution happens at the end of the module.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Tuple

from .types import (
    Asn1Error,
    Asn1Type,
    Boolean,
    Choice,
    Component,
    Enumerated,
    IA5String,
    Integer,
    Null,
    OctetString,
    Sequence,
    SequenceOf,
)


class Asn1SyntaxError(Asn1Error):
    """The ASN.1 source text could not be parsed."""


_TOKEN_RE = re.compile(
    r"""
    (?P<comment>--[^\n]*)
  | (?P<assign>::=)
  | (?P<lbrace>\{)
  | (?P<rbrace>\})
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<number>-?\d+)
  | (?P<string>"[^"]*")
  | (?P<word>[A-Za-z][A-Za-z0-9-]*)
  | (?P<space>\s+)
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "DEFINITIONS",
    "BEGIN",
    "END",
    "INTEGER",
    "BOOLEAN",
    "NULL",
    "OCTET",
    "STRING",
    "IA5String",
    "ENUMERATED",
    "SEQUENCE",
    "CHOICE",
    "OF",
    "OPTIONAL",
    "DEFAULT",
    "TRUE",
    "FALSE",
    "SIZE",
}


def _tokenise(text: str) -> List[str]:
    tokens: List[str] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise Asn1SyntaxError(
                f"unexpected character {text[position]!r} at offset {position}"
            )
        position = match.end()
        kind = match.lastgroup
        if kind in ("space", "comment"):
            continue
        tokens.append(match.group())
    return tokens


class _Reference(Asn1Type):
    """Placeholder for a type referenced before its definition."""

    def __init__(self, name: str):
        self.name = name

    def validate(self, value: Any) -> None:  # pragma: no cover - replaced on resolve
        raise Asn1Error(f"unresolved type reference {self.name!r}")


class Asn1Module:
    """A compiled ASN.1 module: a registry of named types."""

    def __init__(self, name: str, types: Dict[str, Asn1Type]):
        self.name = name
        self.types = dict(types)

    def get(self, name: str) -> Asn1Type:
        try:
            return self.types[name]
        except KeyError as exc:
            raise Asn1Error(
                f"module {self.name!r} defines no type {name!r}; "
                f"defined: {sorted(self.types)}"
            ) from exc

    def __contains__(self, name: str) -> bool:
        return name in self.types

    def type_names(self) -> List[str]:
        return sorted(self.types)


class _Parser:
    def __init__(self, tokens: List[str]):
        self.tokens = tokens
        self.position = 0
        self.definitions: Dict[str, Asn1Type] = {}

    # -- token helpers ---------------------------------------------------------------

    def peek(self) -> Optional[str]:
        return self.tokens[self.position] if self.position < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise Asn1SyntaxError("unexpected end of input")
        self.position += 1
        return token

    def expect(self, expected: str) -> str:
        token = self.next()
        if token != expected:
            raise Asn1SyntaxError(f"expected {expected!r}, found {token!r}")
        return token

    # -- grammar ---------------------------------------------------------------------

    def parse_module(self) -> Asn1Module:
        module_name = self.next()
        self.expect("DEFINITIONS")
        self.expect("::=")
        self.expect("BEGIN")
        while self.peek() != "END":
            self.parse_assignment()
        self.expect("END")
        if self.peek() is not None:
            raise Asn1SyntaxError(f"trailing tokens after END: {self.peek()!r}")
        self._resolve_references()
        return Asn1Module(module_name, self.definitions)

    def parse_assignment(self) -> None:
        name = self.next()
        if not name[0].isupper():
            raise Asn1SyntaxError(f"type names must start upper-case: {name!r}")
        self.expect("::=")
        self.definitions[name] = self.parse_type(type_name=name)

    def parse_type(self, type_name: str = "") -> Asn1Type:
        token = self.next()
        if token == "INTEGER":
            return Integer()
        if token == "BOOLEAN":
            return Boolean()
        if token == "NULL":
            return Null()
        if token == "OCTET":
            self.expect("STRING")
            return OctetString(max_size=self._parse_optional_size())
        if token == "IA5String":
            return IA5String(max_size=self._parse_optional_size())
        if token == "ENUMERATED":
            return self.parse_enumerated()
        if token == "SEQUENCE":
            if self.peek() == "OF":
                self.next()
                element = self.parse_type()
                return SequenceOf(element, name=type_name or f"SEQUENCE OF {element.name}")
            return self.parse_sequence(type_name or "SEQUENCE")
        if token == "CHOICE":
            return self.parse_choice(type_name or "CHOICE")
        if token[0].isupper() and token not in _KEYWORDS:
            return _Reference(token)
        raise Asn1SyntaxError(f"unexpected token {token!r} while parsing a type")

    def _parse_optional_size(self) -> Optional[int]:
        if self.peek() != "(":
            return None
        self.expect("(")
        self.expect("SIZE")
        self.expect("(")
        size = int(self.next())
        self.expect(")")
        self.expect(")")
        return size

    def parse_enumerated(self) -> Enumerated:
        self.expect("{")
        alternatives: Dict[str, int] = {}
        while True:
            name = self.next()
            self.expect("(")
            number = int(self.next())
            self.expect(")")
            alternatives[name] = number
            if self.peek() == ",":
                self.next()
                continue
            break
        self.expect("}")
        return Enumerated(alternatives)

    def parse_sequence(self, name: str) -> Sequence:
        self.expect("{")
        components: List[Component] = []
        while True:
            field_name = self.next()
            field_type = self.parse_type()
            optional = False
            default: Any = None
            if self.peek() == "OPTIONAL":
                self.next()
                optional = True
            elif self.peek() == "DEFAULT":
                self.next()
                default = self._parse_default_value(field_type)
            components.append(
                Component(name=field_name, type=field_type, optional=optional, default=default)
            )
            if self.peek() == ",":
                self.next()
                continue
            break
        self.expect("}")
        return Sequence(name, components)

    def _parse_default_value(self, field_type: Asn1Type) -> Any:
        token = self.next()
        if token == "TRUE":
            return True
        if token == "FALSE":
            return False
        if token.startswith('"'):
            return token.strip('"')
        try:
            return int(token)
        except ValueError as exc:
            raise Asn1SyntaxError(f"unsupported DEFAULT value {token!r}") from exc

    def parse_choice(self, name: str) -> Choice:
        self.expect("{")
        alternatives: List[Tuple[str, Asn1Type]] = []
        while True:
            alternative_name = self.next()
            alternative_type = self.parse_type()
            alternatives.append((alternative_name, alternative_type))
            if self.peek() == ",":
                self.next()
                continue
            break
        self.expect("}")
        return Choice(name, alternatives)

    # -- reference resolution -----------------------------------------------------------

    def _resolve_references(self) -> None:
        def resolve(schema: Asn1Type, seen: Tuple[str, ...] = ()) -> Asn1Type:
            if isinstance(schema, _Reference):
                if schema.name in seen:
                    raise Asn1SyntaxError(
                        f"circular type reference involving {schema.name!r}"
                    )
                if schema.name not in self.definitions:
                    raise Asn1SyntaxError(f"reference to undefined type {schema.name!r}")
                return resolve(self.definitions[schema.name], seen + (schema.name,))
            if isinstance(schema, Sequence):
                schema.components = [
                    Component(
                        name=c.name,
                        type=resolve(c.type, seen),
                        optional=c.optional,
                        default=c.default,
                    )
                    for c in schema.components
                ]
                return schema
            if isinstance(schema, SequenceOf):
                schema.element_type = resolve(schema.element_type, seen)
                return schema
            if isinstance(schema, Choice):
                schema.alternatives = [
                    (name, resolve(alternative, seen))
                    for name, alternative in schema.alternatives
                ]
                return schema
            return schema

        for name in list(self.definitions):
            self.definitions[name] = resolve(self.definitions[name], (name,))


def compile_module(text: str) -> Asn1Module:
    """Compile ASN.1 source text into a module of schema objects."""
    tokens = _tokenise(text)
    if not tokens:
        raise Asn1SyntaxError("empty ASN.1 module")
    return _Parser(tokens).parse_module()
