"""ASN.1 type system (the subset MCAM's PDUs need).

All MCAM PDUs are specified in ASN.1 (ISO 8824); the paper generated C++ data
structures and BER encode/decode routines from that specification.  This
module provides the schema objects those generated structures correspond to:

* primitive types — ``INTEGER``, ``BOOLEAN``, ``ENUMERATED``, ``OCTET
  STRING``, ``IA5String``, ``NULL``,
* constructed types — ``SEQUENCE`` (with OPTIONAL and DEFAULT components),
  ``SEQUENCE OF`` and ``CHOICE``,
* context-specific tagging (``[n]``), which CHOICE alternatives and optional
  SEQUENCE components rely on.

Values are plain Python objects (int, bool, str, bytes, dict, list), checked
against the schema by :meth:`Asn1Type.validate`; the BER transfer syntax lives
in :mod:`repro.asn1.ber`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union


class Asn1Error(Exception):
    """Base class for schema-validation and encoding errors."""


class Asn1ValidationError(Asn1Error):
    """A value does not conform to its ASN.1 type."""


# -- tags ------------------------------------------------------------------------

TAG_CLASS_UNIVERSAL = 0x00
TAG_CLASS_CONTEXT = 0x80

UNIVERSAL_BOOLEAN = 1
UNIVERSAL_INTEGER = 2
UNIVERSAL_OCTET_STRING = 4
UNIVERSAL_NULL = 5
UNIVERSAL_ENUMERATED = 10
UNIVERSAL_SEQUENCE = 16
UNIVERSAL_IA5STRING = 22


@dataclass(frozen=True)
class Tag:
    """A BER tag: class, number and whether the encoding is constructed."""

    number: int
    tag_class: int = TAG_CLASS_UNIVERSAL
    constructed: bool = False

    def identifier_octet(self) -> int:
        if self.number >= 31:
            raise Asn1Error("multi-byte tag numbers are not supported")
        octet = self.tag_class | self.number
        if self.constructed:
            octet |= 0x20
        return octet

    @staticmethod
    def context(number: int, constructed: bool = True) -> "Tag":
        return Tag(number=number, tag_class=TAG_CLASS_CONTEXT, constructed=constructed)


# -- base type ---------------------------------------------------------------------


class Asn1Type:
    """Base class of all schema objects."""

    #: the type's universal tag; overridden by every concrete type.
    tag: Tag = Tag(0)
    name: str = "ASN.1"

    def validate(self, value: Any) -> None:
        """Raise :class:`Asn1ValidationError` when ``value`` does not conform."""
        raise NotImplementedError

    def tagged(self, number: int) -> "Tagged":
        """Apply a context-specific tag (IMPLICIT-style) to this type."""
        return Tagged(number, self)

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}({self.name!r})"


class Integer(Asn1Type):
    """``INTEGER``, optionally range-constrained."""

    tag = Tag(UNIVERSAL_INTEGER)
    name = "INTEGER"

    def __init__(self, minimum: Optional[int] = None, maximum: Optional[int] = None):
        self.minimum = minimum
        self.maximum = maximum

    def validate(self, value: Any) -> None:
        if not isinstance(value, int) or isinstance(value, bool):
            raise Asn1ValidationError(f"INTEGER value must be int, got {type(value).__name__}")
        if self.minimum is not None and value < self.minimum:
            raise Asn1ValidationError(f"INTEGER {value} below minimum {self.minimum}")
        if self.maximum is not None and value > self.maximum:
            raise Asn1ValidationError(f"INTEGER {value} above maximum {self.maximum}")


class Boolean(Asn1Type):
    tag = Tag(UNIVERSAL_BOOLEAN)
    name = "BOOLEAN"

    def validate(self, value: Any) -> None:
        if not isinstance(value, bool):
            raise Asn1ValidationError(f"BOOLEAN value must be bool, got {type(value).__name__}")


class Null(Asn1Type):
    tag = Tag(UNIVERSAL_NULL)
    name = "NULL"

    def validate(self, value: Any) -> None:
        if value is not None:
            raise Asn1ValidationError("NULL value must be None")


class OctetString(Asn1Type):
    """``OCTET STRING`` — raw bytes, optionally size-constrained."""

    tag = Tag(UNIVERSAL_OCTET_STRING)
    name = "OCTET STRING"

    def __init__(self, max_size: Optional[int] = None):
        self.max_size = max_size

    def validate(self, value: Any) -> None:
        if not isinstance(value, (bytes, bytearray)):
            raise Asn1ValidationError(
                f"OCTET STRING value must be bytes, got {type(value).__name__}"
            )
        if self.max_size is not None and len(value) > self.max_size:
            raise Asn1ValidationError(
                f"OCTET STRING of {len(value)} octets exceeds SIZE({self.max_size})"
            )


class IA5String(Asn1Type):
    """``IA5String`` — ASCII text (movie titles, attribute names, addresses)."""

    tag = Tag(UNIVERSAL_IA5STRING)
    name = "IA5String"

    def __init__(self, max_size: Optional[int] = None):
        self.max_size = max_size

    def validate(self, value: Any) -> None:
        if not isinstance(value, str):
            raise Asn1ValidationError(f"IA5String value must be str, got {type(value).__name__}")
        try:
            value.encode("ascii")
        except UnicodeEncodeError as exc:
            raise Asn1ValidationError(f"IA5String must be ASCII: {value!r}") from exc
        if self.max_size is not None and len(value) > self.max_size:
            raise Asn1ValidationError(
                f"IA5String of {len(value)} characters exceeds SIZE({self.max_size})"
            )


class Enumerated(Asn1Type):
    """``ENUMERATED { name(number), ... }``; values are the symbolic names."""

    tag = Tag(UNIVERSAL_ENUMERATED)
    name = "ENUMERATED"

    def __init__(self, alternatives: Mapping[str, int]):
        if not alternatives:
            raise Asn1Error("ENUMERATED needs at least one alternative")
        numbers = list(alternatives.values())
        if len(set(numbers)) != len(numbers):
            raise Asn1Error("ENUMERATED numbers must be distinct")
        self.alternatives: Dict[str, int] = dict(alternatives)
        self.by_number: Dict[int, str] = {v: k for k, v in alternatives.items()}

    def validate(self, value: Any) -> None:
        if value not in self.alternatives:
            raise Asn1ValidationError(
                f"{value!r} is not one of the ENUMERATED alternatives "
                f"{sorted(self.alternatives)}"
            )

    def number_of(self, value: str) -> int:
        self.validate(value)
        return self.alternatives[value]

    def value_of(self, number: int) -> str:
        try:
            return self.by_number[number]
        except KeyError as exc:
            raise Asn1ValidationError(f"no ENUMERATED alternative numbered {number}") from exc


@dataclass(frozen=True)
class Component:
    """A named component of a SEQUENCE."""

    name: str
    type: "Asn1Type"
    optional: bool = False
    default: Any = None

    @property
    def has_default(self) -> bool:
        return self.default is not None


class Sequence(Asn1Type):
    """``SEQUENCE { ... }`` with OPTIONAL / DEFAULT components.

    Values are dictionaries keyed by component name.
    """

    tag = Tag(UNIVERSAL_SEQUENCE, constructed=True)

    def __init__(self, name: str, components: Sequence[Component]):
        self.name = name
        self.components: List[Component] = list(components)
        names = [c.name for c in self.components]
        if len(set(names)) != len(names):
            raise Asn1Error(f"SEQUENCE {name}: duplicate component names")

    def component(self, name: str) -> Component:
        for component in self.components:
            if component.name == name:
                return component
        raise Asn1Error(f"SEQUENCE {self.name} has no component {name!r}")

    def validate(self, value: Any) -> None:
        if not isinstance(value, Mapping):
            raise Asn1ValidationError(
                f"SEQUENCE {self.name} value must be a mapping, got {type(value).__name__}"
            )
        known = {c.name for c in self.components}
        unknown = set(value) - known
        if unknown:
            raise Asn1ValidationError(
                f"SEQUENCE {self.name}: unknown components {sorted(unknown)}"
            )
        for component in self.components:
            if component.name in value:
                component.type.validate(value[component.name])
            elif not component.optional and not component.has_default:
                raise Asn1ValidationError(
                    f"SEQUENCE {self.name}: missing mandatory component {component.name!r}"
                )

    def with_defaults(self, value: Mapping[str, Any]) -> Dict[str, Any]:
        """Return a copy of ``value`` with DEFAULT components filled in."""
        merged = dict(value)
        for component in self.components:
            if component.name not in merged and component.has_default:
                merged[component.name] = component.default
        return merged


class SequenceOf(Asn1Type):
    """``SEQUENCE OF <element type>``; values are Python lists."""

    tag = Tag(UNIVERSAL_SEQUENCE, constructed=True)

    def __init__(self, element_type: Asn1Type, name: str = ""):
        self.element_type = element_type
        self.name = name or f"SEQUENCE OF {element_type.name}"

    def validate(self, value: Any) -> None:
        if not isinstance(value, (list, tuple)):
            raise Asn1ValidationError(
                f"{self.name} value must be a list, got {type(value).__name__}"
            )
        for index, element in enumerate(value):
            try:
                self.element_type.validate(element)
            except Asn1ValidationError as exc:
                raise Asn1ValidationError(f"{self.name}[{index}]: {exc}") from exc


class Choice(Asn1Type):
    """``CHOICE { ... }``; values are ``(alternative name, value)`` pairs.

    Each alternative gets a distinct context tag so the chosen alternative can
    be recognised when decoding (automatic tagging).
    """

    def __init__(self, name: str, alternatives: Sequence[Tuple[str, Asn1Type]]):
        if not alternatives:
            raise Asn1Error(f"CHOICE {name} needs at least one alternative")
        self.name = name
        self.alternatives: List[Tuple[str, Asn1Type]] = list(alternatives)
        names = [n for n, _ in self.alternatives]
        if len(set(names)) != len(names):
            raise Asn1Error(f"CHOICE {name}: duplicate alternative names")

    @property
    def tag(self) -> Tag:  # type: ignore[override]
        raise Asn1Error(f"CHOICE {self.name} has no tag of its own")

    def index_of(self, alternative: str) -> int:
        for index, (name, _) in enumerate(self.alternatives):
            if name == alternative:
                return index
        raise Asn1Error(f"CHOICE {self.name} has no alternative {alternative!r}")

    def type_of(self, alternative: str) -> Asn1Type:
        return self.alternatives[self.index_of(alternative)][1]

    def alternative_at(self, index: int) -> Tuple[str, Asn1Type]:
        try:
            return self.alternatives[index]
        except IndexError as exc:
            raise Asn1Error(f"CHOICE {self.name} has no alternative #{index}") from exc

    def validate(self, value: Any) -> None:
        if (
            not isinstance(value, tuple)
            or len(value) != 2
            or not isinstance(value[0], str)
        ):
            raise Asn1ValidationError(
                f"CHOICE {self.name} value must be an (alternative, value) pair"
            )
        alternative, inner = value
        if all(alternative != name for name, _ in self.alternatives):
            raise Asn1ValidationError(
                f"CHOICE {self.name} has no alternative {alternative!r}"
            )
        self.type_of(alternative).validate(inner)


class Tagged(Asn1Type):
    """A context-tagged wrapper around another type (``[n] Type``)."""

    def __init__(self, number: int, inner: Asn1Type):
        self.number = number
        self.inner = inner
        self.name = f"[{number}] {inner.name}"

    @property
    def tag(self) -> Tag:  # type: ignore[override]
        return Tag.context(self.number, constructed=True)

    def validate(self, value: Any) -> None:
        self.inner.validate(value)
