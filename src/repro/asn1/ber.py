"""BER (Basic Encoding Rules) transfer syntax for the ASN.1 subset.

Encoding follows ISO 8825 definite-length BER: every value is a TLV
(identifier octet, length octets, contents).  The encoder always emits the
*definite* length form, the decoder accepts definite lengths only (the MCAM
PDUs never need the indefinite form).

The public entry points are :func:`encode` and :func:`decode`, both driven by
the schema objects of :mod:`repro.asn1.types`, mirroring how the paper's
generated encode/decode routines were driven by the ASN.1 specification of
the MCAM PDUs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from .types import (
    Asn1Error,
    Asn1Type,
    Asn1ValidationError,
    Boolean,
    Choice,
    Component,
    Enumerated,
    IA5String,
    Integer,
    Null,
    OctetString,
    Sequence,
    SequenceOf,
    Tag,
    Tagged,
)


class BerError(Asn1Error):
    """Raised for malformed BER data or unencodable values."""


# -- length helpers ---------------------------------------------------------------


def _encode_length(length: int) -> bytes:
    if length < 0:
        raise BerError("negative length")
    if length < 0x80:
        return bytes([length])
    octets = []
    value = length
    while value:
        octets.insert(0, value & 0xFF)
        value >>= 8
    return bytes([0x80 | len(octets)]) + bytes(octets)


def _decode_length(data: bytes, offset: int) -> Tuple[int, int]:
    """Return (length, new offset)."""
    if offset >= len(data):
        raise BerError("truncated BER data: missing length octet")
    first = data[offset]
    offset += 1
    if first < 0x80:
        return first, offset
    count = first & 0x7F
    if count == 0:
        raise BerError("indefinite lengths are not supported")
    if offset + count > len(data):
        raise BerError("truncated BER data: long-form length")
    length = int.from_bytes(data[offset : offset + count], "big")
    return length, offset + count


def _wrap(tag: Tag, contents: bytes) -> bytes:
    return bytes([tag.identifier_octet()]) + _encode_length(len(contents)) + contents


def _expect_tag(data: bytes, offset: int, tag: Tag, context: str) -> Tuple[int, int]:
    """Check the identifier octet; return (contents length, contents offset)."""
    if offset >= len(data):
        raise BerError(f"truncated BER data: expected {context}")
    identifier = data[offset]
    if identifier != tag.identifier_octet():
        raise BerError(
            f"unexpected tag 0x{identifier:02x} (expected 0x{tag.identifier_octet():02x}) "
            f"while decoding {context}"
        )
    length, contents_offset = _decode_length(data, offset + 1)
    if contents_offset + length > len(data):
        raise BerError(f"truncated BER data: contents of {context}")
    return length, contents_offset


# -- primitive contents -------------------------------------------------------------


def _encode_integer_contents(value: int) -> bytes:
    length = max(1, (value.bit_length() + 8) // 8)
    return value.to_bytes(length, "big", signed=True)


def _decode_integer_contents(contents: bytes) -> int:
    if not contents:
        raise BerError("INTEGER with empty contents")
    return int.from_bytes(contents, "big", signed=True)


# -- encoding ------------------------------------------------------------------------


def encode(schema: Asn1Type, value: Any) -> bytes:
    """Encode ``value`` according to ``schema`` into definite-length BER."""
    schema.validate(value)
    return _encode_validated(schema, value)


def _encode_validated(schema: Asn1Type, value: Any) -> bytes:
    if isinstance(schema, Tagged):
        return _wrap(schema.tag, _encode_validated(schema.inner, value))
    if isinstance(schema, Integer):
        return _wrap(schema.tag, _encode_integer_contents(value))
    if isinstance(schema, Boolean):
        return _wrap(schema.tag, b"\xff" if value else b"\x00")
    if isinstance(schema, Null):
        return _wrap(schema.tag, b"")
    if isinstance(schema, Enumerated):
        return _wrap(schema.tag, _encode_integer_contents(schema.number_of(value)))
    if isinstance(schema, OctetString):
        return _wrap(schema.tag, bytes(value))
    if isinstance(schema, IA5String):
        return _wrap(schema.tag, value.encode("ascii"))
    if isinstance(schema, Sequence):
        return _wrap(schema.tag, _encode_sequence_contents(schema, value))
    if isinstance(schema, SequenceOf):
        contents = b"".join(_encode_validated(schema.element_type, e) for e in value)
        return _wrap(schema.tag, contents)
    if isinstance(schema, Choice):
        name, inner = value
        index = schema.index_of(name)
        encoded = _encode_validated(schema.type_of(name), inner)
        return _wrap(Tag.context(index, constructed=True), encoded)
    raise BerError(f"cannot encode values of type {type(schema).__name__}")


def _encode_sequence_contents(schema: Sequence, value: Dict[str, Any]) -> bytes:
    merged = schema.with_defaults(value)
    parts: List[bytes] = []
    for index, component in enumerate(schema.components):
        if component.name not in merged:
            continue  # optional and absent
        encoded = _encode_validated(component.type, merged[component.name])
        # Each component is wrapped in a context tag carrying its position so
        # optional components can be skipped unambiguously when decoding.
        parts.append(_wrap(Tag.context(index, constructed=True), encoded))
    return b"".join(parts)


# -- decoding ------------------------------------------------------------------------


def decode(schema: Asn1Type, data: bytes) -> Any:
    """Decode definite-length BER ``data`` according to ``schema``."""
    value, offset = _decode_value(schema, bytes(data), 0)
    if offset != len(data):
        raise BerError(f"{len(data) - offset} trailing octets after the decoded value")
    schema.validate(value)
    return value


def _decode_value(schema: Asn1Type, data: bytes, offset: int) -> Tuple[Any, int]:
    if isinstance(schema, Tagged):
        length, contents_offset = _expect_tag(data, offset, schema.tag, schema.name)
        inner, inner_end = _decode_value(schema.inner, data, contents_offset)
        if inner_end != contents_offset + length:
            raise BerError(f"length mismatch inside {schema.name}")
        return inner, inner_end
    if isinstance(schema, Integer):
        length, contents_offset = _expect_tag(data, offset, schema.tag, "INTEGER")
        contents = data[contents_offset : contents_offset + length]
        return _decode_integer_contents(contents), contents_offset + length
    if isinstance(schema, Boolean):
        length, contents_offset = _expect_tag(data, offset, schema.tag, "BOOLEAN")
        if length != 1:
            raise BerError("BOOLEAN contents must be a single octet")
        return data[contents_offset] != 0, contents_offset + 1
    if isinstance(schema, Null):
        length, contents_offset = _expect_tag(data, offset, schema.tag, "NULL")
        if length != 0:
            raise BerError("NULL contents must be empty")
        return None, contents_offset
    if isinstance(schema, Enumerated):
        length, contents_offset = _expect_tag(data, offset, schema.tag, "ENUMERATED")
        number = _decode_integer_contents(data[contents_offset : contents_offset + length])
        return schema.value_of(number), contents_offset + length
    if isinstance(schema, OctetString):
        length, contents_offset = _expect_tag(data, offset, schema.tag, "OCTET STRING")
        return bytes(data[contents_offset : contents_offset + length]), contents_offset + length
    if isinstance(schema, IA5String):
        length, contents_offset = _expect_tag(data, offset, schema.tag, "IA5String")
        contents = data[contents_offset : contents_offset + length]
        try:
            return contents.decode("ascii"), contents_offset + length
        except UnicodeDecodeError as exc:
            raise BerError("IA5String contents are not ASCII") from exc
    if isinstance(schema, Sequence):
        return _decode_sequence(schema, data, offset)
    if isinstance(schema, SequenceOf):
        length, contents_offset = _expect_tag(data, offset, schema.tag, schema.name)
        end = contents_offset + length
        elements = []
        cursor = contents_offset
        while cursor < end:
            element, cursor = _decode_value(schema.element_type, data, cursor)
            elements.append(element)
        if cursor != end:
            raise BerError(f"length mismatch inside {schema.name}")
        return elements, end
    if isinstance(schema, Choice):
        if offset >= len(data):
            raise BerError(f"truncated BER data: CHOICE {schema.name}")
        identifier = data[offset]
        index = identifier & 0x1F
        name, alternative_type = schema.alternative_at(index)
        length, contents_offset = _expect_tag(
            data, offset, Tag.context(index, constructed=True), f"CHOICE {schema.name}"
        )
        inner, inner_end = _decode_value(alternative_type, data, contents_offset)
        if inner_end != contents_offset + length:
            raise BerError(f"length mismatch inside CHOICE {schema.name}")
        return (name, inner), inner_end
    raise BerError(f"cannot decode values of type {type(schema).__name__}")


def _decode_sequence(schema: Sequence, data: bytes, offset: int) -> Tuple[Dict[str, Any], int]:
    length, contents_offset = _expect_tag(data, offset, schema.tag, f"SEQUENCE {schema.name}")
    end = contents_offset + length
    cursor = contents_offset
    value: Dict[str, Any] = {}
    for index, component in enumerate(schema.components):
        if cursor >= end:
            break
        identifier = data[cursor]
        component_index = identifier & 0x1F
        if component_index != index:
            # Component absent (it must have been OPTIONAL / DEFAULT).
            continue
        inner_length, inner_offset = _expect_tag(
            data, cursor, Tag.context(index, constructed=True), f"{schema.name}.{component.name}"
        )
        inner_value, inner_end = _decode_value(component.type, data, inner_offset)
        if inner_end != inner_offset + inner_length:
            raise BerError(f"length mismatch inside {schema.name}.{component.name}")
        value[component.name] = inner_value
        cursor = inner_end
    if cursor != end:
        raise BerError(f"unexpected extra components inside SEQUENCE {schema.name}")
    return schema.with_defaults(value), end


def encoded_size(schema: Asn1Type, value: Any) -> int:
    """Size in octets of the BER encoding (used by the stream and benchmarks)."""
    return len(encode(schema, value))
