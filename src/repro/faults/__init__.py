"""``repro.faults`` — deterministic, seedable fault injection.

The resilience contract (docs/RESILIENCE.md) is differential: every
recovery path must reproduce the *fault-free* canonical trace byte for
byte.  That is only testable if the faults themselves are deterministic
inputs, so this module models them as plain frozen data — a
:class:`FaultPlan` names exactly which execution unit crashes at which
round, which channel batch is delayed by how much, which serve session
throws on which call, and how many event-sink writes fail.  The plan is
picklable (it crosses the ``spawn`` boundary into workers) and is threaded
through the stack as an *optional* argument: with no plan configured the
instrumented code paths reduce to a ``None`` check.

``FaultPlan.seeded(seed, ...)`` derives a schedule from a PRNG seed, which
is how the chaos differential suite (``tests/test_resilience.py``) and the
``chaos-smoke`` CI job enumerate crash schedules across fuzzgen specs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Sequence, Tuple

__all__ = [
    "ChannelDelay",
    "FailingSink",
    "FaultPlan",
    "InjectedFault",
    "SessionFault",
    "WorkerCrash",
]


class InjectedFault(RuntimeError):
    """Raised (or reported) by a fault-injection point when its trigger fires.

    Deliberately a distinct type so tests and supervisors can tell an
    injected failure from an organic one.
    """


@dataclass(frozen=True)
class WorkerCrash:
    """Kill the worker for ``unit`` when it receives the round-``round_index``
    select command (i.e. after round ``round_index - 1`` fully committed)."""

    unit: int
    round_index: int


@dataclass(frozen=True)
class ChannelDelay:
    """Delay ``source_unit``'s round-``round_index`` batch to ``target_unit``
    by ``seconds`` of wall time before it is sent.

    Wall-clock only: the simulated clock never sees it, so a delay changes
    latency (and can trip a :class:`~repro.runtime.parallel.channels.ChannelTimeout`)
    but never the canonical trace.

    Applied inside ``TransportEndpoint.send_batch`` — the transport layer,
    not the worker's flush loop — so a delay schedule means the same thing
    over every transport (shared queues or the TCP mesh).
    """

    source_unit: int
    target_unit: int
    round_index: int
    seconds: float


@dataclass(frozen=True)
class SessionFault:
    """Raise :class:`InjectedFault` from the ``call_index``-th invocation of
    ``op`` (``"step"`` or ``"inject"``) on serve session ``session_id``."""

    session_id: str
    op: str = "step"
    call_index: int = 1
    message: str = "injected session fault"


@dataclass(frozen=True)
class FaultPlan:
    """A complete, deterministic failure schedule for one run.

    ``sink_failures`` asks the serve engine to attach a :class:`FailingSink`
    whose first N writes raise — exercising the event bus's sink-isolation
    path (misbehaving sinks are detached, never propagated).
    """

    worker_crashes: Tuple[WorkerCrash, ...] = ()
    channel_delays: Tuple[ChannelDelay, ...] = ()
    session_faults: Tuple[SessionFault, ...] = ()
    sink_failures: int = 0

    @property
    def empty(self) -> bool:
        return not (
            self.worker_crashes
            or self.channel_delays
            or self.session_faults
            or self.sink_failures
        )

    def crash_rounds_for(self, unit: int) -> FrozenSet[int]:
        return frozenset(
            crash.round_index
            for crash in self.worker_crashes
            if crash.unit == unit
        )

    def send_delays_for(self, unit: int) -> Tuple[Tuple[int, int, float], ...]:
        """``(target_unit, round_index, seconds)`` rows for ``unit``'s flushes."""
        return tuple(
            (delay.target_unit, delay.round_index, delay.seconds)
            for delay in self.channel_delays
            if delay.source_unit == unit
        )

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        units: Sequence[int],
        max_round: int,
        crashes: int = 1,
    ) -> "FaultPlan":
        """Derive a crash schedule from ``seed``: ``crashes`` worker crashes
        spread over ``units`` at rounds in ``[2, max_round]``.

        Round 1 is excluded on purpose — a crash at the very first select
        recovers from an empty checkpoint (a plain respawn), which is a
        separate, less interesting path the suite covers explicitly.
        """
        if max_round < 2 or not units:
            return cls()
        rng = random.Random(seed)
        schedule: Dict[int, int] = {}
        for _ in range(crashes):
            unit = rng.choice(list(units))
            # One crash per unit per plan: a second crash for the same unit
            # just moves its round, keeping the schedule well-formed.
            schedule[unit] = rng.randint(2, max_round)
        return cls(
            worker_crashes=tuple(
                WorkerCrash(unit=unit, round_index=round_index)
                for unit, round_index in sorted(schedule.items())
            )
        )


class FailingSink:
    """An event sink whose first ``failures`` writes raise :class:`InjectedFault`.

    With ``failures < 0`` every write fails, which (after
    ``MAX_SINK_FAILURES`` consecutive errors) exercises the bus's
    auto-detach path.
    """

    def __init__(self, failures: int = 1) -> None:
        self.failures = failures
        self.writes = 0
        self.failed = 0

    def write(self, event) -> None:
        self.writes += 1
        if self.failures < 0 or self.failed < self.failures:
            self.failed += 1
            raise InjectedFault(
                f"injected sink failure {self.failed}"
                + ("" if self.failures < 0 else f"/{self.failures}")
            )

    def close(self) -> None:  # pragma: no cover - interface completeness
        pass
