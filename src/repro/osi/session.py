"""The session layer kernel as an Estelle module (ISO 8327 subset).

The entity implements the kernel functional unit only — connection
establishment, orderly release, data transfer and abort — which is exactly
what the paper's Section 5.1 measurements exercised ("presentation and session
kernel, without ASN.1 encoding/decoding").  The module offers the session
service to its user (normally the presentation entity) on the ``user``
interaction point and uses the transport service on the ``transport``
interaction point.

The Estelle sources for the presentation and session layers used by the paper
were provided by the University of Bern; this module is an independent
re-specification of the same kernel behaviour.
"""

from __future__ import annotations

from ..estelle import Module, ModuleAttribute, ip, transition
from .channels import SESSION_SERVICE, TRANSPORT_SERVICE
from .pdus import SessionPdu


def _incoming_kind(interaction) -> str:
    """SPDU kind of a TDataIndication (used by the ``provided`` guards)."""
    data = interaction.param("data")
    if not data:
        return ""
    try:
        return SessionPdu.from_bytes(data).kind
    except Exception:
        return ""


def _kind_guard(kind: str):
    return lambda module, interaction: _incoming_kind(interaction) == kind


class SessionEntity(Module):
    """Session-kernel protocol entity."""

    ATTRIBUTE = ModuleAttribute.PROCESS
    STATES = (
        "idle",
        "outgoing",
        "incoming",
        "connected",
        "releasing_out",
        "releasing_in",
    )
    INITIAL_STATE = "idle"
    LAYER = "session"

    user = ip("user", SESSION_SERVICE, role="provider")
    transport = ip("transport", TRANSPORT_SERVICE, role="user")

    def initialise(self) -> None:
        super().initialise()
        self.variables.setdefault("local_address", self.path)
        self.variables.setdefault("remote_address", "")
        self.variables.setdefault("connection_ref", 0)
        self.variables.setdefault("data_sent", 0)
        self.variables.setdefault("data_received", 0)

    # -- helpers -----------------------------------------------------------------------

    def _send_spdu(self, pdu: SessionPdu) -> None:
        self.output("transport", "TDataRequest", data=pdu.to_bytes())

    # -- connection establishment ----------------------------------------------------------

    @transition(from_state="idle", to_state="outgoing", when=("user", "SConnectRequest"), cost=1.2)
    def connect_request(self, interaction) -> None:
        self.variables["remote_address"] = interaction.param("called_address", "")
        self.variables["connection_ref"] = interaction.param("connection_ref", 0)
        self._send_spdu(
            SessionPdu(
                kind="CN",
                connection_ref=self.variables["connection_ref"],
                calling_address=interaction.param("calling_address", self.variables["local_address"]),
                called_address=self.variables["remote_address"],
                user_data=interaction.param("user_data", b""),
            )
        )

    @transition(
        from_state="idle",
        to_state="incoming",
        when=("transport", "TDataIndication"),
        provided=_kind_guard("CN"),
        cost=1.2,
    )
    def connect_indication(self, interaction) -> None:
        pdu = SessionPdu.from_bytes(interaction.param("data"))
        self.variables["remote_address"] = pdu.calling_address
        self.variables["connection_ref"] = pdu.connection_ref
        self.output(
            "user",
            "SConnectIndication",
            calling_address=pdu.calling_address,
            called_address=pdu.called_address,
            connection_ref=pdu.connection_ref,
            user_data=pdu.user_data,
        )

    @transition(from_state="incoming", when=("user", "SConnectResponse"), cost=1.2)
    def connect_response(self, interaction) -> None:
        accepted = interaction.param("accepted", True)
        kind = "AC" if accepted else "RF"
        self._send_spdu(
            SessionPdu(
                kind=kind,
                connection_ref=self.variables["connection_ref"],
                calling_address=self.variables["local_address"],
                called_address=self.variables["remote_address"],
                user_data=interaction.param("user_data", b""),
            )
        )
        self.state = "connected" if accepted else "idle"

    @transition(
        from_state="outgoing",
        to_state="connected",
        when=("transport", "TDataIndication"),
        provided=_kind_guard("AC"),
        cost=1.2,
    )
    def connect_confirm(self, interaction) -> None:
        pdu = SessionPdu.from_bytes(interaction.param("data"))
        self.output(
            "user",
            "SConnectConfirm",
            accepted=True,
            connection_ref=pdu.connection_ref,
            user_data=pdu.user_data,
        )

    @transition(
        from_state="outgoing",
        to_state="idle",
        when=("transport", "TDataIndication"),
        provided=_kind_guard("RF"),
        cost=1.0,
    )
    def connect_refused(self, interaction) -> None:
        pdu = SessionPdu.from_bytes(interaction.param("data"))
        self.output(
            "user",
            "SConnectConfirm",
            accepted=False,
            connection_ref=pdu.connection_ref,
            user_data=pdu.user_data,
        )

    # -- data transfer --------------------------------------------------------------------

    @transition(from_state="connected", when=("user", "SDataRequest"), cost=1.0)
    def data_request(self, interaction) -> None:
        self.variables["data_sent"] += 1
        self._send_spdu(SessionPdu(kind="DT", user_data=interaction.param("user_data", b"")))

    @transition(
        from_state="connected",
        when=("transport", "TDataIndication"),
        provided=_kind_guard("DT"),
        cost=1.0,
    )
    def data_indication(self, interaction) -> None:
        pdu = SessionPdu.from_bytes(interaction.param("data"))
        self.variables["data_received"] += 1
        self.output("user", "SDataIndication", user_data=pdu.user_data)

    # -- orderly release -------------------------------------------------------------------

    @transition(
        from_state="connected",
        to_state="releasing_out",
        when=("user", "SReleaseRequest"),
        cost=1.0,
    )
    def release_request(self, interaction) -> None:
        self._send_spdu(SessionPdu(kind="FN", user_data=interaction.param("user_data", b"")))

    @transition(
        from_state="connected",
        to_state="releasing_in",
        when=("transport", "TDataIndication"),
        provided=_kind_guard("FN"),
        cost=1.0,
    )
    def release_indication(self, interaction) -> None:
        pdu = SessionPdu.from_bytes(interaction.param("data"))
        self.output("user", "SReleaseIndication", user_data=pdu.user_data)

    @transition(
        from_state="releasing_in",
        to_state="idle",
        when=("user", "SReleaseResponse"),
        cost=1.0,
    )
    def release_response(self, interaction) -> None:
        self._send_spdu(SessionPdu(kind="DN", user_data=interaction.param("user_data", b"")))

    @transition(
        from_state="releasing_out",
        to_state="idle",
        when=("transport", "TDataIndication"),
        provided=_kind_guard("DN"),
        cost=1.0,
    )
    def release_confirm(self, interaction) -> None:
        pdu = SessionPdu.from_bytes(interaction.param("data"))
        self.output("user", "SReleaseConfirm", user_data=pdu.user_data)

    # -- abort -------------------------------------------------------------------------------

    @transition(from_state="*", to_state="idle", when=("user", "SAbortRequest"), priority=-1, cost=0.8)
    def abort_request(self, interaction) -> None:
        self._send_spdu(SessionPdu(kind="AB", user_data=interaction.param("user_data", b"")))

    @transition(
        from_state="*",
        to_state="idle",
        when=("transport", "TDataIndication"),
        provided=_kind_guard("AB"),
        priority=-1,
        cost=0.8,
    )
    def abort_indication(self, interaction) -> None:
        pdu = SessionPdu.from_bytes(interaction.param("data"))
        self.output("user", "SAbortIndication", user_data=pdu.user_data)
