"""Transport layer: the simulated transport pipe of the paper's test setup.

Section 5.1: *"we specified a simple test environment in Estelle with two
protocol stacks connected by a simulated transport layer pipe"*.  The pipe is
an Estelle module with one interaction point per stack side; every
``TDataRequest`` arriving on one side reappears as a ``TDataIndication`` on
the other side.  Delivery is reliable and order-preserving (which is what the
real ISODE TP0/TCP path provided for the low-rate control traffic).

A connection-oriented flavour is not needed by the kernel experiments, but
``TConnectRequest`` is answered with ``TConnectConfirm`` so specifications
that want an explicit transport set-up phase also work.
"""

from __future__ import annotations

from ..estelle import Module, ModuleAttribute, ip, transition
from .channels import TRANSPORT_SERVICE


class TransportPipe(Module):
    """A bidirectional, reliable, order-preserving transport pipe."""

    ATTRIBUTE = ModuleAttribute.PROCESS
    STATES = ("relay",)
    LAYER = "transport"

    side_a = ip("side_a", TRANSPORT_SERVICE, role="provider")
    side_b = ip("side_b", TRANSPORT_SERVICE, role="provider")

    def initialise(self) -> None:
        super().initialise()
        self.variables.setdefault("relayed", 0)

    # -- data relay -----------------------------------------------------------------

    @transition(from_state="relay", when=("side_a", "TDataRequest"), cost=0.5)
    def relay_a_to_b(self, interaction) -> None:
        self.variables["relayed"] += 1
        self.output("side_b", "TDataIndication", data=interaction.param("data"))

    @transition(from_state="relay", when=("side_b", "TDataRequest"), cost=0.5)
    def relay_b_to_a(self, interaction) -> None:
        self.variables["relayed"] += 1
        self.output("side_a", "TDataIndication", data=interaction.param("data"))

    # -- optional explicit connection phase ---------------------------------------------

    @transition(from_state="relay", when=("side_a", "TConnectRequest"), cost=0.5)
    def connect_a(self, interaction) -> None:
        self.output("side_a", "TConnectConfirm")

    @transition(from_state="relay", when=("side_b", "TConnectRequest"), cost=0.5)
    def connect_b(self, interaction) -> None:
        self.output("side_b", "TConnectConfirm")

    # -- disconnect propagation -----------------------------------------------------------

    @transition(from_state="relay", when=("side_a", "TDisconnectRequest"), cost=0.5)
    def disconnect_a(self, interaction) -> None:
        self.output("side_b", "TDisconnectIndication")

    @transition(from_state="relay", when=("side_b", "TDisconnectRequest"), cost=0.5)
    def disconnect_b(self, interaction) -> None:
        self.output("side_a", "TDisconnectIndication")


class TransportPipeSystem(Module):
    """A system module holding one :class:`TransportPipe` per connection.

    The number of pipes is configured with the ``connections`` variable; each
    pipe is created as child ``pipe-<index>`` during initialisation, matching
    the paper's fixed-at-specification-time structure.
    """

    ATTRIBUTE = ModuleAttribute.SYSTEMPROCESS
    STATES = ("running",)
    LAYER = "transport"

    def initialise(self) -> None:
        super().initialise()
        for index in range(self.variables.get("connections", 1)):
            self.create_child(TransportPipe, f"pipe-{index}")

    def pipe(self, index: int) -> TransportPipe:
        """Convenience accessor used by specification builders."""
        return self.children[f"pipe-{index}"]  # type: ignore[return-value]
