"""The paper's Section 5.1 test environment.

*"For our first measurements we specified a simple test environment in
Estelle with two protocol stacks connected by a simulated transport layer
pipe.  Both stacks consist of presentation and session layers, and an
initiator or responder respectively.  It is possible to create multiple
connections.  For the tests, we used presentation and session kernel, without
ASN.1 encoding/decoding, and we transmitted very small P-Data units."*

:func:`build_transfer_specification` reproduces exactly that setup: an
initiator stack and a responder stack (each a ``systemprocess`` containing one
subtree per connection with application / presentation / session modules) and
a transport-pipe system module in between.  The number of connections, the
number of Data requests per connection and the P-Data unit size are the sweep
parameters of the speedup experiment (benchmark E1 in DESIGN.md).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..estelle import Module, ModuleAttribute, Specification, ip, transition
from .channels import PRESENTATION_SERVICE
from .presentation import PresentationEntity
from .session import SessionEntity
from .transport import TransportPipe


class Initiator(Module):
    """Connection initiator: connect, send N P-DATA units, release.

    Variables: ``data_requests`` (how many P-Data units to send) and
    ``payload_size`` (octets per unit; the paper used "very small" units).
    """

    ATTRIBUTE = ModuleAttribute.PROCESS
    STATES = ("idle", "connecting", "sending", "releasing", "done")
    INITIAL_STATE = "idle"
    LAYER = "application"

    pres = ip("pres", PRESENTATION_SERVICE, role="user")

    def initialise(self) -> None:
        super().initialise()
        self.variables.setdefault("data_requests", 10)
        self.variables.setdefault("payload_size", 4)
        self.variables["sent"] = 0
        self.variables["confirmed"] = False

    @transition(from_state="idle", to_state="connecting", cost=1.0)
    def connect(self) -> None:
        self.output(
            "pres",
            "PConnectRequest",
            contexts=(),
            called_address="responder",
            calling_address=self.path,
            connection_ref=self.uid,
        )

    @transition(from_state="connecting", when=("pres", "PConnectConfirm"), cost=1.0)
    def connected(self, interaction) -> None:
        if interaction.param("accepted", True):
            self.variables["confirmed"] = True
            self.state = "sending"
        else:
            self.state = "done"

    @transition(
        from_state="sending",
        provided=lambda m: m.variables["sent"] < m.variables["data_requests"],
        cost=1.0,
    )
    def send_data(self) -> None:
        self.variables["sent"] += 1
        payload = bytes(self.variables["payload_size"])
        self.output("pres", "PDataRequest", context_id=1, data=payload)

    @transition(
        from_state="sending",
        to_state="releasing",
        provided=lambda m: m.variables["sent"] >= m.variables["data_requests"],
        priority=1,
        cost=1.0,
    )
    def start_release(self) -> None:
        self.output("pres", "PReleaseRequest")

    @transition(from_state="releasing", to_state="done", when=("pres", "PReleaseConfirm"), cost=1.0)
    def released(self, interaction) -> None:
        pass


class Responder(Module):
    """Connection responder: accept the connection, absorb data, confirm release."""

    ATTRIBUTE = ModuleAttribute.PROCESS
    STATES = ("idle", "connected", "done")
    INITIAL_STATE = "idle"
    LAYER = "application"

    pres = ip("pres", PRESENTATION_SERVICE, role="user")

    def initialise(self) -> None:
        super().initialise()
        self.variables["received"] = 0

    @transition(from_state="idle", to_state="connected", when=("pres", "PConnectIndication"), cost=1.0)
    def accept(self, interaction) -> None:
        self.output(
            "pres",
            "PConnectResponse",
            accepted=True,
            contexts=tuple(interaction.param("contexts", ())),
        )

    @transition(from_state="connected", when=("pres", "PDataIndication"), cost=1.0)
    def consume(self, interaction) -> None:
        self.variables["received"] += 1

    @transition(from_state="connected", to_state="done", when=("pres", "PReleaseIndication"), cost=1.0)
    def release(self, interaction) -> None:
        self.output("pres", "PReleaseResponse")


class _ConnectionSubtree(Module):
    """A per-connection container: application + presentation + session.

    The container itself has no transitions (so it never pre-empts its
    children under the parent-precedence rule); it only wires its children at
    initialisation time.  ``application_class`` selects Initiator/Responder.
    """

    ATTRIBUTE = ModuleAttribute.PROCESS
    STATES = ("wired",)
    LAYER = "connection"

    def initialise(self) -> None:
        super().initialise()
        application_class = self.variables["application_class"]
        app_variables = dict(self.variables.get("application_variables", {}))
        application = self.create_child(application_class, "app", **app_variables)
        presentation = self.create_child(PresentationEntity, "presentation")
        session = self.create_child(SessionEntity, "session")
        application.ip_named("pres").connect_to(presentation.ip_named("user"))
        presentation.ip_named("session").connect_to(session.ip_named("user"))


class InitiatorStack(Module):
    """System module holding one initiator connection subtree per connection."""

    ATTRIBUTE = ModuleAttribute.SYSTEMPROCESS
    STATES = ("running",)
    LAYER = "stack"

    def initialise(self) -> None:
        super().initialise()
        for index in range(self.variables.get("connections", 1)):
            self.create_child(
                _ConnectionSubtree,
                f"conn-{index}",
                application_class=Initiator,
                application_variables={
                    "data_requests": self.variables.get("data_requests", 10),
                    "payload_size": self.variables.get("payload_size", 4),
                },
            )


class ResponderStack(Module):
    """System module holding one responder connection subtree per connection."""

    ATTRIBUTE = ModuleAttribute.SYSTEMPROCESS
    STATES = ("running",)
    LAYER = "stack"

    def initialise(self) -> None:
        super().initialise()
        for index in range(self.variables.get("connections", 1)):
            self.create_child(
                _ConnectionSubtree,
                f"conn-{index}",
                application_class=Responder,
                application_variables={},
            )


class PipeSystem(Module):
    """System module holding one transport pipe per connection."""

    ATTRIBUTE = ModuleAttribute.SYSTEMPROCESS
    STATES = ("running",)
    LAYER = "transport"

    def initialise(self) -> None:
        super().initialise()
        for index in range(self.variables.get("connections", 1)):
            self.create_child(TransportPipe, f"pipe-{index}")


def build_transfer_specification(
    connections: int = 2,
    data_requests: int = 10,
    payload_size: int = 4,
    location: str = "ksr1",
) -> Specification:
    """Build the Section 5.1 test environment.

    All three system modules (initiator stack, pipes, responder stack) are
    placed on the same machine — the original measurement ran entirely on the
    KSR1 — so the speedup observed between mappings is due to multiprocessor
    parallelism, not to distribution.
    """
    if connections < 1:
        raise ValueError("at least one connection is required")
    spec = Specification("osi-transfer")
    initiator = spec.add_system_module(
        InitiatorStack,
        "initiator-stack",
        location=location,
        connections=connections,
        data_requests=data_requests,
        payload_size=payload_size,
    )
    pipes = spec.add_system_module(
        PipeSystem, "pipes", location=location, connections=connections
    )
    responder = spec.add_system_module(
        ResponderStack, "responder-stack", location=location, connections=connections
    )
    for index in range(connections):
        initiator_session = initiator.children[f"conn-{index}"].children["session"]
        responder_session = responder.children[f"conn-{index}"].children["session"]
        pipe = pipes.children[f"pipe-{index}"]
        spec.connect(initiator_session.ip_named("transport"), pipe.ip_named("side_a"))
        spec.connect(responder_session.ip_named("transport"), pipe.ip_named("side_b"))
    spec.validate()
    return spec


def transfer_progress(spec: Specification) -> Tuple[int, int]:
    """(data units sent by all initiators, data units received by all responders)."""
    sent = 0
    received = 0
    for module in spec.modules():
        if isinstance(module, Initiator):
            sent += module.variables.get("sent", 0)
        elif isinstance(module, Responder):
            received += module.variables.get("received", 0)
    return sent, received
