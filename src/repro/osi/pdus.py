"""Session SPDUs and presentation PPDUs with a compact transfer encoding.

The session and presentation *protocol* data units exchanged between peer
entities are modelled as small dataclasses.  On the wire (i.e. across the
simulated transport pipe) they are carried in a simple framed form:

``[1 octet kind][2 octet big-endian length][payload octets]``

with the structured header fields of connect/accept PDUs encoded in BER via a
small ASN.1 SEQUENCE.  Full OSI would use the session layer's own encoding
(ISO 8327) — the framing here keeps the byte counts realistic (a few octets of
overhead per PDU) without reproducing that standard's octet layout, which none
of the paper's measurements depend on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..asn1 import Component, IA5String, Integer, Sequence, decode, encode
from ..asn1.ber import BerError


class PduError(Exception):
    """Raised for malformed framed PDUs."""


# -- session PDUs (ISO 8327 kernel subset) -----------------------------------------

SPDU_KINDS = {
    "CN": 0x0D,  # CONNECT
    "AC": 0x0E,  # ACCEPT
    "RF": 0x0C,  # REFUSE
    "DT": 0x01,  # DATA TRANSFER
    "FN": 0x09,  # FINISH
    "DN": 0x0A,  # DISCONNECT
    "AB": 0x19,  # ABORT
}
_SPDU_BY_CODE = {code: kind for kind, code in SPDU_KINDS.items()}

_CONNECT_HEADER = Sequence(
    "SessionConnectHeader",
    [
        Component("callingAddress", IA5String()),
        Component("calledAddress", IA5String()),
        Component("connectionRef", Integer()),
    ],
)


@dataclass(frozen=True)
class SessionPdu:
    """A session protocol data unit."""

    kind: str
    connection_ref: int = 0
    calling_address: str = ""
    called_address: str = ""
    user_data: bytes = b""

    def __post_init__(self) -> None:
        if self.kind not in SPDU_KINDS:
            raise PduError(f"unknown SPDU kind {self.kind!r}")

    def to_bytes(self) -> bytes:
        if self.kind in ("CN", "AC", "RF"):
            header = encode(
                _CONNECT_HEADER,
                {
                    "callingAddress": self.calling_address,
                    "calledAddress": self.called_address,
                    "connectionRef": self.connection_ref,
                },
            )
            payload = (
                len(header).to_bytes(2, "big") + header + self.user_data
            )
        else:
            payload = self.user_data
        return _frame(SPDU_KINDS[self.kind], payload)

    @staticmethod
    def from_bytes(data: bytes) -> "SessionPdu":
        code, payload = _unframe(data)
        kind = _SPDU_BY_CODE.get(code)
        if kind is None:
            raise PduError(f"unknown SPDU code 0x{code:02x}")
        if kind in ("CN", "AC", "RF"):
            if len(payload) < 2:
                raise PduError("truncated SPDU connect header")
            header_length = int.from_bytes(payload[:2], "big")
            header_bytes = payload[2 : 2 + header_length]
            user_data = payload[2 + header_length :]
            try:
                header = decode(_CONNECT_HEADER, header_bytes)
            except BerError as exc:
                raise PduError(f"malformed SPDU connect header: {exc}") from exc
            return SessionPdu(
                kind=kind,
                connection_ref=header["connectionRef"],
                calling_address=header["callingAddress"],
                called_address=header["calledAddress"],
                user_data=user_data,
            )
        return SessionPdu(kind=kind, user_data=payload)


# -- presentation PDUs (ISO 8823 kernel subset) --------------------------------------

PPDU_KINDS = {
    "CP": 0x31,   # Connect Presentation
    "CPA": 0x32,  # Connect Presentation Accept
    "CPR": 0x33,  # Connect Presentation Reject
    "TD": 0x01,   # Transfer Data
    "RL": 0x34,   # Release request
    "RLA": 0x35,  # Release accept
    "AB": 0x36,   # Abort
}
_PPDU_BY_CODE = {code: kind for kind, code in PPDU_KINDS.items()}

_CONTEXT_ITEM = Sequence(
    "PresentationContextItem",
    [
        Component("contextId", Integer()),
        Component("abstractSyntax", IA5String()),
        Component("transferSyntax", IA5String()),
    ],
)


@dataclass(frozen=True)
class PresentationContext:
    """One negotiated presentation context."""

    context_id: int
    abstract_syntax: str
    transfer_syntax: str = "ber"

    def to_value(self) -> Dict[str, object]:
        return {
            "contextId": self.context_id,
            "abstractSyntax": self.abstract_syntax,
            "transferSyntax": self.transfer_syntax,
        }

    @staticmethod
    def from_value(value: Dict[str, object]) -> "PresentationContext":
        return PresentationContext(
            context_id=int(value["contextId"]),
            abstract_syntax=str(value["abstractSyntax"]),
            transfer_syntax=str(value["transferSyntax"]),
        )


@dataclass(frozen=True)
class PresentationPdu:
    """A presentation protocol data unit."""

    kind: str
    contexts: Tuple[PresentationContext, ...] = ()
    context_id: int = 0
    user_data: bytes = b""

    def __post_init__(self) -> None:
        if self.kind not in PPDU_KINDS:
            raise PduError(f"unknown PPDU kind {self.kind!r}")

    def to_bytes(self) -> bytes:
        if self.kind in ("CP", "CPA", "CPR"):
            encoded_contexts = b"".join(
                _length_prefixed(encode(_CONTEXT_ITEM, c.to_value())) for c in self.contexts
            )
            payload = (
                len(self.contexts).to_bytes(1, "big")
                + encoded_contexts
                + self.user_data
            )
        else:
            payload = self.context_id.to_bytes(2, "big") + self.user_data
        return _frame(PPDU_KINDS[self.kind], payload)

    @staticmethod
    def from_bytes(data: bytes) -> "PresentationPdu":
        code, payload = _unframe(data)
        kind = _PPDU_BY_CODE.get(code)
        if kind is None:
            raise PduError(f"unknown PPDU code 0x{code:02x}")
        if kind in ("CP", "CPA", "CPR"):
            if not payload:
                raise PduError("truncated PPDU: missing context count")
            count = payload[0]
            cursor = 1
            contexts: List[PresentationContext] = []
            for _ in range(count):
                item, cursor = _read_length_prefixed(payload, cursor)
                contexts.append(PresentationContext.from_value(decode(_CONTEXT_ITEM, item)))
            return PresentationPdu(
                kind=kind, contexts=tuple(contexts), user_data=payload[cursor:]
            )
        if len(payload) < 2:
            raise PduError("truncated PPDU: missing context id")
        return PresentationPdu(
            kind=kind,
            context_id=int.from_bytes(payload[:2], "big"),
            user_data=payload[2:],
        )


# -- framing helpers --------------------------------------------------------------------


def _frame(code: int, payload: bytes) -> bytes:
    if len(payload) > 0xFFFF:
        raise PduError(f"payload of {len(payload)} octets exceeds the 64 KiB frame limit")
    return bytes([code]) + len(payload).to_bytes(2, "big") + payload


def _unframe(data: bytes) -> Tuple[int, bytes]:
    if len(data) < 3:
        raise PduError("truncated frame")
    code = data[0]
    length = int.from_bytes(data[1:3], "big")
    payload = data[3 : 3 + length]
    if len(payload) != length:
        raise PduError("frame length mismatch")
    if len(data) != 3 + length:
        raise PduError("trailing octets after frame")
    return code, payload


def _length_prefixed(data: bytes) -> bytes:
    return len(data).to_bytes(2, "big") + data


def _read_length_prefixed(data: bytes, offset: int) -> Tuple[bytes, int]:
    if offset + 2 > len(data):
        raise PduError("truncated length-prefixed item")
    length = int.from_bytes(data[offset : offset + 2], "big")
    start = offset + 2
    end = start + length
    if end > len(data):
        raise PduError("truncated length-prefixed item payload")
    return data[start:end], end
