"""The presentation layer kernel as an Estelle module (ISO 8823 subset).

The entity negotiates presentation contexts at connect time, and transforms
P-DATA values between their abstract-syntax form (Python values conforming to
an ASN.1 schema) and the BER transfer syntax on the way to/from the session
service.  A context whose abstract syntax is not registered carries raw octet
strings untouched — that pass-through mode is what the paper's Section 5.1
kernel measurements ("without ASN.1 encoding/decoding") correspond to.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..asn1 import Asn1Type, decode, encode
from ..estelle import Module, ModuleAttribute, ip, transition
from .channels import PRESENTATION_SERVICE, SESSION_SERVICE
from .pdus import PresentationContext, PresentationPdu


class SyntaxRegistry:
    """Registry of abstract syntaxes: name → ASN.1 schema.

    The registry plays the role of the generated ASN.1 data structures and
    codecs: the MCAM package registers its PDU type under the abstract-syntax
    name carried in the presentation context, and both peers' presentation
    entities share the registration (they were generated from the same ASN.1
    module).
    """

    def __init__(self) -> None:
        self._syntaxes: Dict[str, Asn1Type] = {}

    def register(self, name: str, schema: Asn1Type) -> None:
        self._syntaxes[name] = schema

    def knows(self, name: str) -> bool:
        return name in self._syntaxes

    def schema(self, name: str) -> Asn1Type:
        try:
            return self._syntaxes[name]
        except KeyError as exc:
            raise KeyError(f"abstract syntax {name!r} is not registered") from exc

    def encode_value(self, name: str, value: Any) -> bytes:
        return encode(self.schema(name), value)

    def decode_value(self, name: str, data: bytes) -> Any:
        return decode(self.schema(name), data)


#: Registry shared by default between every presentation entity of a process
#: (both ends of a connection are generated from the same ASN.1 module).
DEFAULT_SYNTAXES = SyntaxRegistry()


def _incoming_kind(interaction) -> str:
    data = interaction.param("user_data")
    if not data:
        return ""
    try:
        return PresentationPdu.from_bytes(data).kind
    except Exception:
        return ""


def _kind_guard(*kinds: str):
    return lambda module, interaction: _incoming_kind(interaction) in kinds


class PresentationEntity(Module):
    """Presentation-kernel protocol entity."""

    ATTRIBUTE = ModuleAttribute.PROCESS
    STATES = (
        "idle",
        "outgoing",
        "incoming",
        "connected",
        "releasing_out",
        "releasing_in",
    )
    INITIAL_STATE = "idle"
    LAYER = "presentation"

    user = ip("user", PRESENTATION_SERVICE, role="provider")
    session = ip("session", SESSION_SERVICE, role="user")

    def initialise(self) -> None:
        super().initialise()
        self.variables.setdefault("syntaxes", DEFAULT_SYNTAXES)
        self.variables.setdefault("contexts", {})
        self.variables.setdefault("data_sent", 0)
        self.variables.setdefault("data_received", 0)

    # -- helpers -----------------------------------------------------------------------------

    @property
    def _registry(self) -> SyntaxRegistry:
        return self.variables["syntaxes"]

    def _contexts(self) -> Dict[int, PresentationContext]:
        return self.variables["contexts"]

    def _store_contexts(self, contexts) -> None:
        self.variables["contexts"] = {c.context_id: c for c in contexts}

    def _encode_user_value(self, context_id: int, interaction) -> bytes:
        """P-DATA: value → transfer syntax (or raw pass-through)."""
        context = self._contexts().get(context_id)
        value = interaction.param("value")
        if value is not None and context is not None and self._registry.knows(context.abstract_syntax):
            return self._registry.encode_value(context.abstract_syntax, value)
        data = interaction.param("data", b"")
        if isinstance(data, str):
            data = data.encode("ascii")
        return bytes(data)

    def _decode_user_value(self, context_id: int, data: bytes):
        context = self._contexts().get(context_id)
        if context is not None and self._registry.knows(context.abstract_syntax):
            return self._registry.decode_value(context.abstract_syntax, data)
        return None

    # -- connection establishment ----------------------------------------------------------------

    @transition(from_state="idle", to_state="outgoing", when=("user", "PConnectRequest"), cost=1.4)
    def connect_request(self, interaction) -> None:
        contexts = tuple(interaction.param("contexts", ()))
        self._store_contexts(contexts)
        ppdu = PresentationPdu(kind="CP", contexts=contexts, user_data=interaction.param("user_data", b""))
        self.output(
            "session",
            "SConnectRequest",
            calling_address=interaction.param("calling_address", self.path),
            called_address=interaction.param("called_address", ""),
            connection_ref=interaction.param("connection_ref", 0),
            user_data=ppdu.to_bytes(),
        )

    @transition(from_state="idle", to_state="incoming", when=("session", "SConnectIndication"), cost=1.4)
    def connect_indication(self, interaction) -> None:
        ppdu = PresentationPdu.from_bytes(interaction.param("user_data"))
        self._store_contexts(ppdu.contexts)
        self.output(
            "user",
            "PConnectIndication",
            contexts=ppdu.contexts,
            calling_address=interaction.param("calling_address", ""),
            called_address=interaction.param("called_address", ""),
            connection_ref=interaction.param("connection_ref", 0),
            user_data=ppdu.user_data,
        )

    @transition(from_state="incoming", when=("user", "PConnectResponse"), cost=1.4)
    def connect_response(self, interaction) -> None:
        accepted = interaction.param("accepted", True)
        contexts = tuple(interaction.param("contexts", tuple(self._contexts().values())))
        if accepted:
            self._store_contexts(contexts)
        ppdu = PresentationPdu(
            kind="CPA" if accepted else "CPR",
            contexts=contexts,
            user_data=interaction.param("user_data", b""),
        )
        self.output("session", "SConnectResponse", accepted=accepted, user_data=ppdu.to_bytes())
        self.state = "connected" if accepted else "idle"

    @transition(from_state="outgoing", when=("session", "SConnectConfirm"), cost=1.4)
    def connect_confirm(self, interaction) -> None:
        accepted = interaction.param("accepted", True)
        ppdu = PresentationPdu.from_bytes(interaction.param("user_data")) if interaction.param("user_data") else None
        if ppdu is not None and ppdu.kind == "CPR":
            accepted = False
        if ppdu is not None and accepted:
            self._store_contexts(ppdu.contexts)
        self.output(
            "user",
            "PConnectConfirm",
            accepted=accepted,
            contexts=tuple(self._contexts().values()),
            user_data=ppdu.user_data if ppdu else b"",
        )
        self.state = "connected" if accepted else "idle"

    # -- data transfer ------------------------------------------------------------------------------

    @transition(from_state="connected", when=("user", "PDataRequest"), cost=1.0)
    def data_request(self, interaction) -> None:
        context_id = interaction.param("context_id", 1)
        payload = self._encode_user_value(context_id, interaction)
        ppdu = PresentationPdu(kind="TD", context_id=context_id, user_data=payload)
        self.variables["data_sent"] += 1
        self.output("session", "SDataRequest", user_data=ppdu.to_bytes())

    @transition(
        from_state="connected",
        when=("session", "SDataIndication"),
        provided=_kind_guard("TD"),
        cost=1.0,
    )
    def data_indication(self, interaction) -> None:
        ppdu = PresentationPdu.from_bytes(interaction.param("user_data"))
        value = self._decode_user_value(ppdu.context_id, ppdu.user_data)
        self.variables["data_received"] += 1
        self.output(
            "user",
            "PDataIndication",
            context_id=ppdu.context_id,
            data=ppdu.user_data,
            value=value,
        )

    # -- orderly release -----------------------------------------------------------------------------

    @transition(
        from_state="connected",
        to_state="releasing_out",
        when=("user", "PReleaseRequest"),
        cost=1.0,
    )
    def release_request(self, interaction) -> None:
        ppdu = PresentationPdu(kind="RL", user_data=interaction.param("user_data", b""))
        self.output("session", "SReleaseRequest", user_data=ppdu.to_bytes())

    @transition(
        from_state="connected",
        to_state="releasing_in",
        when=("session", "SReleaseIndication"),
        cost=1.0,
    )
    def release_indication(self, interaction) -> None:
        ppdu = PresentationPdu.from_bytes(interaction.param("user_data"))
        self.output("user", "PReleaseIndication", user_data=ppdu.user_data)

    @transition(
        from_state="releasing_in",
        to_state="idle",
        when=("user", "PReleaseResponse"),
        cost=1.0,
    )
    def release_response(self, interaction) -> None:
        ppdu = PresentationPdu(kind="RLA", user_data=interaction.param("user_data", b""))
        self.output("session", "SReleaseResponse", user_data=ppdu.to_bytes())

    @transition(
        from_state="releasing_out",
        to_state="idle",
        when=("session", "SReleaseConfirm"),
        cost=1.0,
    )
    def release_confirm(self, interaction) -> None:
        ppdu = PresentationPdu.from_bytes(interaction.param("user_data"))
        self.output("user", "PReleaseConfirm", user_data=ppdu.user_data)

    # -- abort ------------------------------------------------------------------------------------------

    @transition(from_state="*", to_state="idle", when=("user", "PAbortRequest"), priority=-1, cost=0.8)
    def abort_request(self, interaction) -> None:
        ppdu = PresentationPdu(kind="AB", user_data=interaction.param("user_data", b""))
        self.output("session", "SAbortRequest", user_data=ppdu.to_bytes())

    @transition(from_state="*", to_state="idle", when=("session", "SAbortIndication"), priority=-1, cost=0.8)
    def abort_indication(self, interaction) -> None:
        self.output("user", "PAbortIndication", user_data=interaction.param("user_data", b""))
