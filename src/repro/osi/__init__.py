"""OSI upper layers: transport pipe, session, presentation, ACSE and ISODE.

Two interchangeable control-protocol stacks are provided, matching the
paper's Fig. 2:

* the *generated* stack — :class:`SessionEntity` and :class:`PresentationEntity`
  Estelle modules over a :class:`TransportPipe`;
* the *hand-coded* stack — the :class:`IsodeInterfaceModule` driving the
  in-process :class:`IsodeBroker` (the stand-in for the ISODE library).

:mod:`repro.osi.testenv` rebuilds the Section 5.1 measurement environment on
top of the generated stack.
"""

from .acse import (
    ACSE_APDU,
    AcseAssociation,
    AcseError,
    build_aare,
    build_aarq,
    build_rlre,
    build_rlrq,
    parse_apdu,
)
from .channels import (
    ACSE_SERVICE,
    PRESENTATION_SERVICE,
    SESSION_SERVICE,
    TRANSPORT_SERVICE,
)
from .isode import IsodeBroker, IsodeError, IsodeInterfaceModule
from .pdus import (
    PduError,
    PresentationContext,
    PresentationPdu,
    SessionPdu,
)
from .presentation import DEFAULT_SYNTAXES, PresentationEntity, SyntaxRegistry
from .session import SessionEntity
from .testenv import (
    Initiator,
    InitiatorStack,
    PipeSystem,
    Responder,
    ResponderStack,
    build_transfer_specification,
    transfer_progress,
)
from .transport import TransportPipe, TransportPipeSystem

__all__ = [
    "ACSE_APDU",
    "ACSE_SERVICE",
    "AcseAssociation",
    "AcseError",
    "DEFAULT_SYNTAXES",
    "Initiator",
    "InitiatorStack",
    "IsodeBroker",
    "IsodeError",
    "IsodeInterfaceModule",
    "PRESENTATION_SERVICE",
    "PduError",
    "PipeSystem",
    "PresentationContext",
    "PresentationEntity",
    "PresentationPdu",
    "Responder",
    "ResponderStack",
    "SESSION_SERVICE",
    "SessionEntity",
    "SessionPdu",
    "SyntaxRegistry",
    "TRANSPORT_SERVICE",
    "TransportPipe",
    "TransportPipeSystem",
    "build_aare",
    "build_aarq",
    "build_rlre",
    "build_rlrq",
    "build_transfer_specification",
    "parse_apdu",
    "transfer_progress",
]
