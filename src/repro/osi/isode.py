"""The hand-coded ISODE-style interface module.

The paper's second protocol-stack variant *"places the MCAM module directly on
top of the ISODE presentation interface"*; the glue is the hand-written
"ISODE interface module" whose body cannot be generated from Estelle
(Section 4.3).  Its execution loop is quoted in the paper::

    while true do
      if (IP.message) then
        encode message in ISODE param. format
        call appropriate ISODE function
      endif
      if (ISODE.message) then
        encode message in Estelle param. format
        output IP.message
      end
    end

Here the role of the ISODE library is played by :class:`IsodeBroker`, an
in-process presentation-service provider: the interface module translates
Estelle interactions arriving on its ``user`` interaction point into broker
calls, and broker events back into Estelle interactions.  Associations are
framed with ACSE APDUs (``repro.osi.acse``), matching how the real ISODE
stack carried MCAM's connect data.

Because the whole lower stack collapses into one hand-written module, the
per-operation cost is lower than traversing the generated presentation and
session modules — which is precisely the generated-vs-hand-coded comparison
(experiment E6 in DESIGN.md).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..estelle import Module, ModuleAttribute, ip
from .acse import build_aare, build_aarq, parse_apdu
from .channels import PRESENTATION_SERVICE


class IsodeError(Exception):
    """Errors of the in-process ISODE stand-in."""


@dataclass
class _Association:
    """One established association between two interface modules."""

    aid: int
    initiator: "IsodeInterfaceModule"
    responder: "IsodeInterfaceModule"
    established: bool = False

    def peer_of(self, module: "IsodeInterfaceModule") -> "IsodeInterfaceModule":
        return self.responder if module is self.initiator else self.initiator


class IsodeBroker:
    """In-process presentation-service provider (the "ISODE library").

    Interface modules register under a presentation address.  Connect, data
    and release calls are routed synchronously to the peer module's inbox;
    the peer drains its inbox in its own external steps, so the Estelle
    runtime still accounts both sides' work separately.
    """

    def __init__(self) -> None:
        self._addresses: Dict[str, "IsodeInterfaceModule"] = {}
        self._associations: Dict[int, _Association] = {}
        self._association_of: Dict[int, _Association] = {}
        self._ids = itertools.count(1)
        self.calls = 0
        self.bytes_carried = 0

    # -- registration ------------------------------------------------------------------

    def register(self, address: str, module: "IsodeInterfaceModule") -> None:
        if address in self._addresses:
            raise IsodeError(f"presentation address {address!r} already registered")
        self._addresses[address] = module

    def resolve(self, address: str) -> "IsodeInterfaceModule":
        try:
            return self._addresses[address]
        except KeyError as exc:
            raise IsodeError(f"no ISODE endpoint registered at {address!r}") from exc

    def association_for(self, module: "IsodeInterfaceModule") -> Optional[_Association]:
        return self._association_of.get(module.uid)

    # -- ISODE library calls (invoked by the interface modules) -------------------------------

    def p_connect_request(
        self,
        caller: "IsodeInterfaceModule",
        called_address: str,
        user_data: bytes,
    ) -> _Association:
        responder = self.resolve(called_address)
        association = _Association(aid=next(self._ids), initiator=caller, responder=responder)
        self._associations[association.aid] = association
        self._association_of[caller.uid] = association
        self._association_of[responder.uid] = association
        apdu = build_aarq("mcam", calling=caller.address, called=called_address, user_information=user_data)
        self.calls += 1
        self.bytes_carried += len(apdu)
        responder.deliver(
            "PConnectIndication",
            {
                "calling_address": caller.address,
                "called_address": called_address,
                "user_data": user_data,
                "connection_ref": association.aid,
            },
        )
        return association

    def p_connect_response(
        self, responder: "IsodeInterfaceModule", accepted: bool, user_data: bytes
    ) -> None:
        association = self._require_association(responder)
        association.established = accepted
        apdu = build_aare("mcam", accepted, user_information=user_data)
        self.calls += 1
        self.bytes_carried += len(apdu)
        association.initiator.deliver(
            "PConnectConfirm",
            {"accepted": accepted, "user_data": user_data, "connection_ref": association.aid},
        )
        if not accepted:
            self._drop(association)

    def p_data_request(self, sender: "IsodeInterfaceModule", data: bytes, value: Any) -> None:
        association = self._require_association(sender)
        if not association.established:
            raise IsodeError("P-DATA request on an association that is not established")
        self.calls += 1
        self.bytes_carried += len(data) if data else 0
        association.peer_of(sender).deliver(
            "PDataIndication", {"context_id": 1, "data": data, "value": value}
        )

    def p_release_request(self, sender: "IsodeInterfaceModule") -> None:
        association = self._require_association(sender)
        self.calls += 1
        association.peer_of(sender).deliver("PReleaseIndication", {})

    def p_release_response(self, sender: "IsodeInterfaceModule") -> None:
        association = self._require_association(sender)
        self.calls += 1
        association.peer_of(sender).deliver("PReleaseConfirm", {})
        self._drop(association)

    # -- internals -----------------------------------------------------------------------------

    def _require_association(self, module: "IsodeInterfaceModule") -> _Association:
        association = self._association_of.get(module.uid)
        if association is None:
            raise IsodeError(f"{module.path} has no association")
        return association

    def _drop(self, association: _Association) -> None:
        self._association_of.pop(association.initiator.uid, None)
        self._association_of.pop(association.responder.uid, None)
        self._associations.pop(association.aid, None)


class IsodeInterfaceModule(Module):
    """Hand-coded Estelle module mapping interactions onto ISODE calls.

    ``EXTERNAL = True``: the body is not expressed as transitions; the runtime
    calls :meth:`external_step` whenever the module has work (an interaction
    queued by its user, or an event queued by the broker).
    """

    ATTRIBUTE = ModuleAttribute.PROCESS
    EXTERNAL = True
    LAYER = "isode"

    #: Simulated cost of one pass through the hand-coded loop.  One pass does
    #: the work that takes the generated stack two module traversals plus the
    #: transport pipe, which is why the hand-coded variant is cheaper.
    STEP_COST = 1.6

    user = ip("user", PRESENTATION_SERVICE, role="provider")

    def initialise(self) -> None:
        super().initialise()
        broker: IsodeBroker = self.variables["broker"]
        self.address: str = self.variables.get("address", self.path)
        broker.register(self.address, self)
        self._inbox: Deque[Tuple[str, Dict[str, Any]]] = deque()
        self.steps_executed = 0

    # -- broker-facing -----------------------------------------------------------------------------

    def deliver(self, event: str, params: Dict[str, Any]) -> None:
        """Called by the broker: queue an event for the next external step."""
        self._inbox.append((event, params))

    # -- runtime-facing -----------------------------------------------------------------------------

    def external_ready(self) -> bool:
        return self.pending_interactions() > 0 or bool(self._inbox)

    def external_step(self) -> float:
        """One pass of the paper's interface loop; returns the simulated cost."""
        broker: IsodeBroker = self.variables["broker"]
        self.steps_executed += 1

        user_ip = self.ip_named("user")
        if user_ip.pending():
            interaction = user_ip.consume()
            self._handle_user_interaction(broker, interaction)
            return self.STEP_COST

        if self._inbox:
            event, params = self._inbox.popleft()
            self.output("user", event, **params)
            return self.STEP_COST * 0.5
        return 0.1  # nothing to do (spurious wake-up)

    # -- mapping Estelle interactions to ISODE calls ---------------------------------------------------

    def _handle_user_interaction(self, broker: IsodeBroker, interaction) -> None:
        name = interaction.name
        if name == "PConnectRequest":
            broker.p_connect_request(
                self,
                called_address=interaction.param("called_address", ""),
                user_data=interaction.param("user_data", b""),
            )
        elif name == "PConnectResponse":
            broker.p_connect_response(
                self,
                accepted=interaction.param("accepted", True),
                user_data=interaction.param("user_data", b""),
            )
        elif name == "PDataRequest":
            data = interaction.param("data", b"")
            if isinstance(data, str):
                data = data.encode("ascii")
            broker.p_data_request(self, data=bytes(data), value=interaction.param("value"))
        elif name == "PReleaseRequest":
            broker.p_release_request(self)
        elif name == "PReleaseResponse":
            broker.p_release_response(self)
        elif name == "PAbortRequest":
            association = broker.association_for(self)
            if association is not None:
                association.peer_of(self).deliver("PAbortIndication", {})
        else:
            raise IsodeError(f"{self.path}: unsupported interaction {name!r}")
