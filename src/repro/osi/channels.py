"""Estelle channel definitions for the OSI service boundaries.

Each OSI layer boundary is an Estelle channel with a *user* and a *provider*
role; the interactions are the service primitives of that boundary
(request/indication/response/confirm).  These channels are shared by the
generated (Estelle) protocol stack, the hand-coded ISODE-style interface
module and the MCAM modules, which is what lets the two stack variants of the
paper's Fig. 2 be swapped underneath the same MCAM specification.
"""

from __future__ import annotations

from ..estelle import Channel

#: Transport service boundary (simplified to the connectionless reliable pipe
#: the paper's Section 5.1 test environment uses).
TRANSPORT_SERVICE = Channel(
    "TransportService",
    user={
        "TConnectRequest",
        "TDataRequest",
        "TDisconnectRequest",
    },
    provider={
        "TConnectConfirm",
        "TDataIndication",
        "TDisconnectIndication",
    },
)

#: Session service boundary (kernel functional unit).
SESSION_SERVICE = Channel(
    "SessionService",
    user={
        "SConnectRequest",
        "SConnectResponse",
        "SDataRequest",
        "SReleaseRequest",
        "SReleaseResponse",
        "SAbortRequest",
    },
    provider={
        "SConnectIndication",
        "SConnectConfirm",
        "SDataIndication",
        "SReleaseIndication",
        "SReleaseConfirm",
        "SAbortIndication",
    },
)

#: Presentation service boundary (kernel functional unit).  This is also the
#: boundary offered by the hand-coded ISODE interface module, so the MCAM
#: module can be placed on either implementation.
PRESENTATION_SERVICE = Channel(
    "PresentationService",
    user={
        "PConnectRequest",
        "PConnectResponse",
        "PDataRequest",
        "PReleaseRequest",
        "PReleaseResponse",
        "PAbortRequest",
    },
    provider={
        "PConnectIndication",
        "PConnectConfirm",
        "PDataIndication",
        "PReleaseIndication",
        "PReleaseConfirm",
        "PAbortIndication",
    },
)

#: ACSE association boundary (used by the ISODE-style hand-coded path).
ACSE_SERVICE = Channel(
    "AcseService",
    user={
        "AAssociateRequest",
        "AAssociateResponse",
        "ADataRequest",
        "AReleaseRequest",
        "AReleaseResponse",
    },
    provider={
        "AAssociateIndication",
        "AAssociateConfirm",
        "ADataIndication",
        "AReleaseIndication",
        "AReleaseConfirm",
        "AAbortIndication",
    },
)
