"""ACSE — Association Control Service Element (ISO 8649/8650 subset).

MCAM associations in the ISODE-based stack are established through ACSE on
top of the presentation service.  This module defines the four APDUs the
kernel needs (AARQ, AARE, RLRQ, RLRE) with their ASN.1 schemas, BER
encoding helpers and a small association state machine used by the hand-coded
ISODE-style interface (:mod:`repro.osi.isode`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..asn1 import (
    Choice,
    Component,
    Enumerated,
    IA5String,
    Integer,
    OctetString,
    Sequence,
    decode,
    encode,
)


class AcseError(Exception):
    """Protocol errors of the association control service element."""


# -- APDU schemas ------------------------------------------------------------------------

AARQ_SCHEMA = Sequence(
    "AARQ",
    [
        Component("protocolVersion", Integer(), default=1),
        Component("applicationContextName", IA5String()),
        Component("callingApTitle", IA5String(), optional=True),
        Component("calledApTitle", IA5String(), optional=True),
        Component("userInformation", OctetString(), optional=True),
    ],
)

AARE_RESULT = Enumerated({"accepted": 0, "rejectedPermanent": 1, "rejectedTransient": 2})

AARE_SCHEMA = Sequence(
    "AARE",
    [
        Component("protocolVersion", Integer(), default=1),
        Component("applicationContextName", IA5String()),
        Component("result", AARE_RESULT),
        Component("userInformation", OctetString(), optional=True),
    ],
)

RLRQ_SCHEMA = Sequence(
    "RLRQ",
    [
        Component("reason", Integer(), default=0),
        Component("userInformation", OctetString(), optional=True),
    ],
)

RLRE_SCHEMA = Sequence(
    "RLRE",
    [
        Component("reason", Integer(), default=0),
        Component("userInformation", OctetString(), optional=True),
    ],
)

ACSE_APDU = Choice(
    "AcseApdu",
    [
        ("aarq", AARQ_SCHEMA),
        ("aare", AARE_SCHEMA),
        ("rlrq", RLRQ_SCHEMA),
        ("rlre", RLRE_SCHEMA),
    ],
)


# -- convenience constructors ---------------------------------------------------------------


def build_aarq(
    application_context: str,
    calling: str = "",
    called: str = "",
    user_information: bytes = b"",
) -> bytes:
    """Encode an A-ASSOCIATE request APDU."""
    value = {"applicationContextName": application_context}
    if calling:
        value["callingApTitle"] = calling
    if called:
        value["calledApTitle"] = called
    if user_information:
        value["userInformation"] = user_information
    return encode(ACSE_APDU, ("aarq", value))


def build_aare(
    application_context: str, accepted: bool, user_information: bytes = b""
) -> bytes:
    """Encode an A-ASSOCIATE response APDU."""
    value = {
        "applicationContextName": application_context,
        "result": "accepted" if accepted else "rejectedPermanent",
    }
    if user_information:
        value["userInformation"] = user_information
    return encode(ACSE_APDU, ("aare", value))


def build_rlrq(reason: int = 0) -> bytes:
    return encode(ACSE_APDU, ("rlrq", {"reason": reason}))


def build_rlre(reason: int = 0) -> bytes:
    return encode(ACSE_APDU, ("rlre", {"reason": reason}))


def parse_apdu(data: bytes) -> Tuple[str, dict]:
    """Decode any ACSE APDU; returns (kind, value dict)."""
    kind, value = decode(ACSE_APDU, data)
    return kind, value


# -- association state machine ------------------------------------------------------------------


@dataclass
class AcseAssociation:
    """State machine of one ACSE association endpoint.

    Used by the hand-coded ISODE interface module (and its tests) to keep the
    association life cycle honest: requests are only legal in the states the
    standard allows.
    """

    application_context: str = "mcam"
    local_title: str = ""
    remote_title: str = ""
    state: str = "idle"  # idle | associating | associated | releasing

    def associate_request(self, called: str, user_information: bytes = b"") -> bytes:
        if self.state != "idle":
            raise AcseError(f"A-ASSOCIATE request illegal in state {self.state!r}")
        self.remote_title = called
        self.state = "associating"
        return build_aarq(
            self.application_context,
            calling=self.local_title,
            called=called,
            user_information=user_information,
        )

    def associate_indication(self, apdu: bytes) -> dict:
        if self.state != "idle":
            raise AcseError(f"A-ASSOCIATE indication illegal in state {self.state!r}")
        kind, value = parse_apdu(apdu)
        if kind != "aarq":
            raise AcseError(f"expected AARQ, got {kind.upper()}")
        self.remote_title = value.get("callingApTitle", "")
        self.state = "associating"
        return value

    def associate_response(self, accepted: bool, user_information: bytes = b"") -> bytes:
        if self.state != "associating":
            raise AcseError(f"A-ASSOCIATE response illegal in state {self.state!r}")
        self.state = "associated" if accepted else "idle"
        return build_aare(self.application_context, accepted, user_information)

    def associate_confirm(self, apdu: bytes) -> bool:
        if self.state != "associating":
            raise AcseError(f"A-ASSOCIATE confirm illegal in state {self.state!r}")
        kind, value = parse_apdu(apdu)
        if kind != "aare":
            raise AcseError(f"expected AARE, got {kind.upper()}")
        accepted = value["result"] == "accepted"
        self.state = "associated" if accepted else "idle"
        return accepted

    def release_request(self) -> bytes:
        if self.state != "associated":
            raise AcseError(f"A-RELEASE request illegal in state {self.state!r}")
        self.state = "releasing"
        return build_rlrq()

    def release_indication(self, apdu: bytes) -> None:
        if self.state != "associated":
            raise AcseError(f"A-RELEASE indication illegal in state {self.state!r}")
        kind, _ = parse_apdu(apdu)
        if kind != "rlrq":
            raise AcseError(f"expected RLRQ, got {kind.upper()}")
        self.state = "releasing"

    def release_response(self) -> bytes:
        if self.state != "releasing":
            raise AcseError(f"A-RELEASE response illegal in state {self.state!r}")
        self.state = "idle"
        return build_rlre()

    def release_confirm(self, apdu: bytes) -> None:
        if self.state != "releasing":
            raise AcseError(f"A-RELEASE confirm illegal in state {self.state!r}")
        kind, _ = parse_apdu(apdu)
        if kind != "rlre":
            raise AcseError(f"expected RLRE, got {kind.upper()}")
        self.state = "idle"

    @property
    def is_associated(self) -> bool:
        return self.state == "associated"
