"""The Equipment User Agent (EUA): client-side equipment control.

The EUA is the agent an MCAM entity embeds to control equipment at one or
more remote sites (Fig. 1 shows one EUA talking to several ECAs).  It keeps a
table of known ECAs, addresses commands to the right site, and exposes typed
convenience methods so MCAM code does not build command dictionaries by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from .devices import EquipmentError
from .eca import EquipmentControlAgent


@dataclass
class EuaStats:
    commands_sent: int = 0
    failures: int = 0


class EquipmentUserAgent:
    """Client-side access point to remote equipment control agents."""

    def __init__(self, owner: str = "mcam-user"):
        self.owner = owner
        self._sites: Dict[str, EquipmentControlAgent] = {}
        self.stats = EuaStats()

    # -- site management ---------------------------------------------------------------------------

    def attach_site(self, eca: EquipmentControlAgent) -> None:
        if eca.site in self._sites:
            raise EquipmentError(f"site {eca.site!r} is already attached")
        self._sites[eca.site] = eca

    def sites(self) -> List[str]:
        return sorted(self._sites)

    def _eca(self, site: str) -> EquipmentControlAgent:
        try:
            return self._sites[site]
        except KeyError as exc:
            raise EquipmentError(f"no equipment control agent for site {site!r}") from exc

    # -- command plumbing -----------------------------------------------------------------------------

    def send(self, site: str, command: Mapping[str, Any]) -> Dict[str, Any]:
        """Send a raw command dictionary to a site's ECA."""
        self.stats.commands_sent += 1
        enriched = dict(command)
        enriched.setdefault("owner", self.owner)
        result = self._eca(site).handle(enriched)
        if not result.get("success", False):
            self.stats.failures += 1
        return result

    def _checked(self, site: str, command: Mapping[str, Any]) -> Dict[str, Any]:
        result = self.send(site, command)
        if not result.get("success", False):
            raise EquipmentError(result.get("error", "equipment command failed"))
        return result

    # -- typed operations ----------------------------------------------------------------------------------

    def list_equipment(self, site: str) -> List[Dict[str, Any]]:
        return self._checked(site, {"operation": "list"})["devices"]

    def device_status(self, site: str, device: str) -> Dict[str, Any]:
        return self._checked(site, {"operation": "status", "device": device})["status"]

    def reserve(self, site: str, device: str) -> None:
        self._checked(site, {"operation": "reserve", "device": device})

    def release(self, site: str, device: str) -> None:
        self._checked(site, {"operation": "release", "device": device})

    def power_on(self, site: str, device: str) -> Dict[str, Any]:
        return self._checked(site, {"operation": "power_on", "device": device})["status"]

    def power_off(self, site: str, device: str) -> Dict[str, Any]:
        return self._checked(site, {"operation": "power_off", "device": device})["status"]

    def activate(self, site: str, device: str) -> Dict[str, Any]:
        return self._checked(site, {"operation": "activate", "device": device})["status"]

    def deactivate(self, site: str, device: str) -> Dict[str, Any]:
        return self._checked(site, {"operation": "deactivate", "device": device})["status"]

    def set_parameter(self, site: str, device: str, parameter: str, value: Any) -> Dict[str, Any]:
        return self._checked(
            site,
            {"operation": "set_parameter", "device": device, "parameter": parameter, "value": value},
        )["status"]

    def get_parameter(self, site: str, device: str, parameter: str) -> Any:
        return self._checked(
            site, {"operation": "get_parameter", "device": device, "parameter": parameter}
        )["value"]

    def prepare_playback(self, site: str) -> List[str]:
        """Power on and activate the playback chain (speaker + display) at a site.

        Returns the names of the devices made active; used by the MCAM server
        when a PLAY request arrives.
        """
        activated: List[str] = []
        for status in self.list_equipment(site):
            if status["kind"] in ("speaker", "display"):
                name = status["name"]
                if status["state"] == "off":
                    self.power_on(site, name)
                if self.device_status(site, name)["state"] != "active":
                    self.activate(site, name)
                activated.append(name)
        return activated

    def prepare_recording(self, site: str) -> List[str]:
        """Power on and activate the recording chain (camera + microphone)."""
        activated: List[str] = []
        for status in self.list_equipment(site):
            if status["kind"] in ("camera", "microphone"):
                name = status["name"]
                if status["state"] == "off":
                    self.power_on(site, name)
                if self.device_status(site, name)["state"] != "active":
                    self.activate(site, name)
                activated.append(name)
        return activated

    def stop_all(self, site: str) -> None:
        """Deactivate every active device at a site (end of playback/recording)."""
        for status in self.list_equipment(site):
            if status["state"] == "active":
                self.deactivate(site, status["name"])
