"""Continuous-media equipment control: devices, the ECA and the EUA.

The equipment control system of Fig. 1: simulated cameras, microphones,
speakers and displays, the per-site Equipment Control Agent that owns them,
and the Equipment User Agent through which MCAM entities control them.
"""

from .devices import (
    Camera,
    DEVICE_KINDS,
    Device,
    Display,
    EquipmentError,
    InvalidTransition,
    Microphone,
    ParameterOutOfRange,
    ParameterSpec,
    Speaker,
    UnknownParameter,
    make_device,
)
from .eca import EquipmentControlAgent, Reservation
from .eua import EquipmentUserAgent, EuaStats

__all__ = [
    "Camera",
    "DEVICE_KINDS",
    "Device",
    "Display",
    "EquipmentControlAgent",
    "EquipmentError",
    "EquipmentUserAgent",
    "EuaStats",
    "InvalidTransition",
    "Microphone",
    "ParameterOutOfRange",
    "ParameterSpec",
    "Reservation",
    "Speaker",
    "UnknownParameter",
    "make_device",
]
