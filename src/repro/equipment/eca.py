"""The Equipment Control Agent (ECA).

One ECA runs per site and owns the CM devices attached to that site's
computer system.  Remote users act through their Equipment User Agent (EUA),
which sends command dictionaries to the ECA; every command yields a result
dictionary with ``success`` and either the requested data or an ``error``
message.  The command/result indirection mirrors the request/response PDUs the
real service would carry and is what the MCAM server's EUA module feeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from .devices import Device, EquipmentError, make_device


@dataclass
class Reservation:
    """An exclusive reservation of a device by a user (e.g. one MCAM session)."""

    device_name: str
    owner: str


class EquipmentControlAgent:
    """Registry and command executor for one site's CM equipment."""

    def __init__(self, site: str = "local"):
        self.site = site
        self._devices: Dict[str, Device] = {}
        self._reservations: Dict[str, Reservation] = {}
        self.commands_handled = 0

    # -- configuration -------------------------------------------------------------------------

    def install(self, device: Device) -> Device:
        if device.name in self._devices:
            raise EquipmentError(f"device {device.name!r} is already installed at {self.site}")
        self._devices[device.name] = device
        return device

    def install_standard_studio(self) -> List[Device]:
        """Install the equipment set used by the examples: camera, microphone,
        speaker and display."""
        devices = [
            make_device("camera", "camera-1", self.site),
            make_device("microphone", "microphone-1", self.site),
            make_device("speaker", "speaker-1", self.site),
            make_device("display", "display-1", self.site),
        ]
        for device in devices:
            self.install(device)
        return devices

    def device(self, name: str) -> Device:
        try:
            return self._devices[name]
        except KeyError as exc:
            raise EquipmentError(f"no device {name!r} at site {self.site!r}") from exc

    def devices(self) -> List[Device]:
        return list(self._devices.values())

    # -- reservations -----------------------------------------------------------------------------

    def reserve(self, name: str, owner: str) -> None:
        device = self.device(name)
        current = self._reservations.get(name)
        if current is not None and current.owner != owner:
            raise EquipmentError(
                f"device {name!r} is reserved by {current.owner!r}"
            )
        self._reservations[name] = Reservation(device_name=device.name, owner=owner)

    def release(self, name: str, owner: str) -> None:
        current = self._reservations.get(name)
        if current is None:
            return
        if current.owner != owner:
            raise EquipmentError(f"device {name!r} is reserved by {current.owner!r}")
        del self._reservations[name]

    def reserved_by(self, name: str) -> Optional[str]:
        reservation = self._reservations.get(name)
        return reservation.owner if reservation else None

    def _check_owner(self, name: str, owner: str) -> None:
        current = self._reservations.get(name)
        if current is not None and current.owner != owner:
            raise EquipmentError(f"device {name!r} is reserved by {current.owner!r}")

    # -- command interface (what the EUA sends) -----------------------------------------------------

    def handle(self, command: Mapping[str, Any]) -> Dict[str, Any]:
        """Execute one equipment-control command.

        Commands are dictionaries with an ``operation`` key; see the
        individual branches for their parameters.  Errors never raise through
        this interface — they are reported in the result, the way a protocol
        would carry a negative response.
        """
        self.commands_handled += 1
        operation = command.get("operation", "")
        try:
            if operation == "list":
                return {"success": True, "devices": [d.status() for d in self.devices()]}
            if operation == "status":
                return {"success": True, "status": self.device(command["device"]).status()}
            name = command["device"]
            owner = command.get("owner", "")
            if operation == "reserve":
                self.reserve(name, owner)
                return {"success": True}
            if operation == "release":
                self.release(name, owner)
                return {"success": True}
            self._check_owner(name, owner)
            device = self.device(name)
            if operation == "power_on":
                device.power_on()
            elif operation == "power_off":
                device.power_off()
            elif operation == "activate":
                device.activate()
            elif operation == "deactivate":
                device.deactivate()
            elif operation == "set_parameter":
                device.set_parameter(command["parameter"], command["value"])
            elif operation == "get_parameter":
                return {
                    "success": True,
                    "value": device.get_parameter(command["parameter"]),
                }
            elif operation == "reset":
                device.reset()
            else:
                return {"success": False, "error": f"unknown operation {operation!r}"}
            return {"success": True, "status": device.status()}
        except (EquipmentError, KeyError) as exc:
            return {"success": False, "error": str(exc)}
