"""Simulated continuous-media equipment.

The equipment control service *"enables the user to control CM equipment
attached to remote computer systems, e.g. speakers, cameras, and
microphones"* (Section 2).  Each device is a small state machine
(off → standby → active) with typed, range-checked parameters; the concrete
device classes add the parameters a real device of that kind would expose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple


class EquipmentError(Exception):
    """Base class for equipment control failures."""


class InvalidTransition(EquipmentError):
    """The requested device state change is not allowed from the current state."""


class UnknownParameter(EquipmentError):
    """The device has no such parameter."""


class ParameterOutOfRange(EquipmentError):
    """The parameter value is outside the device's allowed range."""


@dataclass(frozen=True)
class ParameterSpec:
    """One controllable parameter of a device."""

    name: str
    default: Any
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    choices: Optional[Tuple[Any, ...]] = None

    def validate(self, value: Any) -> None:
        if self.choices is not None:
            if value not in self.choices:
                raise ParameterOutOfRange(
                    f"{self.name}={value!r} not in allowed choices {list(self.choices)}"
                )
            return
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ParameterOutOfRange(f"{self.name} expects a number, got {value!r}")
        if self.minimum is not None and value < self.minimum:
            raise ParameterOutOfRange(f"{self.name}={value} below minimum {self.minimum}")
        if self.maximum is not None and value > self.maximum:
            raise ParameterOutOfRange(f"{self.name}={value} above maximum {self.maximum}")


class Device:
    """Base device: state machine plus parameter store.

    States: ``off`` → ``standby`` (powered, not producing/consuming media) →
    ``active`` (attached to a stream).  ``fault`` can be entered from any
    state by :meth:`fail` and left only through :meth:`reset`.
    """

    KIND = "device"
    PARAMETERS: Tuple[ParameterSpec, ...] = ()

    _TRANSITIONS = {
        ("off", "standby"),
        ("standby", "off"),
        ("standby", "active"),
        ("active", "standby"),
    }

    def __init__(self, name: str, location: str = "local"):
        self.name = name
        self.location = location
        self.state = "off"
        self.parameters: Dict[str, Any] = {
            spec.name: spec.default for spec in self.PARAMETERS
        }
        self._specs = {spec.name: spec for spec in self.PARAMETERS}
        self.transitions_log: List[Tuple[str, str]] = []

    # -- state machine ------------------------------------------------------------------------

    def _change_state(self, target: str) -> None:
        if self.state == "fault":
            raise InvalidTransition(f"{self.name} is in fault state; reset it first")
        if (self.state, target) not in self._TRANSITIONS:
            raise InvalidTransition(
                f"{self.name}: cannot go from {self.state!r} to {target!r}"
            )
        self.transitions_log.append((self.state, target))
        self.state = target

    def power_on(self) -> None:
        self._change_state("standby")

    def power_off(self) -> None:
        if self.state == "active":
            self._change_state("standby")
        self._change_state("off")

    def activate(self) -> None:
        self._change_state("active")

    def deactivate(self) -> None:
        if self.state != "active":
            raise InvalidTransition(
                f"{self.name}: deactivate is only legal from 'active' (state is {self.state!r})"
            )
        self._change_state("standby")

    def fail(self, reason: str = "") -> None:
        """Inject a fault (used by the failure-injection tests)."""
        self.transitions_log.append((self.state, "fault"))
        self.state = "fault"
        self.fault_reason = reason

    def reset(self) -> None:
        self.transitions_log.append((self.state, "off"))
        self.state = "off"

    @property
    def is_active(self) -> bool:
        return self.state == "active"

    # -- parameters --------------------------------------------------------------------------------

    def set_parameter(self, name: str, value: Any) -> None:
        spec = self._specs.get(name)
        if spec is None:
            raise UnknownParameter(f"{self.name} has no parameter {name!r}")
        spec.validate(value)
        self.parameters[name] = value

    def get_parameter(self, name: str) -> Any:
        if name not in self.parameters:
            raise UnknownParameter(f"{self.name} has no parameter {name!r}")
        return self.parameters[name]

    def status(self) -> Dict[str, Any]:
        """A status report as the ECA returns it to remote EUAs."""
        return {
            "name": self.name,
            "kind": self.KIND,
            "location": self.location,
            "state": self.state,
            "parameters": dict(self.parameters),
        }

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}({self.name!r}, state={self.state!r})"


class Camera(Device):
    KIND = "camera"
    PARAMETERS = (
        ParameterSpec("frameRate", 25, minimum=1, maximum=60),
        ParameterSpec("resolution", "352x288", choices=("176x144", "352x288", "704x576")),
        ParameterSpec("zoom", 1.0, minimum=1.0, maximum=12.0),
        ParameterSpec("pan", 0.0, minimum=-90.0, maximum=90.0),
        ParameterSpec("tilt", 0.0, minimum=-45.0, maximum=45.0),
    )


class Microphone(Device):
    KIND = "microphone"
    PARAMETERS = (
        ParameterSpec("gain", 0.5, minimum=0.0, maximum=1.0),
        ParameterSpec("sampleRate", 44100, choices=(8000, 22050, 44100, 48000)),
        ParameterSpec("muted", 0, choices=(0, 1)),
    )


class Speaker(Device):
    KIND = "speaker"
    PARAMETERS = (
        ParameterSpec("volume", 0.7, minimum=0.0, maximum=1.0),
        ParameterSpec("muted", 0, choices=(0, 1)),
        ParameterSpec("balance", 0.0, minimum=-1.0, maximum=1.0),
    )


class Display(Device):
    KIND = "display"
    PARAMETERS = (
        ParameterSpec("brightness", 0.8, minimum=0.0, maximum=1.0),
        ParameterSpec("resolution", "1024x768", choices=("640x480", "1024x768", "1280x1024")),
    )


DEVICE_KINDS = {cls.KIND: cls for cls in (Camera, Microphone, Speaker, Display)}


def make_device(kind: str, name: str, location: str = "local") -> Device:
    """Factory used by the ECA when a site's equipment list is configured."""
    try:
        return DEVICE_KINDS[kind](name, location)
    except KeyError as exc:
        raise EquipmentError(
            f"unknown device kind {kind!r}; known: {sorted(DEVICE_KINDS)}"
        ) from exc
