"""Benchmark harness helpers: result tables and experiment records.

Every benchmark in ``benchmarks/`` regenerates one table or figure of the
paper; the helpers here render the regenerated rows/series in a uniform way so
the console output of ``pytest benchmarks/ --benchmark-only`` can be compared
side-by-side with the paper (see EXPERIMENTS.md).
"""

from .report import ExperimentRecord, format_table, print_experiment

__all__ = ["ExperimentRecord", "format_table", "print_experiment"]
