"""Plain-text experiment reports for the benchmark suite."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence


def format_table(rows: Sequence[Mapping[str, Any]], columns: Optional[Sequence[str]] = None) -> str:
    """Render a list of row dictionaries as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns = list(columns or rows[0].keys())
    rendered = [[_cell(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[index]) for line in rendered))
        for index, column in enumerate(columns)
    ]
    header = "  ".join(column.ljust(widths[index]) for index, column in enumerate(columns))
    separator = "  ".join("-" * widths[index] for index in range(len(columns)))
    body = [
        "  ".join(line[index].ljust(widths[index]) for index in range(len(columns)))
        for line in rendered
    ]
    return "\n".join([header, separator, *body])


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


@dataclass
class ExperimentRecord:
    """One reproduced experiment: identity, the paper's claim, our measurement."""

    experiment_id: str
    title: str
    paper_claim: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, **values: Any) -> None:
        self.rows.append(dict(values))

    def render(self) -> str:
        lines = [
            f"=== {self.experiment_id}: {self.title} ===",
            f"paper: {self.paper_claim}",
            "",
            format_table(self.rows),
        ]
        if self.notes:
            lines += ["", f"note: {self.notes}"]
        return "\n".join(lines)


def print_experiment(record: ExperimentRecord) -> None:
    """Print a reproduced experiment (captured by pytest -s / benchmark logs)."""
    print("\n" + record.render() + "\n")
