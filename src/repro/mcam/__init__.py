"""MCAM — Movie Control, Access and Management (the paper's contribution).

The package contains the ASN.1-specified MCAM PDUs, the Estelle channels of
the functional model (Fig. 1), the Movie Control Agents and the external
agent bodies (Fig. 3), the client/server system modules and full
specification (Fig. 2), and a high-level API (:class:`MovieSystem`) for
downstream use.
"""

from .agents import DirectoryAgentModule, EquipmentAgentModule, StreamAgentModule
from .api import ClientHandle, McamApiError, MovieSystem, PlaybackResult
from .channels import DIRECTORY_AGENT, EQUIPMENT_AGENT, MCAM_SERVICE, STREAM_AGENT
from .context import ServerContext, build_server_context
from .mca import SERVER_PIPELINES, ClientMca, ServerMca
from .pdus import (
    MCAM_ABSTRACT_SYNTAX,
    MCAM_ASN1_SOURCE,
    MCAM_CONTEXT_ID,
    MCAM_MODULE,
    MCAM_PDU,
    RESPONSE_OF,
    attributes_from_list,
    attributes_to_list,
    decode_pdu,
    encode_pdu,
    is_request,
    is_response,
)
from .systems import (
    ClientApplication,
    McamClientSystem,
    McamPipeSystem,
    McamServerSystem,
    build_mcam_specification,
    mcam_syntax_registry,
)

__all__ = [
    "ClientApplication",
    "ClientHandle",
    "ClientMca",
    "DIRECTORY_AGENT",
    "DirectoryAgentModule",
    "EQUIPMENT_AGENT",
    "EquipmentAgentModule",
    "MCAM_ABSTRACT_SYNTAX",
    "MCAM_ASN1_SOURCE",
    "MCAM_CONTEXT_ID",
    "MCAM_MODULE",
    "MCAM_PDU",
    "MCAM_SERVICE",
    "McamApiError",
    "McamClientSystem",
    "McamPipeSystem",
    "McamServerSystem",
    "MovieSystem",
    "PlaybackResult",
    "RESPONSE_OF",
    "SERVER_PIPELINES",
    "STREAM_AGENT",
    "ServerContext",
    "ServerMca",
    "StreamAgentModule",
    "attributes_from_list",
    "attributes_to_list",
    "build_mcam_specification",
    "build_server_context",
    "decode_pdu",
    "encode_pdu",
    "is_request",
    "is_response",
    "mcam_syntax_registry",
]
