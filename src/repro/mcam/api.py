"""High-level MCAM API: the facade a downstream application programs against.

:class:`MovieSystem` assembles the whole distributed system of Fig. 2 — the
server context (directory, movie store, stream provider, equipment), the
Estelle specification (clients, server entities, stacks, pipes), the
simulated cluster (KSR1 plus client workstations) and the runtime executor —
and exposes per-client handles with synchronous movie operations.

Control operations run on the Estelle runtime (work-unit time); continuous-
media streams run on the shared discrete-event scheduler (millisecond time).
:meth:`ClientHandle.play` drives both: it performs the MCAM control exchange
and then lets the network simulation deliver the stream, returning the QoS
report the receiver measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..runtime import (
    ConnectionPerProcessorMapping,
    DispatchStrategy,
    MappingStrategy,
    Scheduler,
    SpecificationExecutor,
)
from ..sim import Cluster, CostModel, Machine
from ..stream import MtpReceiver, QosReport
from .context import ServerContext, build_server_context
from .pdus import attributes_to_list
from .systems import build_mcam_specification


class McamApiError(Exception):
    """Raised when an MCAM operation cannot be completed at the API level."""


@dataclass
class PlaybackResult:
    """Everything a PLAY operation produced."""

    response: Dict[str, Any]
    stream_id: int
    frames_sent: int
    frames_delivered: int
    qos: QosReport

    @property
    def delivery_ratio(self) -> float:
        return self.frames_delivered / self.frames_sent if self.frames_sent else 1.0


class ClientHandle:
    """Synchronous movie operations for one MCAM client entity."""

    def __init__(self, system: "MovieSystem", index: int, host: str, stream_port: int):
        self.system = system
        self.index = index
        self.host = host
        self.stream_port = stream_port
        self._application = system.specification.find(f"client-{index}/app")
        self.receiver: Optional[MtpReceiver] = None
        self._last_play_frame_interval: float = 40.0

    # -- plumbing ------------------------------------------------------------------------------

    def _request(self, alternative: str, value: Mapping[str, Any], max_rounds: int = 4000) -> Dict[str, Any]:
        """Send one MCAM request and run the runtime until its response arrives."""
        responses: List = self._application.variables["responses"]
        expected = len(responses) + 1
        self._application.variables["commands"].append((alternative, dict(value)))
        self.system.run_rounds(max_rounds=max_rounds, until=lambda: len(responses) >= expected)
        if len(responses) < expected:
            raise McamApiError(
                f"client {self.index}: no response to {alternative!r} after {max_rounds} rounds"
            )
        name, response = responses[-1]
        return {"pdu": name, **response}

    @staticmethod
    def _check(response: Dict[str, Any], operation: str) -> Dict[str, Any]:
        if response.get("status") != "success":
            raise McamApiError(f"{operation} failed: {response.get('status')}")
        return response

    # -- association ----------------------------------------------------------------------------------

    def connect(self) -> Dict[str, Any]:
        response = self._request(
            "connectRequest",
            {
                "clientName": f"client-{self.index}",
                "streamAddress": self.host,
                "streamPort": self.stream_port,
            },
        )
        return self._check(response, "connect")

    def release(self) -> Dict[str, Any]:
        return self._check(self._request("releaseRequest", {}), "release")

    # -- movie access ----------------------------------------------------------------------------------

    def create_movie(
        self,
        name: str,
        image_format: str = "mjpeg",
        frame_rate: int = 25,
        duration_seconds: int = 10,
        attributes: Optional[Mapping[str, Any]] = None,
    ) -> Dict[str, Any]:
        value: Dict[str, Any] = {
            "name": name,
            "imageFormat": image_format,
            "frameRate": frame_rate,
            "durationSeconds": duration_seconds,
        }
        if attributes:
            value["attributes"] = attributes_to_list(attributes)
        self._last_play_frame_interval = 1000.0 / frame_rate
        return self._check(self._request("createMovieRequest", value), "create_movie")

    def delete_movie(self, name: str) -> Dict[str, Any]:
        return self._check(self._request("deleteMovieRequest", {"name": name}), "delete_movie")

    def select_movie(self, name: str) -> Dict[str, Any]:
        return self._check(self._request("selectMovieRequest", {"name": name}), "select_movie")

    # -- movie management --------------------------------------------------------------------------------

    def query_attributes(self, name: Optional[str] = None, filter_expression: Optional[str] = None) -> List[Dict[str, Any]]:
        value: Dict[str, Any] = {}
        if name:
            value["name"] = name
        if filter_expression:
            value["filter"] = filter_expression
        response = self._check(self._request("queryAttributesRequest", value), "query_attributes")
        return response.get("movies", [])

    def modify_attributes(self, name: str, changes: Mapping[str, Any]) -> Dict[str, Any]:
        value = {"name": name, "changes": attributes_to_list(changes)}
        return self._check(self._request("modifyAttributesRequest", value), "modify_attributes")

    # -- movie control -------------------------------------------------------------------------------------

    def play(
        self,
        name: Optional[str] = None,
        rate_percent: int = 100,
        jitter_target_ms: float = 30.0,
        deliver: bool = True,
    ) -> PlaybackResult:
        """PLAY the selected (or named) movie and, optionally, deliver the stream."""
        frame_rate = 25.0
        if name:
            described = self.query_attributes(name=name)
            if described:
                attributes = {a["name"]: a["value"] for a in described[0]["attributes"]}
                frame_rate = float(attributes.get("frameRate", frame_rate))
        frame_interval = 1000.0 / frame_rate * (100.0 / rate_percent)

        self.receiver = MtpReceiver(
            self.system.context.scheduler,
            self.system.context.network,
            host=self.host,
            port=self.stream_port,
            frame_interval_ms=frame_interval,
            jitter_target_ms=jitter_target_ms,
        )
        value: Dict[str, Any] = {"ratePercent": rate_percent}
        if name:
            value["name"] = name
        response = self._check(self._request("playRequest", value), "play")
        stream_id = int(response.get("streamId", 0))

        frames_sent = 0
        frames_delivered = 0
        if deliver:
            self.system.deliver_streams()
            self.receiver.finalise()
            sender = self.system.context.stream_provider.sender(stream_id)
            frames_sent = sender.stats.frames_sent
            frames_delivered = self.receiver.stats.frames_delivered
        qos = self.receiver.qos.report()
        return PlaybackResult(
            response=response,
            stream_id=stream_id,
            frames_sent=frames_sent,
            frames_delivered=frames_delivered,
            qos=qos,
        )

    def pause(self, stream_id: int) -> Dict[str, Any]:
        return self._check(self._request("pauseRequest", {"streamId": stream_id}), "pause")

    def resume(self, stream_id: int) -> Dict[str, Any]:
        return self._check(self._request("resumeRequest", {"streamId": stream_id}), "resume")

    def stop(self, stream_id: int) -> Dict[str, Any]:
        response = self._check(self._request("stopRequest", {"streamId": stream_id}), "stop")
        if self.receiver is not None:
            self.receiver.close()
            self.receiver = None
        return response

    def record(
        self, name: str, duration_seconds: int = 5, image_format: str = "mjpeg", frame_rate: int = 25
    ) -> Dict[str, Any]:
        value = {
            "name": name,
            "durationSeconds": duration_seconds,
            "imageFormat": image_format,
            "frameRate": frame_rate,
        }
        return self._check(self._request("recordRequest", value), "record")


class MovieSystem:
    """The complete MCAM system: substrate, specification, cluster and runtime."""

    def __init__(
        self,
        clients: int = 1,
        stack: str = "generated",
        server_processors: int = 8,
        client_locations: Optional[Sequence[str]] = None,
        mapping: Optional[MappingStrategy] = None,
        scheduler: Optional[Scheduler] = None,
        dispatch: Optional[DispatchStrategy] = None,
        cost_model: Optional[CostModel] = None,
        dsa_count: int = 2,
        trace: bool = False,
    ):
        self.context: ServerContext = build_server_context(host="ksr1", dsa_count=dsa_count)
        locations = list(client_locations or [f"client-ws-{i + 1}" for i in range(clients)])
        self.stream_ports = [5004 + i for i in range(clients)]
        self.specification, self.broker = build_mcam_specification(
            self.context,
            clients=clients,
            stack=stack,
            server_location="ksr1",
            client_locations=locations,
            stream_ports=self.stream_ports,
        )
        self.cluster = Cluster()
        self.cluster.add(Machine("ksr1", server_processors, cost_model))
        for location in dict.fromkeys(locations):
            self.cluster.add(Machine(location, 1, cost_model))
        self.executor = SpecificationExecutor(
            self.specification,
            self.cluster,
            mapping=mapping or ConnectionPerProcessorMapping(),
            scheduler=scheduler,
            dispatch=dispatch,
            cost_model=cost_model,
            trace=trace,
        )
        self.clients = [
            ClientHandle(self, index, locations[index], self.stream_ports[index])
            for index in range(clients)
        ]

    # -- runtime driving -----------------------------------------------------------------------------------

    def client(self, index: int = 0) -> ClientHandle:
        return self.clients[index]

    def run_rounds(self, max_rounds: int = 4000, until=None) -> None:
        """Run computation rounds until ``until()`` holds or the system quiesces."""
        for _ in range(max_rounds):
            if until is not None and until():
                return
            if not self.executor.step_round():
                if until is None or until():
                    return
                # Nothing fired but the condition is unmet: give the stream /
                # network side a chance, then retry once.
                return

    def run_until_idle(self, max_rounds: int = 10_000) -> None:
        self.executor.run(max_rounds=max_rounds)

    def deliver_streams(self, max_events: int = 200_000) -> None:
        """Run the discrete-event simulation until all media traffic drains."""
        self.context.scheduler.run(max_events=max_events)

    # -- reporting ------------------------------------------------------------------------------------------

    @property
    def metrics(self):
        return self.executor.metrics

    def control_plane_summary(self) -> Dict[str, float]:
        return self.executor.metrics.summary()

    def directory_summary(self) -> Dict[str, int]:
        return {
            "entries": sum(len(dsa) for dsa in self.context.dsas),
            "operations": sum(dsa.stats.operations for dsa in self.context.dsas),
            "chained": sum(dsa.stats.chained for dsa in self.context.dsas),
        }
