"""Server-side resources shared by the MCAM agent modules.

The MCAM server entities of Fig. 2 all operate on the same underlying
services: the distributed movie directory (DSAs), the movie store and stream
provider of the Stream Provider System, and the equipment of the Equipment
Control System.  :class:`ServerContext` bundles those resources; the external
agent modules (DUA, SUA, EUA) receive the context as a module variable,
mirroring the paper's external bodies that "access existing services".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..directory import DirectorySystemAgent, DirectoryUserAgent
from ..equipment import EquipmentControlAgent, EquipmentUserAgent
from ..sim import DatagramNetwork, EventScheduler, FDDI_PROFILE, LinkProfile
from ..stream import MovieStore, StreamProvider


@dataclass
class ServerContext:
    """Everything an MCAM server entity needs beyond its protocol modules."""

    scheduler: EventScheduler
    network: DatagramNetwork
    host: str
    dsas: List[DirectorySystemAgent]
    dua: DirectoryUserAgent
    movie_store: MovieStore
    stream_provider: StreamProvider
    eca: EquipmentControlAgent
    eua: EquipmentUserAgent

    @property
    def home_dsa(self) -> DirectorySystemAgent:
        return self.dsas[0]


def build_server_context(
    host: str = "ksr1",
    dsa_count: int = 2,
    link_profile: Optional[LinkProfile] = None,
    with_studio_equipment: bool = True,
    network_seed: int = 7,
) -> ServerContext:
    """Build the full server-side substrate.

    ``dsa_count`` DSAs are created; the first masters the whole tree by
    default, additional DSAs master disjoint organisational subtrees and are
    connected as peers (so chained searches exercise the distribution).
    """
    scheduler = EventScheduler()
    network = DatagramNetwork(scheduler, profile=link_profile or FDDI_PROFILE, seed=network_seed)

    dsas: List[DirectorySystemAgent] = []
    primary = DirectorySystemAgent("dsa-1", context_prefix="")
    dsas.append(primary)
    for index in range(2, dsa_count + 1):
        peer = DirectorySystemAgent(f"dsa-{index}", context_prefix=f"ou=site-{index}")
        dsas.append(peer)
    for dsa in dsas:
        for other in dsas:
            if dsa is not other:
                dsa.add_peer(other)

    dua = DirectoryUserAgent("server-dua")
    dua.bind(primary)

    movie_store = MovieStore()
    stream_provider = StreamProvider(scheduler, network, host)

    eca = EquipmentControlAgent(site=host)
    if with_studio_equipment:
        eca.install_standard_studio()
    eua = EquipmentUserAgent(owner="mcam-server")
    eua.attach_site(eca)

    return ServerContext(
        scheduler=scheduler,
        network=network,
        host=host,
        dsas=dsas,
        dua=dua,
        movie_store=movie_store,
        stream_provider=stream_provider,
        eca=eca,
        eua=eua,
    )
