"""MCAM client and server system modules and the full specification (Fig. 2).

The specification mirrors the paper's experimental configuration: a fixed
number of client entities (Estelle cannot create new clients at runtime —
Section 4.1), one MCAM server entity per client connection running on the
KSR1, and either the generated OSI stack (presentation + session + transport
pipe) or the hand-coded ISODE interface underneath each MCAM module.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..estelle import Module, ModuleAttribute, Specification, ip, transition
from ..osi import (
    IsodeBroker,
    IsodeInterfaceModule,
    PresentationEntity,
    SessionEntity,
    SyntaxRegistry,
    TransportPipe,
)
from .agents import DirectoryAgentModule, EquipmentAgentModule, StreamAgentModule
from .channels import MCAM_SERVICE
from .context import ServerContext
from .mca import ClientMca, ServerMca
from .pdus import MCAM_ABSTRACT_SYNTAX, MCAM_PDU


def mcam_syntax_registry() -> SyntaxRegistry:
    """A presentation syntax registry with the MCAM abstract syntax registered."""
    registry = SyntaxRegistry()
    registry.register(MCAM_ABSTRACT_SYNTAX, MCAM_PDU)
    return registry


class ClientApplication(Module):
    """The application module: the stand-in for the generated X interface.

    The paper generated an X-window interface from the channel description;
    here the "user" is a command queue (``variables["commands"]``, a list of
    MCAM PDU values) filled by the high-level API or an example script.
    Responses are collected in ``variables["responses"]``.
    """

    ATTRIBUTE = ModuleAttribute.PROCESS
    STATES = ("ready", "waiting")
    INITIAL_STATE = "ready"
    LAYER = "application"

    mcam = ip("mcam", MCAM_SERVICE, role="user")

    def initialise(self) -> None:
        super().initialise()
        self.variables.setdefault("commands", [])
        self.variables.setdefault("responses", [])
        self.variables.setdefault("indications", [])

    @transition(
        from_state="ready",
        to_state="waiting",
        provided=lambda m: len(m.variables["commands"]) > 0,
        cost=1.0,
    )
    def issue_request(self) -> None:
        pdu = self.variables["commands"].pop(0)
        self.output("mcam", "McamRequest", pdu=pdu)

    @transition(from_state="waiting", to_state="ready", when=("mcam", "McamConfirm"), cost=1.0)
    def confirm(self, interaction) -> None:
        self.variables["responses"].append(interaction.param("pdu"))

    @transition(from_state="*", when=("mcam", "McamIndication"), priority=1, cost=1.0)
    def indication(self, interaction) -> None:
        self.variables["indications"].append(interaction.param("pdu"))


class McamClientSystem(Module):
    """One MCAM client entity: application + client MCA + control stack."""

    ATTRIBUTE = ModuleAttribute.SYSTEMPROCESS
    STATES = ("running",)
    LAYER = "client"

    def initialise(self) -> None:
        super().initialise()
        stack: str = self.variables.get("stack", "generated")
        syntaxes: SyntaxRegistry = self.variables.get("syntaxes") or mcam_syntax_registry()
        application = self.create_child(ClientApplication, "app")
        mca = self.create_child(
            ClientMca, "mca", server_address=self.variables.get("server_address", "mcam-server")
        )
        application.ip_named("mcam").connect_to(mca.ip_named("user"))

        if stack == "generated":
            presentation = self.create_child(PresentationEntity, "presentation", syntaxes=syntaxes)
            session = self.create_child(SessionEntity, "session")
            mca.ip_named("pres").connect_to(presentation.ip_named("user"))
            presentation.ip_named("session").connect_to(session.ip_named("user"))
        elif stack == "isode":
            interface = self.create_child(
                IsodeInterfaceModule,
                "isode",
                broker=self.variables["broker"],
                address=self.variables.get("isode_address", self.path),
            )
            mca.ip_named("pres").connect_to(interface.ip_named("user"))
        else:
            raise ValueError(f"unknown stack variant {stack!r}")

    @property
    def application(self) -> ClientApplication:
        return self.children["app"]  # type: ignore[return-value]


class _ServerEntity(Module):
    """One server-side MCAM entity (handles one client connection)."""

    ATTRIBUTE = ModuleAttribute.PROCESS
    STATES = ("running",)
    LAYER = "entity"

    def initialise(self) -> None:
        super().initialise()
        context: ServerContext = self.variables["context"]
        stack: str = self.variables.get("stack", "generated")
        syntaxes: SyntaxRegistry = self.variables.get("syntaxes") or mcam_syntax_registry()

        mca = self.create_child(ServerMca, "mca", server_name=self.path, site=context.host)
        dua = self.create_child(DirectoryAgentModule, "dua", context=context)
        sua = self.create_child(StreamAgentModule, "sua", context=context)
        eua = self.create_child(EquipmentAgentModule, "eua", context=context)
        mca.ip_named("directory").connect_to(dua.ip_named("mca"))
        mca.ip_named("stream").connect_to(sua.ip_named("mca"))
        mca.ip_named("equipment").connect_to(eua.ip_named("mca"))

        if stack == "generated":
            presentation = self.create_child(PresentationEntity, "presentation", syntaxes=syntaxes)
            session = self.create_child(SessionEntity, "session")
            mca.ip_named("pres").connect_to(presentation.ip_named("user"))
            presentation.ip_named("session").connect_to(session.ip_named("user"))
        elif stack == "isode":
            interface = self.create_child(
                IsodeInterfaceModule,
                "isode",
                broker=self.variables["broker"],
                address=self.variables["isode_address"],
            )
            mca.ip_named("pres").connect_to(interface.ip_named("user"))
        else:
            raise ValueError(f"unknown stack variant {stack!r}")


class McamServerSystem(Module):
    """The MCAM server: one server entity per expected client connection."""

    ATTRIBUTE = ModuleAttribute.SYSTEMPROCESS
    STATES = ("running",)
    LAYER = "server"

    def initialise(self) -> None:
        super().initialise()
        for index in range(self.variables.get("entities", 1)):
            self.create_child(
                _ServerEntity,
                f"entity-{index}",
                context=self.variables["context"],
                stack=self.variables.get("stack", "generated"),
                syntaxes=self.variables.get("syntaxes"),
                broker=self.variables.get("broker"),
                isode_address=f"mcam-server-{index}",
            )


class McamPipeSystem(Module):
    """Transport pipes between client and server control stacks."""

    ATTRIBUTE = ModuleAttribute.SYSTEMPROCESS
    STATES = ("running",)
    LAYER = "transport"

    def initialise(self) -> None:
        super().initialise()
        for index in range(self.variables.get("connections", 1)):
            self.create_child(TransportPipe, f"pipe-{index}")


def build_mcam_specification(
    context: ServerContext,
    clients: int = 2,
    stack: str = "generated",
    server_location: str = "ksr1",
    client_locations: Optional[Sequence[str]] = None,
    stream_ports: Optional[Sequence[int]] = None,
) -> Tuple[Specification, Optional[IsodeBroker]]:
    """Build the Fig. 2 configuration.

    Returns the specification and, for the ISODE stack variant, the broker the
    interface modules share (None for the generated stack).
    """
    if clients < 1:
        raise ValueError("at least one client is required")
    locations = list(client_locations or [f"client-ws-{i + 1}" for i in range(clients)])
    if len(locations) != clients:
        raise ValueError("client_locations must name one machine per client")
    ports = list(stream_ports or [5004 + i for i in range(clients)])

    syntaxes = mcam_syntax_registry()
    broker: Optional[IsodeBroker] = IsodeBroker() if stack == "isode" else None

    spec = Specification("mcam")
    server = spec.add_system_module(
        McamServerSystem,
        "server",
        location=server_location,
        entities=clients,
        context=context,
        stack=stack,
        syntaxes=syntaxes,
        broker=broker,
    )
    pipes = None
    if stack == "generated":
        pipes = spec.add_system_module(
            McamPipeSystem, "pipes", location=server_location, connections=clients
        )
    for index in range(clients):
        client = spec.add_system_module(
            McamClientSystem,
            f"client-{index}",
            location=locations[index],
            stack=stack,
            syntaxes=syntaxes,
            broker=broker,
            server_address=f"mcam-server-{index}",
            isode_address=f"mcam-client-{index}",
        )
        if stack == "generated":
            client_session = client.children["session"]
            server_session = server.children[f"entity-{index}"].children["session"]
            pipe = pipes.children[f"pipe-{index}"]
            spec.connect(client_session.ip_named("transport"), pipe.ip_named("side_a"))
            spec.connect(server_session.ip_named("transport"), pipe.ip_named("side_b"))
    spec.validate()
    return spec, broker
