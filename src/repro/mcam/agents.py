"""The external-body agent modules of an MCAM server entity.

Fig. 3 of the paper: *"Only the MCA module is completely written in Estelle
(header and body), whereas the three remaining ones describe only their
interface in Estelle with their module body written in C or C++.  So we can
very easily access existing services such as the movie directory out of our
Estelle specification."*

Accordingly the three agents below declare their interaction points in
Estelle terms (``EXTERNAL = True``) and implement their bodies as plain
Python against the shared :class:`repro.mcam.context.ServerContext`:

* :class:`DirectoryAgentModule` — the DUA body, operating on the X.500-style
  movie directory;
* :class:`StreamAgentModule` — the SUA/SPA body, operating on the movie store
  and the XMovie stream provider;
* :class:`EquipmentAgentModule` — the EUA body, operating on the equipment
  control service.

Each external step consumes one request interaction from the MCA and outputs
exactly one response interaction; failures are reported in the response, never
raised into the runtime (a protocol machine must keep running).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from ..directory import DirectoryError, parse_filter
from ..equipment import EquipmentError
from ..estelle import Module, ModuleAttribute, ip
from ..stream import MovieError, MtpError, synthesise_movie
from .channels import DIRECTORY_AGENT, EQUIPMENT_AGENT, STREAM_AGENT
from .context import ServerContext


class _AgentModule(Module):
    """Shared plumbing of the three external agent bodies."""

    ATTRIBUTE = ModuleAttribute.PROCESS
    EXTERNAL = True
    STEP_COST = 2.0
    REQUEST_NAME = ""
    RESPONSE_NAME = ""
    PORT_NAME = "mca"

    def initialise(self) -> None:
        super().initialise()
        self.context: ServerContext = self.variables["context"]
        self.requests_handled = 0

    def external_step(self) -> float:
        port = self.ip_named(self.PORT_NAME)
        if not port.pending():
            return 0.1
        interaction = port.consume()
        self.requests_handled += 1
        result = self._perform(interaction.param("operation", ""), interaction.params)
        self.output(
            self.PORT_NAME,
            self.RESPONSE_NAME,
            request_id=interaction.param("request_id"),
            **result,
        )
        return self.STEP_COST

    # -- to be provided by each agent ----------------------------------------------------

    def _perform(self, operation: str, params: Mapping[str, Any]) -> Dict[str, Any]:
        raise NotImplementedError

    @staticmethod
    def _failure(error: Exception | str, status: str) -> Dict[str, Any]:
        return {"success": False, "error": str(error), "status": status}


class DirectoryAgentModule(_AgentModule):
    """The Directory User Agent body (movie metadata operations)."""

    LAYER = "dua"
    RESPONSE_NAME = "DirectoryResponse"

    mca = ip("mca", DIRECTORY_AGENT, role="agent")

    def _perform(self, operation: str, params: Mapping[str, Any]) -> Dict[str, Any]:
        dua = self.context.dua
        try:
            if operation == "registerMovie":
                entry = dua.register_movie(params["name"], dict(params["attributes"]))
                return {"success": True, "dn": entry.dn}
            if operation == "deleteMovie":
                if not dua.movie_exists(params["name"]):
                    return self._failure(f"no movie {params['name']!r}", "noSuchMovie")
                dua.delete_movie(params["name"])
                return {"success": True}
            if operation == "lookupMovie":
                if not dua.movie_exists(params["name"]):
                    return self._failure(f"no movie {params['name']!r}", "noSuchMovie")
                entry = dua.movie_entry(params["name"])
                return {"success": True, "attributes": dict(entry.attributes)}
            if operation == "query":
                name = params.get("name")
                if name:
                    if not dua.movie_exists(name):
                        return self._failure(f"no movie {name!r}", "noSuchMovie")
                    entries = [dua.movie_entry(name)]
                else:
                    entries = dua.find_movies(params.get("filter") or "*")
                movies = [
                    {"name": entry.get("commonName", ""), "attributes": dict(entry.attributes)}
                    for entry in entries
                ]
                return {"success": True, "movies": movies}
            if operation == "modifyAttributes":
                if not dua.movie_exists(params["name"]):
                    return self._failure(f"no movie {params['name']!r}", "noSuchMovie")
                entry = dua.update_movie(params["name"], dict(params["changes"]))
                return {"success": True, "attributes": dict(entry.attributes)}
            return self._failure(f"unknown directory operation {operation!r}", "protocolError")
        except (DirectoryError, KeyError, Exception) as exc:  # noqa: BLE001 - protocol surface
            return self._failure(exc, "directoryFailure")


class StreamAgentModule(_AgentModule):
    """The Stream User / Provider Agent body (movie content and CM streams)."""

    LAYER = "sua"
    RESPONSE_NAME = "StreamResponse"

    mca = ip("mca", STREAM_AGENT, role="agent")

    def _perform(self, operation: str, params: Mapping[str, Any]) -> Dict[str, Any]:
        store = self.context.movie_store
        provider = self.context.stream_provider
        try:
            if operation == "allocateContent":
                if store.exists(params["name"]):
                    return self._failure(f"movie {params['name']!r} already exists", "movieExists")
                movie = store.create(
                    params["name"],
                    duration_seconds=float(params.get("durationSeconds", 10)),
                    frame_rate=float(params.get("frameRate", 25)),
                    format_name=params.get("imageFormat", "mjpeg"),
                    title=params.get("title", params["name"]),
                )
                location = f"{self.context.host}:/movies/{movie.name}"
                return {
                    "success": True,
                    "storageLocation": location,
                    "attributes": movie.directory_attributes(location),
                }
            if operation == "releaseContent":
                if store.exists(params["name"]):
                    store.remove(params["name"])
                return {"success": True}
            if operation == "startStream":
                if not store.exists(params["name"]):
                    return self._failure(f"no movie {params['name']!r}", "noSuchMovie")
                movie = store.get(params["name"])
                sender = provider.start_playback(
                    movie,
                    destination=params["destination"],
                    port=int(params.get("port", 5004)),
                    rate_factor=float(params.get("ratePercent", 100)) / 100.0,
                )
                return {"success": True, "streamId": sender.stream_id, "frameCount": movie.frame_count}
            if operation == "pause":
                provider.pause(int(params["streamId"]))
                return {"success": True}
            if operation == "resume":
                provider.resume(int(params["streamId"]))
                return {"success": True}
            if operation == "stop":
                provider.stop(int(params["streamId"]))
                return {"success": True}
            if operation == "recordContent":
                if store.exists(params["name"]):
                    return self._failure(f"movie {params['name']!r} already exists", "movieExists")
                recorded = synthesise_movie(
                    params["name"],
                    duration_seconds=float(params.get("durationSeconds", 5)),
                    frame_rate=float(params.get("frameRate", 25)),
                    format_name=params.get("imageFormat", "mjpeg"),
                    title=params.get("title", params["name"]),
                )
                store.add(recorded)
                location = f"{self.context.host}:/movies/{recorded.name}"
                return {
                    "success": True,
                    "frameCount": recorded.frame_count,
                    "storageLocation": location,
                    "attributes": recorded.directory_attributes(location),
                }
            return self._failure(f"unknown stream operation {operation!r}", "protocolError")
        except (MovieError, MtpError, KeyError, ValueError) as exc:
            return self._failure(exc, "streamFailure")


class EquipmentAgentModule(_AgentModule):
    """The Equipment User Agent body (CM equipment control)."""

    LAYER = "eua"
    RESPONSE_NAME = "EquipmentResponse"

    mca = ip("mca", EQUIPMENT_AGENT, role="agent")

    def _perform(self, operation: str, params: Mapping[str, Any]) -> Dict[str, Any]:
        eua = self.context.eua
        site = params.get("site", self.context.host)
        try:
            if operation == "preparePlayback":
                return {"success": True, "devices": eua.prepare_playback(site)}
            if operation == "prepareRecording":
                return {"success": True, "devices": eua.prepare_recording(site)}
            if operation == "stopAll":
                eua.stop_all(site)
                return {"success": True}
            if operation == "setParameter":
                status = eua.set_parameter(
                    site, params["device"], params["parameter"], params["value"]
                )
                return {"success": True, "status": status}
            if operation == "listEquipment":
                return {"success": True, "devices": eua.list_equipment(site)}
            return self._failure(f"unknown equipment operation {operation!r}", "protocolError")
        except (EquipmentError, KeyError) as exc:
            return self._failure(exc, "equipmentFailure")
