"""Estelle channels of the MCAM architecture (Fig. 1 / Fig. 3).

Four service boundaries appear inside an MCAM entity:

* ``MCAM_SERVICE`` — between the application (the user interface generated
  from the channel description in the paper) and the Movie Control Agent.
* ``DIRECTORY_AGENT`` — between the MCA and the Directory User Agent module.
* ``STREAM_AGENT`` — between the MCA and the Stream User / Provider Agent.
* ``EQUIPMENT_AGENT`` — between the MCA and the Equipment User Agent.

The lower boundary of the MCA is the OSI presentation service
(:data:`repro.osi.channels.PRESENTATION_SERVICE`), on which the MCAM PDUs are
exchanged between client and server entities.
"""

from __future__ import annotations

from ..estelle import Channel

#: Application <-> Movie Control Agent.
MCAM_SERVICE = Channel(
    "McamService",
    user={"McamRequest"},
    provider={"McamConfirm", "McamIndication"},
)

#: MCA <-> Directory User Agent (external body).
DIRECTORY_AGENT = Channel(
    "DirectoryAgent",
    mca={"DirectoryRequest"},
    agent={"DirectoryResponse"},
)

#: MCA <-> Stream User / Provider Agent (external body).
STREAM_AGENT = Channel(
    "StreamAgent",
    mca={"StreamRequest"},
    agent={"StreamResponse"},
)

#: MCA <-> Equipment User Agent (external body).
EQUIPMENT_AGENT = Channel(
    "EquipmentAgent",
    mca={"EquipmentRequest"},
    agent={"EquipmentResponse"},
)
