"""MCAM PDUs: the ASN.1 specification and helpers to build PDU values.

All MCAM PDUs are specified in ASN.1 (Section 4.2); the textual module below
is compiled with :func:`repro.asn1.compile_module` — the Python counterpart of
the paper's ASN.1-to-C++ translator — and the resulting ``McamPdu`` CHOICE is
registered as the abstract syntax carried in MCAM's presentation context.

The operation set follows the MCAM service definition summarised in Section
2: *access* (create, delete, select), *management* (query and modify
attributes) and *control* (playback / record, with pause, resume, stop and
position as the control sub-operations).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..asn1 import Asn1Module, compile_module, decode, encode

#: The abstract-syntax name used in the presentation context (Fig. 2 stacks).
MCAM_ABSTRACT_SYNTAX = "mcam-pdus-1993"

#: Presentation context id MCAM uses on its association.
MCAM_CONTEXT_ID = 1

MCAM_ASN1_SOURCE = """
McamPDUs DEFINITIONS ::= BEGIN

    MovieName   ::= IA5String (SIZE(128))
    Reason      ::= IA5String (SIZE(256))
    StreamId    ::= INTEGER
    Status      ::= ENUMERATED {
        success(0), movieExists(1), noSuchMovie(2), notSelected(3),
        directoryFailure(4), streamFailure(5), equipmentFailure(6),
        refused(7), protocolError(8)
    }

    Attribute ::= SEQUENCE {
        name  IA5String (SIZE(64)),
        value IA5String (SIZE(512))
    }
    AttributeList ::= SEQUENCE OF Attribute

    MovieDescription ::= SEQUENCE {
        name       MovieName,
        attributes AttributeList
    }
    MovieDescriptionList ::= SEQUENCE OF MovieDescription

    ConnectRequest ::= SEQUENCE {
        version    INTEGER DEFAULT 1,
        clientName IA5String (SIZE(128)),
        streamAddress IA5String (SIZE(128)) OPTIONAL,
        streamPort INTEGER OPTIONAL
    }
    ConnectResponse ::= SEQUENCE {
        status Status,
        serverName IA5String (SIZE(128))
    }

    ReleaseRequest  ::= SEQUENCE { reason Reason OPTIONAL }
    ReleaseResponse ::= SEQUENCE { status Status }

    CreateMovieRequest ::= SEQUENCE {
        name            MovieName,
        imageFormat     IA5String (SIZE(32)) DEFAULT "mjpeg",
        frameRate       INTEGER DEFAULT 25,
        durationSeconds INTEGER DEFAULT 10,
        attributes      AttributeList OPTIONAL
    }
    CreateMovieResponse ::= SEQUENCE {
        status          Status,
        storageLocation IA5String (SIZE(256)) OPTIONAL
    }

    DeleteMovieRequest  ::= SEQUENCE { name MovieName }
    DeleteMovieResponse ::= SEQUENCE { status Status }

    SelectMovieRequest  ::= SEQUENCE { name MovieName }
    SelectMovieResponse ::= SEQUENCE {
        status     Status,
        attributes AttributeList OPTIONAL
    }

    QueryAttributesRequest ::= SEQUENCE {
        name   MovieName OPTIONAL,
        filter IA5String (SIZE(256)) OPTIONAL
    }
    QueryAttributesResponse ::= SEQUENCE {
        status Status,
        movies MovieDescriptionList
    }

    ModifyAttributesRequest ::= SEQUENCE {
        name    MovieName,
        changes AttributeList
    }
    ModifyAttributesResponse ::= SEQUENCE { status Status }

    PlayRequest ::= SEQUENCE {
        name        MovieName OPTIONAL,
        startFrame  INTEGER DEFAULT 0,
        ratePercent INTEGER DEFAULT 100
    }
    PlayResponse ::= SEQUENCE {
        status   Status,
        streamId StreamId OPTIONAL
    }

    PauseRequest   ::= SEQUENCE { streamId StreamId }
    PauseResponse  ::= SEQUENCE { status Status }
    ResumeRequest  ::= SEQUENCE { streamId StreamId }
    ResumeResponse ::= SEQUENCE { status Status }
    StopRequest    ::= SEQUENCE { streamId StreamId }
    StopResponse   ::= SEQUENCE { status Status }

    RecordRequest ::= SEQUENCE {
        name            MovieName,
        durationSeconds INTEGER DEFAULT 5,
        imageFormat     IA5String (SIZE(32)) DEFAULT "mjpeg",
        frameRate       INTEGER DEFAULT 25
    }
    RecordResponse ::= SEQUENCE {
        status Status,
        frameCount INTEGER OPTIONAL
    }

    McamPdu ::= CHOICE {
        connectRequest           ConnectRequest,
        connectResponse          ConnectResponse,
        releaseRequest           ReleaseRequest,
        releaseResponse          ReleaseResponse,
        createMovieRequest       CreateMovieRequest,
        createMovieResponse      CreateMovieResponse,
        deleteMovieRequest       DeleteMovieRequest,
        deleteMovieResponse      DeleteMovieResponse,
        selectMovieRequest       SelectMovieRequest,
        selectMovieResponse      SelectMovieResponse,
        queryAttributesRequest   QueryAttributesRequest,
        queryAttributesResponse  QueryAttributesResponse,
        modifyAttributesRequest  ModifyAttributesRequest,
        modifyAttributesResponse ModifyAttributesResponse,
        playRequest              PlayRequest,
        playResponse             PlayResponse,
        pauseRequest             PauseRequest,
        pauseResponse            PauseResponse,
        resumeRequest            ResumeRequest,
        resumeResponse           ResumeResponse,
        stopRequest              StopRequest,
        stopResponse             StopResponse,
        recordRequest            RecordRequest,
        recordResponse           RecordResponse
    }

END
"""

#: The compiled ASN.1 module (shared by every MCAM entity in the process).
MCAM_MODULE: Asn1Module = compile_module(MCAM_ASN1_SOURCE)

#: The top-level PDU type carried in P-DATA.
MCAM_PDU = MCAM_MODULE.get("McamPdu")

#: request alternative name -> response alternative name
RESPONSE_OF: Dict[str, str] = {
    "connectRequest": "connectResponse",
    "releaseRequest": "releaseResponse",
    "createMovieRequest": "createMovieResponse",
    "deleteMovieRequest": "deleteMovieResponse",
    "selectMovieRequest": "selectMovieResponse",
    "queryAttributesRequest": "queryAttributesResponse",
    "modifyAttributesRequest": "modifyAttributesResponse",
    "playRequest": "playResponse",
    "pauseRequest": "pauseResponse",
    "resumeRequest": "resumeResponse",
    "stopRequest": "stopResponse",
    "recordRequest": "recordResponse",
}


def encode_pdu(pdu: Tuple[str, Mapping[str, Any]]) -> bytes:
    """BER-encode an MCAM PDU value."""
    return encode(MCAM_PDU, pdu)


def decode_pdu(data: bytes) -> Tuple[str, Dict[str, Any]]:
    """Decode BER octets into an MCAM PDU value."""
    return decode(MCAM_PDU, data)


def attributes_to_list(attributes: Mapping[str, Any]) -> List[Dict[str, str]]:
    """Convert a Python attribute mapping into the AttributeList PDU form."""
    return [{"name": str(name), "value": str(value)} for name, value in sorted(attributes.items())]


def attributes_from_list(attribute_list: List[Mapping[str, str]]) -> Dict[str, str]:
    """Convert an AttributeList PDU value back into a mapping."""
    return {item["name"]: item["value"] for item in attribute_list}


def is_request(alternative: str) -> bool:
    return alternative in RESPONSE_OF


def is_response(alternative: str) -> bool:
    return alternative in set(RESPONSE_OF.values())
