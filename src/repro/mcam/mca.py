"""The Movie Control Agents — the only modules written fully "in Estelle".

Two bodies exist: the client MCA translates application service requests into
MCAM PDUs sent over the presentation service, and the server MCA executes the
requested operations by orchestrating the three external agents (directory,
stream, equipment) before answering with a response PDU.

Server-side operations are small pipelines (e.g. CREATE = allocate content at
the stream provider, then register the movie in the directory); the pipeline
state is kept in module variables because MCAM allows one outstanding request
per association, matching the synchronous application interface the paper's
generated X interface offered.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..estelle import Module, ModuleAttribute, ip, transition
from ..osi.channels import PRESENTATION_SERVICE
from ..osi.pdus import PresentationContext
from .channels import DIRECTORY_AGENT, EQUIPMENT_AGENT, MCAM_SERVICE, STREAM_AGENT
from .pdus import (
    MCAM_ABSTRACT_SYNTAX,
    MCAM_CONTEXT_ID,
    RESPONSE_OF,
    attributes_from_list,
    attributes_to_list,
    decode_pdu,
    encode_pdu,
)


def _pdu_of(interaction) -> Tuple[str, Dict[str, Any]]:
    """Extract a decoded MCAM PDU from a presentation-service interaction."""
    value = interaction.param("value")
    if value is not None:
        return value
    data = interaction.param("data") or interaction.param("user_data") or b""
    return decode_pdu(bytes(data))


class ClientMca(Module):
    """Client-side Movie Control Agent."""

    ATTRIBUTE = ModuleAttribute.PROCESS
    STATES = ("idle", "connecting", "associated", "releasing")
    INITIAL_STATE = "idle"
    LAYER = "mcam"

    user = ip("user", MCAM_SERVICE, role="provider")
    pres = ip("pres", PRESENTATION_SERVICE, role="user")

    def initialise(self) -> None:
        super().initialise()
        self.variables.setdefault("server_address", "mcam-server")
        self.variables.setdefault("requests_sent", 0)
        self.variables.setdefault("responses_received", 0)

    # -- association establishment ----------------------------------------------------------

    @transition(
        from_state="idle",
        to_state="connecting",
        when=("user", "McamRequest"),
        provided=lambda m, i: i.param("pdu", ("", {}))[0] == "connectRequest",
        cost=1.8,
    )
    def connect_request(self, interaction) -> None:
        pdu = interaction.param("pdu")
        self.variables["requests_sent"] += 1
        self.output(
            "pres",
            "PConnectRequest",
            contexts=(PresentationContext(MCAM_CONTEXT_ID, MCAM_ABSTRACT_SYNTAX),),
            called_address=self.variables["server_address"],
            calling_address=self.path,
            connection_ref=self.uid,
            user_data=encode_pdu(pdu),
        )

    @transition(from_state="connecting", when=("pres", "PConnectConfirm"), cost=1.8)
    def connect_confirm(self, interaction) -> None:
        accepted = interaction.param("accepted", True)
        user_data = interaction.param("user_data", b"")
        if user_data:
            pdu = decode_pdu(user_data)
        else:
            pdu = (
                "connectResponse",
                {"status": "success" if accepted else "refused", "serverName": ""},
            )
        self.variables["responses_received"] += 1
        self.output("user", "McamConfirm", pdu=pdu)
        self.state = "associated" if accepted and pdu[1].get("status") == "success" else "idle"

    # -- operation requests -----------------------------------------------------------------------

    @transition(
        from_state="associated",
        to_state="releasing",
        when=("user", "McamRequest"),
        provided=lambda m, i: i.param("pdu", ("", {}))[0] == "releaseRequest",
        priority=-1,
        cost=1.5,
    )
    def release_request(self, interaction) -> None:
        self.variables["requests_sent"] += 1
        self.output("pres", "PReleaseRequest", user_data=encode_pdu(interaction.param("pdu")))

    @transition(
        from_state="associated",
        when=("user", "McamRequest"),
        cost=1.8,
    )
    def operation_request(self, interaction) -> None:
        pdu = interaction.param("pdu")
        self.variables["requests_sent"] += 1
        self.output("pres", "PDataRequest", context_id=MCAM_CONTEXT_ID, value=pdu, data=encode_pdu(pdu))

    @transition(from_state="associated", when=("pres", "PDataIndication"), cost=1.8)
    def operation_confirm(self, interaction) -> None:
        self.variables["responses_received"] += 1
        self.output("user", "McamConfirm", pdu=_pdu_of(interaction))

    @transition(from_state="releasing", to_state="idle", when=("pres", "PReleaseConfirm"), cost=1.5)
    def release_confirm(self, interaction) -> None:
        self.variables["responses_received"] += 1
        self.output("user", "McamConfirm", pdu=("releaseResponse", {"status": "success"}))

    @transition(from_state="*", to_state="idle", when=("pres", "PAbortIndication"), priority=-2, cost=1.0)
    def aborted(self, interaction) -> None:
        self.output("user", "McamIndication", pdu=("releaseResponse", {"status": "refused"}))


#: The per-operation pipelines of the server MCA: request alternative ->
#: ordered list of (agent, operation) steps executed before the response.
SERVER_PIPELINES: Dict[str, List[Tuple[str, str]]] = {
    "createMovieRequest": [("stream", "allocateContent"), ("directory", "registerMovie")],
    "deleteMovieRequest": [("directory", "deleteMovie"), ("stream", "releaseContent")],
    "selectMovieRequest": [("directory", "lookupMovie")],
    "queryAttributesRequest": [("directory", "query")],
    "modifyAttributesRequest": [("directory", "modifyAttributes")],
    "playRequest": [("equipment", "preparePlayback"), ("stream", "startStream")],
    "pauseRequest": [("stream", "pause")],
    "resumeRequest": [("stream", "resume")],
    "stopRequest": [("stream", "stop"), ("equipment", "stopAll")],
    "recordRequest": [
        ("equipment", "prepareRecording"),
        ("stream", "recordContent"),
        ("directory", "registerMovie"),
    ],
}

#: Which agent interaction name answers which agent port.
_AGENT_RESPONSE = {
    "directory": "DirectoryResponse",
    "stream": "StreamResponse",
    "equipment": "EquipmentResponse",
}


class ServerMca(Module):
    """Server-side Movie Control Agent."""

    ATTRIBUTE = ModuleAttribute.PROCESS
    STATES = ("idle", "associated")
    INITIAL_STATE = "idle"
    LAYER = "mcam"

    pres = ip("pres", PRESENTATION_SERVICE, role="user")
    directory = ip("directory", DIRECTORY_AGENT, role="mca")
    stream = ip("stream", STREAM_AGENT, role="mca")
    equipment = ip("equipment", EQUIPMENT_AGENT, role="mca")

    def initialise(self) -> None:
        super().initialise()
        self.variables.setdefault("server_name", self.path)
        self.variables.setdefault("client_name", "")
        self.variables.setdefault("client_stream_address", "")
        self.variables.setdefault("client_stream_port", 5004)
        self.variables.setdefault("selected_movie", "")
        self.variables.setdefault("requests_handled", 0)
        self._clear_pipeline()

    # -- association ------------------------------------------------------------------------------

    @transition(from_state="idle", to_state="associated", when=("pres", "PConnectIndication"), cost=2.0)
    def connect_indication(self, interaction) -> None:
        user_data = interaction.param("user_data", b"")
        client_name = ""
        if user_data:
            alternative, value = decode_pdu(user_data)
            if alternative == "connectRequest":
                client_name = value.get("clientName", "")
                self.variables["client_stream_address"] = value.get("streamAddress", client_name)
                self.variables["client_stream_port"] = value.get("streamPort", 5004)
        self.variables["client_name"] = client_name
        response = (
            "connectResponse",
            {"status": "success", "serverName": self.variables["server_name"]},
        )
        self.output(
            "pres",
            "PConnectResponse",
            accepted=True,
            contexts=tuple(interaction.param("contexts", ())),
            user_data=encode_pdu(response),
        )

    @transition(from_state="associated", to_state="idle", when=("pres", "PReleaseIndication"), cost=1.5)
    def release_indication(self, interaction) -> None:
        self._clear_pipeline()
        self.output("pres", "PReleaseResponse", user_data=encode_pdu(("releaseResponse", {"status": "success"})))

    @transition(from_state="*", to_state="idle", when=("pres", "PAbortIndication"), priority=-2, cost=1.0)
    def aborted(self, interaction) -> None:
        self._clear_pipeline()

    # -- request handling ----------------------------------------------------------------------------

    @transition(from_state="associated", when=("pres", "PDataIndication"), cost=2.0)
    def request_received(self, interaction) -> None:
        alternative, value = _pdu_of(interaction)
        self.variables["requests_handled"] += 1
        pipeline = SERVER_PIPELINES.get(alternative)
        if pipeline is None:
            self._respond(("releaseResponse", {"status": "protocolError"}))
            return
        self.variables["request"] = (alternative, value)
        self.variables["pipeline"] = list(pipeline)
        self.variables["collected"] = {}
        self._issue_next_step()

    @transition(
        from_state="associated",
        when=("directory", "DirectoryResponse"),
        cost=1.5,
    )
    def directory_response(self, interaction) -> None:
        self._step_completed(interaction.params)

    @transition(from_state="associated", when=("stream", "StreamResponse"), cost=1.5)
    def stream_response(self, interaction) -> None:
        self._step_completed(interaction.params)

    @transition(from_state="associated", when=("equipment", "EquipmentResponse"), cost=1.5)
    def equipment_response(self, interaction) -> None:
        self._step_completed(interaction.params)

    # -- pipeline machinery ------------------------------------------------------------------------------

    def _clear_pipeline(self) -> None:
        self.variables["request"] = None
        self.variables["pipeline"] = []
        self.variables["collected"] = {}

    _AGENT_REQUEST = {
        "directory": "DirectoryRequest",
        "stream": "StreamRequest",
        "equipment": "EquipmentRequest",
    }

    def _issue_next_step(self) -> None:
        pipeline: List[Tuple[str, str]] = self.variables["pipeline"]
        if not pipeline:
            self._respond(self._build_response())
            return
        agent, operation = pipeline[0]
        params = self._step_params(operation)
        self.output(agent, self._AGENT_REQUEST[agent], **params)

    def _respond(self, pdu: Tuple[str, Dict[str, Any]]) -> None:
        self.output("pres", "PDataRequest", context_id=MCAM_CONTEXT_ID, value=pdu, data=encode_pdu(pdu))
        self._clear_pipeline()

    def _step_completed(self, result: Mapping[str, Any]) -> None:
        if self.variables["request"] is None:
            return  # stale response after an abort
        pipeline: List[Tuple[str, str]] = self.variables["pipeline"]
        if not pipeline:
            return
        agent, operation = pipeline.pop(0)
        if not result.get("success", False):
            status = result.get("status", "protocolError")
            self._respond(self._failure_response(status))
            return
        collected: Dict[str, Any] = self.variables["collected"]
        collected[f"{agent}:{operation}"] = dict(result)
        collected.update(
            {k: v for k, v in result.items() if k not in ("success", "error", "request_id")}
        )
        self._issue_next_step()

    # -- per-step request parameters -----------------------------------------------------------------------

    def _step_params(self, operation: str) -> Dict[str, Any]:
        alternative, value = self.variables["request"]
        collected: Dict[str, Any] = self.variables["collected"]
        params: Dict[str, Any] = {"operation": operation}
        if operation == "allocateContent":
            params.update(
                name=value["name"],
                imageFormat=value.get("imageFormat", "mjpeg"),
                frameRate=value.get("frameRate", 25),
                durationSeconds=value.get("durationSeconds", 10),
            )
        elif operation == "releaseContent":
            params.update(name=value["name"])
        elif operation == "registerMovie":
            attributes = dict(collected.get("attributes", {}))
            extra = value.get("attributes")
            if extra:
                attributes.update(attributes_from_list(extra))
            params.update(name=value["name"], attributes=attributes)
        elif operation == "deleteMovie":
            params.update(name=value["name"])
        elif operation == "lookupMovie":
            params.update(name=value["name"])
        elif operation == "query":
            params.update(name=value.get("name"), filter=value.get("filter"))
        elif operation == "modifyAttributes":
            params.update(name=value["name"], changes=attributes_from_list(value["changes"]))
        elif operation == "preparePlayback" or operation == "prepareRecording" or operation == "stopAll":
            params.update(site=self.variables.get("site", ""))
            if not params["site"]:
                params.pop("site")
        elif operation == "startStream":
            name = value.get("name") or self.variables["selected_movie"]
            params.update(
                name=name,
                destination=self.variables["client_stream_address"] or self.variables["client_name"],
                port=self.variables["client_stream_port"],
                ratePercent=value.get("ratePercent", 100),
            )
        elif operation in ("pause", "resume", "stop"):
            params.update(streamId=value["streamId"])
        elif operation == "recordContent":
            params.update(
                name=value["name"],
                durationSeconds=value.get("durationSeconds", 5),
                imageFormat=value.get("imageFormat", "mjpeg"),
                frameRate=value.get("frameRate", 25),
            )
        return params

    # -- response construction ---------------------------------------------------------------------------------

    def _failure_response(self, status: str) -> Tuple[str, Dict[str, Any]]:
        alternative, _ = self.variables["request"]
        response_name = RESPONSE_OF[alternative]
        response: Dict[str, Any] = {"status": status}
        if response_name == "queryAttributesResponse":
            response["movies"] = []
        if response_name == "connectResponse":
            response["serverName"] = self.variables["server_name"]
        return (response_name, response)

    def _build_response(self) -> Tuple[str, Dict[str, Any]]:
        alternative, value = self.variables["request"]
        collected: Dict[str, Any] = self.variables["collected"]
        response_name = RESPONSE_OF[alternative]
        response: Dict[str, Any] = {"status": "success"}

        if alternative == "createMovieRequest":
            response["storageLocation"] = collected.get("storageLocation", "")
        elif alternative == "selectMovieRequest":
            self.variables["selected_movie"] = value["name"]
            response["attributes"] = attributes_to_list(collected.get("attributes", {}))
        elif alternative == "queryAttributesRequest":
            response["movies"] = [
                {"name": movie["name"], "attributes": attributes_to_list(movie["attributes"])}
                for movie in collected.get("movies", [])
            ]
        elif alternative == "playRequest":
            response["streamId"] = collected.get("streamId", 0)
        elif alternative == "recordRequest":
            response["frameCount"] = collected.get("frameCount", 0)
        return (response_name, response)
