"""Movie directory schema: attribute types and object classes.

The movie directory is *"a repository for movie information, such as digital
image format and storage location"* (Section 2).  Following X.500 practice the
directory is schema-driven: every entry belongs to an object class which
prescribes mandatory and optional attribute types; attribute values are
validated against the attribute type's syntax.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Iterable, Mapping, Optional


class SchemaError(Exception):
    """An entry or attribute violates the directory schema."""


def _is_ascii_string(value: Any) -> bool:
    if not isinstance(value, str):
        return False
    try:
        value.encode("ascii")
    except UnicodeEncodeError:
        return False
    return True


def _is_non_negative_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def _is_positive_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool) and value > 0


@dataclass(frozen=True)
class AttributeType:
    """An attribute type: name, syntax check and single/multi-valued flag."""

    name: str
    syntax: Callable[[Any], bool]
    multi_valued: bool = False
    description: str = ""

    def validate(self, value: Any) -> None:
        if not self.syntax(value):
            raise SchemaError(f"value {value!r} is not valid for attribute {self.name!r}")


#: The attribute types of the movie directory.
ATTRIBUTE_TYPES: Dict[str, AttributeType] = {
    a.name: a
    for a in [
        AttributeType("commonName", _is_ascii_string, description="entry name (RDN)"),
        AttributeType("movieTitle", _is_ascii_string),
        AttributeType("description", _is_ascii_string),
        AttributeType("imageFormat", _is_ascii_string, description="e.g. mjpeg, yuv, xmovie-rl"),
        AttributeType("colourDepth", _is_non_negative_int, description="bits per pixel"),
        AttributeType("frameRate", _is_positive_number, description="frames per second"),
        AttributeType("frameWidth", _is_non_negative_int),
        AttributeType("frameHeight", _is_non_negative_int),
        AttributeType("durationSeconds", _is_positive_number),
        AttributeType("frameCount", _is_non_negative_int),
        AttributeType("storageLocation", _is_ascii_string, description="host/path of the stream provider"),
        AttributeType("owner", _is_ascii_string),
        AttributeType("accessRights", _is_ascii_string, multi_valued=True),
        AttributeType("keyword", _is_ascii_string, multi_valued=True),
        AttributeType("organisation", _is_ascii_string),
        AttributeType("equipmentType", _is_ascii_string, description="camera, microphone, speaker, display"),
        AttributeType("networkAddress", _is_ascii_string),
    ]
}


@dataclass(frozen=True)
class ObjectClass:
    """An object class: mandatory and optional attribute type names."""

    name: str
    mandatory: FrozenSet[str]
    optional: FrozenSet[str] = frozenset()

    def allowed(self) -> FrozenSet[str]:
        return self.mandatory | self.optional


OBJECT_CLASSES: Dict[str, ObjectClass] = {
    oc.name: oc
    for oc in [
        ObjectClass(
            "movie",
            mandatory=frozenset({"commonName", "movieTitle", "imageFormat", "storageLocation"}),
            optional=frozenset(
                {
                    "description",
                    "colourDepth",
                    "frameRate",
                    "frameWidth",
                    "frameHeight",
                    "durationSeconds",
                    "frameCount",
                    "owner",
                    "accessRights",
                    "keyword",
                }
            ),
        ),
        ObjectClass(
            "movieCollection",
            mandatory=frozenset({"commonName"}),
            optional=frozenset({"description", "owner", "keyword"}),
        ),
        ObjectClass(
            "organisationalUnit",
            mandatory=frozenset({"commonName"}),
            optional=frozenset({"description", "organisation"}),
        ),
        ObjectClass(
            "equipment",
            mandatory=frozenset({"commonName", "equipmentType", "networkAddress"}),
            optional=frozenset({"description", "owner"}),
        ),
    ]
}


def validate_entry(object_class: str, attributes: Mapping[str, Any]) -> None:
    """Validate a complete entry against its object class and attribute syntaxes."""
    oc = OBJECT_CLASSES.get(object_class)
    if oc is None:
        raise SchemaError(f"unknown object class {object_class!r}")
    missing = oc.mandatory - set(attributes)
    if missing:
        raise SchemaError(
            f"object class {object_class!r}: missing mandatory attributes {sorted(missing)}"
        )
    unknown = set(attributes) - oc.allowed()
    if unknown:
        raise SchemaError(
            f"object class {object_class!r}: attributes {sorted(unknown)} are not allowed"
        )
    for name, value in attributes.items():
        attribute_type = ATTRIBUTE_TYPES[name]
        values = value if attribute_type.multi_valued and isinstance(value, (list, tuple)) else [value]
        for single in values:
            attribute_type.validate(single)


def validate_attribute(name: str, value: Any) -> None:
    """Validate a single attribute assignment (used by modify operations)."""
    attribute_type = ATTRIBUTE_TYPES.get(name)
    if attribute_type is None:
        raise SchemaError(f"unknown attribute type {name!r}")
    values = value if attribute_type.multi_valued and isinstance(value, (list, tuple)) else [value]
    for single in values:
        attribute_type.validate(single)
