"""The Directory Information Tree (DIT): entries, names and local operations.

Names follow X.500 structure: a distinguished name (DN) is a sequence of
relative distinguished names (RDNs), each written ``attribute=value``; e.g.
``ou=movies/cn=metropolis``.  The DIT stores entries in a tree mirroring the
DN hierarchy and offers the local flavour of the directory operations (read,
list, search, add, modify, remove) that a single DSA performs on the naming
context it masters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from .filters import Filter, TruePresent
from .schema import SchemaError, validate_attribute, validate_entry


class DirectoryError(Exception):
    """Base class for directory operation failures."""


class NoSuchEntry(DirectoryError):
    """The addressed entry does not exist."""


class EntryExists(DirectoryError):
    """An entry with the same DN already exists."""


def parse_dn(dn: str) -> Tuple[Tuple[str, str], ...]:
    """Parse ``"ou=movies/cn=metropolis"`` into ``(("ou","movies"), ("cn","metropolis"))``.

    The empty string denotes the root.
    """
    if dn.strip() in ("", "/"):
        return ()
    rdns: List[Tuple[str, str]] = []
    for part in dn.strip("/").split("/"):
        if "=" not in part:
            raise DirectoryError(f"malformed RDN {part!r} in DN {dn!r}")
        attribute, value = part.split("=", 1)
        attribute = attribute.strip()
        value = value.strip()
        if not attribute or not value:
            raise DirectoryError(f"malformed RDN {part!r} in DN {dn!r}")
        rdns.append((attribute, value))
    return tuple(rdns)


def format_dn(rdns: Tuple[Tuple[str, str], ...]) -> str:
    return "/".join(f"{attribute}={value}" for attribute, value in rdns)


@dataclass
class Entry:
    """A directory entry: DN, object class and attributes."""

    dn: str
    object_class: str
    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def rdn(self) -> str:
        rdns = parse_dn(self.dn)
        return format_dn((rdns[-1],)) if rdns else ""

    def get(self, attribute: str, default: Any = None) -> Any:
        return self.attributes.get(attribute, default)

    def matches(self, search_filter: Filter) -> bool:
        return search_filter.matches(self.attributes)

    def copy(self) -> "Entry":
        return Entry(dn=self.dn, object_class=self.object_class, attributes=dict(self.attributes))


class DirectoryInformationTree:
    """An in-memory DIT holding the entries a DSA masters."""

    def __init__(self) -> None:
        self._entries: Dict[Tuple[Tuple[str, str], ...], Entry] = {}

    # -- basic operations --------------------------------------------------------------

    def add(self, dn: str, object_class: str, attributes: Mapping[str, Any]) -> Entry:
        """Add an entry; its parent (if any) must already exist."""
        rdns = parse_dn(dn)
        if not rdns:
            raise DirectoryError("cannot add an entry at the root DN")
        if rdns in self._entries:
            raise EntryExists(f"entry {dn!r} already exists")
        parent = rdns[:-1]
        if parent and parent not in self._entries:
            raise NoSuchEntry(f"parent entry {format_dn(parent)!r} does not exist")
        attributes = dict(attributes)
        # The RDN attribute is implicitly part of the entry.
        rdn_attribute, rdn_value = rdns[-1]
        if rdn_attribute == "cn":
            attributes.setdefault("commonName", rdn_value)
        validate_entry(object_class, attributes)
        entry = Entry(dn=format_dn(rdns), object_class=object_class, attributes=attributes)
        self._entries[rdns] = entry
        return entry.copy()

    def read(self, dn: str) -> Entry:
        entry = self._entries.get(parse_dn(dn))
        if entry is None:
            raise NoSuchEntry(f"no entry at {dn!r}")
        return entry.copy()

    def exists(self, dn: str) -> bool:
        return parse_dn(dn) in self._entries

    def remove(self, dn: str) -> None:
        rdns = parse_dn(dn)
        if rdns not in self._entries:
            raise NoSuchEntry(f"no entry at {dn!r}")
        children = [key for key in self._entries if key[: len(rdns)] == rdns and key != rdns]
        if children:
            raise DirectoryError(f"entry {dn!r} has {len(children)} subordinates; remove them first")
        del self._entries[rdns]

    def modify(self, dn: str, changes: Mapping[str, Any]) -> Entry:
        """Apply attribute changes; a value of ``None`` removes the attribute."""
        rdns = parse_dn(dn)
        entry = self._entries.get(rdns)
        if entry is None:
            raise NoSuchEntry(f"no entry at {dn!r}")
        updated = dict(entry.attributes)
        for attribute, value in changes.items():
            if value is None:
                updated.pop(attribute, None)
            else:
                validate_attribute(attribute, value)
                updated[attribute] = value
        validate_entry(entry.object_class, updated)
        entry.attributes = updated
        return entry.copy()

    # -- navigation and search ------------------------------------------------------------

    def list_children(self, dn: str = "") -> List[Entry]:
        base = parse_dn(dn)
        if base and base not in self._entries:
            raise NoSuchEntry(f"no entry at {dn!r}")
        return [
            entry.copy()
            for key, entry in sorted(self._entries.items())
            if len(key) == len(base) + 1 and key[: len(base)] == base
        ]

    def search(
        self,
        base_dn: str = "",
        search_filter: Optional[Filter] = None,
        scope: str = "subtree",
    ) -> List[Entry]:
        """Search below ``base_dn``.

        ``scope`` is ``"base"`` (the entry itself), ``"onelevel"`` (direct
        children) or ``"subtree"`` (the whole subtree, the default).
        """
        search_filter = search_filter or TruePresent()
        base = parse_dn(base_dn)
        if base and base not in self._entries:
            raise NoSuchEntry(f"no entry at {base_dn!r}")
        results: List[Entry] = []
        for key, entry in sorted(self._entries.items()):
            if key[: len(base)] != base:
                continue
            depth = len(key) - len(base)
            if scope == "base" and depth != 0:
                continue
            if scope == "onelevel" and depth != 1:
                continue
            if entry.matches(search_filter):
                results.append(entry.copy())
        return results

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Entry]:
        return (entry.copy() for _, entry in sorted(self._entries.items()))
