"""The Directory User Agent: the client side of the movie directory.

An MCAM entity never talks to a DSA directly; its DUA does (Fig. 1).  The DUA
binds to a *home* DSA, issues operations there, and transparently follows
referrals when the home DSA does not chain.  It also offers the convenience
operations the MCAM protocol needs: registering a movie, looking movies up by
title or attribute filter, and updating movie attributes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from .dit import DirectoryError, Entry, NoSuchEntry
from .dsa import DirectorySystemAgent, ReferralError
from .filters import Equals, Filter, parse_filter


class NotBound(DirectoryError):
    """An operation was attempted before binding to a DSA."""


@dataclass
class DuaStats:
    operations: int = 0
    referrals_followed: int = 0


class DirectoryUserAgent:
    """Client-side access point to the distributed movie directory."""

    MAX_REFERRAL_HOPS = 8

    def __init__(self, name: str = "dua"):
        self.name = name
        self._home: Optional[DirectorySystemAgent] = None
        self._known: Dict[str, DirectorySystemAgent] = {}
        self.stats = DuaStats()

    # -- binding --------------------------------------------------------------------------

    def bind(self, dsa: DirectorySystemAgent) -> None:
        """Bind to a home DSA (and remember it for referral resolution)."""
        self._home = dsa
        self._known[dsa.name] = dsa
        for peer in dsa.peers():
            self._known.setdefault(peer.name, peer)

    def unbind(self) -> None:
        self._home = None

    @property
    def bound(self) -> bool:
        return self._home is not None

    def _require_home(self) -> DirectorySystemAgent:
        if self._home is None:
            raise NotBound(f"DUA {self.name!r} is not bound to any DSA")
        return self._home

    # -- referral-following core -----------------------------------------------------------

    def _perform(self, operation: str, *args, **kwargs):
        """Run an operation at the home DSA, following referrals as needed."""
        self.stats.operations += 1
        dsa = self._require_home()
        for _ in range(self.MAX_REFERRAL_HOPS):
            try:
                return getattr(dsa, operation)(*args, **kwargs)
            except ReferralError as referral:
                self.stats.referrals_followed += 1
                next_dsa = self._known.get(referral.dsa_name)
                if next_dsa is None:
                    raise NoSuchEntry(
                        f"referral to unknown DSA {referral.dsa_name!r}"
                    ) from referral
                dsa = next_dsa
        raise DirectoryError("referral limit exceeded")

    # -- generic directory operations ----------------------------------------------------------

    def add_entry(self, dn: str, object_class: str, attributes: Mapping[str, Any]) -> Entry:
        return self._perform("add", dn, object_class, attributes)

    def read_entry(self, dn: str) -> Entry:
        return self._perform("read", dn)

    def modify_entry(self, dn: str, changes: Mapping[str, Any]) -> Entry:
        return self._perform("modify", dn, changes)

    def remove_entry(self, dn: str) -> None:
        return self._perform("remove", dn)

    def entry_exists(self, dn: str) -> bool:
        self.stats.operations += 1
        return self._require_home().exists(dn)

    def search(
        self,
        base_dn: str = "",
        search_filter: Optional[Filter] = None,
        scope: str = "subtree",
    ) -> List[Entry]:
        return self._perform("search", base_dn, search_filter, scope)

    # -- movie-specific convenience operations ----------------------------------------------------

    MOVIES_BASE = "ou=movies"

    def register_movie(self, name: str, attributes: Mapping[str, Any]) -> Entry:
        """Create the movie entry ``cn=<name>`` below the movies subtree."""
        dn = f"{self.MOVIES_BASE}/cn={name}"
        home = self._require_home()
        if not home.exists(self.MOVIES_BASE):
            home.add(self.MOVIES_BASE, "movieCollection", {"commonName": "movies"})
        return self.add_entry(dn, "movie", attributes)

    def movie_entry(self, name: str) -> Entry:
        return self.read_entry(f"{self.MOVIES_BASE}/cn={name}")

    def movie_exists(self, name: str) -> bool:
        return self.entry_exists(f"{self.MOVIES_BASE}/cn={name}")

    def delete_movie(self, name: str) -> None:
        self.remove_entry(f"{self.MOVIES_BASE}/cn={name}")

    def update_movie(self, name: str, changes: Mapping[str, Any]) -> Entry:
        return self.modify_entry(f"{self.MOVIES_BASE}/cn={name}", changes)

    def find_movies(self, filter_expression: str = "*") -> List[Entry]:
        """Search the whole directory for movie entries matching the filter."""
        search_filter = parse_filter(filter_expression)
        return [
            entry
            for entry in self.search("", search_filter)
            if entry.object_class == "movie"
        ]

    def find_movies_by_title(self, title: str) -> List[Entry]:
        return [
            entry
            for entry in self.search("", Equals("movieTitle", title))
            if entry.object_class == "movie"
        ]
