"""The X.500-style movie directory: schema, DIT, DSAs and the DUA.

Fig. 1 of the paper places a distributed directory (DSAs) underneath MCAM;
the MCAM server's Directory User Agent stores and retrieves movie metadata
(image format, storage location, access rights, ...) here.
"""

from .dit import (
    DirectoryError,
    DirectoryInformationTree,
    Entry,
    EntryExists,
    NoSuchEntry,
    format_dn,
    parse_dn,
)
from .dsa import DirectorySystemAgent, DsaStats, ReferralError
from .dua import DirectoryUserAgent, DuaStats, NotBound
from .filters import (
    And,
    Compare,
    Equals,
    Filter,
    FilterError,
    Not,
    Or,
    Present,
    Substring,
    TruePresent,
    parse_filter,
)
from .schema import (
    ATTRIBUTE_TYPES,
    OBJECT_CLASSES,
    AttributeType,
    ObjectClass,
    SchemaError,
    validate_attribute,
    validate_entry,
)

__all__ = [
    "ATTRIBUTE_TYPES",
    "And",
    "AttributeType",
    "Compare",
    "DirectoryError",
    "DirectoryInformationTree",
    "DirectorySystemAgent",
    "DirectoryUserAgent",
    "DsaStats",
    "DuaStats",
    "Entry",
    "EntryExists",
    "Equals",
    "Filter",
    "FilterError",
    "NoSuchEntry",
    "Not",
    "NotBound",
    "OBJECT_CLASSES",
    "ObjectClass",
    "Or",
    "Present",
    "ReferralError",
    "SchemaError",
    "Substring",
    "TruePresent",
    "format_dn",
    "parse_dn",
    "parse_filter",
    "validate_attribute",
    "validate_entry",
]
