"""Directory System Agents: distribution, referrals and chaining.

The X.500 directory of the MCAM architecture (Fig. 1) is distributed over
several DSAs, each mastering one naming context (a subtree of the global
DIT).  A DSA receiving an operation for a name outside its context either
*chains* the operation to the responsible DSA (performing it on the caller's
behalf) or returns a *referral* naming that DSA so the DUA can retry there.
Both interaction styles are implemented; the DUA uses chaining by default,
falling back to referral handling when a DSA refuses to chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from .dit import DirectoryError, DirectoryInformationTree, Entry, NoSuchEntry, parse_dn
from .filters import Filter


class ReferralError(DirectoryError):
    """Raised towards the DUA when an operation must be retried at another DSA."""

    def __init__(self, dsa_name: str, target_dn: str):
        super().__init__(f"referral to DSA {dsa_name!r} for {target_dn!r}")
        self.dsa_name = dsa_name
        self.target_dn = target_dn


@dataclass
class DsaStats:
    """Operation counters (exported in the Fig. 1 / quickstart reports)."""

    operations: int = 0
    chained: int = 0
    referrals: int = 0


class DirectorySystemAgent:
    """One DSA: a naming context plus knowledge references to peer DSAs."""

    def __init__(self, name: str, context_prefix: str = "", chaining: bool = True):
        self.name = name
        self.context_prefix = context_prefix.strip("/")
        self.chaining = chaining
        self.dit = DirectoryInformationTree()
        self._peers: Dict[str, "DirectorySystemAgent"] = {}
        self.stats = DsaStats()

    # -- topology -----------------------------------------------------------------------

    def add_peer(self, peer: "DirectorySystemAgent") -> None:
        """Register a knowledge reference to another DSA (bidirectional is the
        caller's choice; the MCAM setups register peers both ways)."""
        if peer.name == self.name:
            raise DirectoryError("a DSA cannot be its own peer")
        self._peers[peer.name] = peer

    def peers(self) -> List["DirectorySystemAgent"]:
        return list(self._peers.values())

    def masters(self, dn: str) -> bool:
        """Whether this DSA's naming context contains ``dn``."""
        if not self.context_prefix:
            return True
        prefix = parse_dn(self.context_prefix)
        return parse_dn(dn)[: len(prefix)] == prefix

    def _responsible_peer(self, dn: str) -> Optional["DirectorySystemAgent"]:
        for peer in self._peers.values():
            if peer.masters(dn):
                return peer
        return None

    # -- operation dispatch -----------------------------------------------------------------

    def _dispatch(self, dn: str, operation, *args, **kwargs):
        self.stats.operations += 1
        if self.masters(dn):
            return operation(self.dit, dn, *args, **kwargs)
        peer = self._responsible_peer(dn)
        if peer is None:
            raise NoSuchEntry(f"no DSA known for {dn!r}")
        if self.chaining:
            self.stats.chained += 1
            return getattr(peer, operation.__name__.lstrip("_"))(dn, *args, **kwargs)
        self.stats.referrals += 1
        raise ReferralError(peer.name, dn)

    # -- directory operations ------------------------------------------------------------------

    def add(self, dn: str, object_class: str, attributes: Mapping[str, Any]) -> Entry:
        def _add(dit: DirectoryInformationTree, target: str, oc: str, attrs: Mapping[str, Any]) -> Entry:
            return dit.add(target, oc, attrs)

        return self._dispatch(dn, _add, object_class, attributes)

    def read(self, dn: str) -> Entry:
        def _read(dit: DirectoryInformationTree, target: str) -> Entry:
            return dit.read(target)

        return self._dispatch(dn, _read)

    def modify(self, dn: str, changes: Mapping[str, Any]) -> Entry:
        def _modify(dit: DirectoryInformationTree, target: str, delta: Mapping[str, Any]) -> Entry:
            return dit.modify(target, delta)

        return self._dispatch(dn, _modify, changes)

    def remove(self, dn: str) -> None:
        def _remove(dit: DirectoryInformationTree, target: str) -> None:
            dit.remove(target)

        return self._dispatch(dn, _remove)

    def exists(self, dn: str) -> bool:
        if self.masters(dn):
            return self.dit.exists(dn)
        peer = self._responsible_peer(dn)
        return peer.exists(dn) if peer is not None else False

    def search(
        self,
        base_dn: str = "",
        search_filter: Optional[Filter] = None,
        scope: str = "subtree",
        chain: bool = True,
    ) -> List[Entry]:
        """Search this DSA's context; optionally chain the search to all peers.

        A whole-tree search (empty ``base_dn``) fans out to every peer DSA
        exactly once, which is how the MCAM query-by-attribute operation finds
        movies regardless of which server's directory holds them.
        """
        self.stats.operations += 1
        results: List[Entry] = []
        if not base_dn or self.masters(base_dn):
            try:
                results.extend(self.dit.search(base_dn, search_filter, scope))
            except NoSuchEntry:
                pass
        if chain and self.chaining and (not base_dn or not self.masters(base_dn)):
            for peer in self._peers.values():
                if not base_dn or peer.masters(base_dn):
                    self.stats.chained += 1
                    results.extend(peer.search(base_dn, search_filter, scope, chain=False))
        return results

    def __len__(self) -> int:
        return len(self.dit)
