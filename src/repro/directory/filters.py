"""Search filters for the movie directory (X.500 / LDAP style).

Filters are composable predicate objects evaluated against an entry's
attribute dictionary: equality, substring, presence, comparison and the
boolean connectives.  A tiny string syntax (``format=mjpeg``,
``title~metropolis``, ``frameRate>=24``) is provided for the examples and the
MCAM query PDUs, which carry filters as text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Mapping, Sequence


class FilterError(Exception):
    """A filter expression could not be parsed."""


class Filter:
    """Base class of all search filters."""

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        raise NotImplementedError

    # boolean composition helpers -------------------------------------------------------

    def __and__(self, other: "Filter") -> "Filter":
        return And([self, other])

    def __or__(self, other: "Filter") -> "Filter":
        return Or([self, other])

    def __invert__(self) -> "Filter":
        return Not(self)


def _values_of(attributes: Mapping[str, Any], attribute: str) -> List[Any]:
    value = attributes.get(attribute)
    if value is None:
        return []
    if isinstance(value, (list, tuple)):
        return list(value)
    return [value]


@dataclass(frozen=True)
class TruePresent(Filter):
    """Matches every entry (the default filter)."""

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        return True


@dataclass(frozen=True)
class Present(Filter):
    """Matches entries that have the attribute at all."""

    attribute: str

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        return bool(_values_of(attributes, self.attribute))


@dataclass(frozen=True)
class Equals(Filter):
    attribute: str
    value: Any

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        return any(v == self.value for v in _values_of(attributes, self.attribute))


@dataclass(frozen=True)
class Substring(Filter):
    """Case-insensitive substring match on string attributes."""

    attribute: str
    fragment: str

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        fragment = self.fragment.lower()
        return any(
            isinstance(v, str) and fragment in v.lower()
            for v in _values_of(attributes, self.attribute)
        )


@dataclass(frozen=True)
class Compare(Filter):
    """Numeric comparison: operator is one of ``>=``, ``<=``, ``>``, ``<``."""

    attribute: str
    operator: str
    value: float

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        operations = {
            ">=": lambda v: v >= self.value,
            "<=": lambda v: v <= self.value,
            ">": lambda v: v > self.value,
            "<": lambda v: v < self.value,
        }
        if self.operator not in operations:
            raise FilterError(f"unknown comparison operator {self.operator!r}")
        check = operations[self.operator]
        return any(
            isinstance(v, (int, float)) and not isinstance(v, bool) and check(v)
            for v in _values_of(attributes, self.attribute)
        )


@dataclass(frozen=True)
class And(Filter):
    operands: Sequence[Filter]

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        return all(operand.matches(attributes) for operand in self.operands)


@dataclass(frozen=True)
class Or(Filter):
    operands: Sequence[Filter]

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        return any(operand.matches(attributes) for operand in self.operands)


@dataclass(frozen=True)
class Not(Filter):
    operand: Filter

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        return not self.operand.matches(attributes)


def parse_filter(expression: str) -> Filter:
    """Parse the compact text syntax used in MCAM query PDUs.

    Supported forms (``&`` binds tighter than ``|``)::

        *                      -> match everything
        attr=*                 -> presence
        attr=value             -> equality
        attr~fragment          -> substring
        attr>=n, attr<=n, attr>n, attr<n  -> numeric comparison
        expr & expr            -> conjunction
        expr | expr            -> disjunction
        !expr                  -> negation
    """
    expression = expression.strip()
    if not expression:
        raise FilterError("empty filter expression")
    if expression == "*":
        return TruePresent()

    def parse_or(text: str) -> Filter:
        parts = _split_top(text, "|")
        if len(parts) > 1:
            return Or([parse_and(p) for p in parts])
        return parse_and(text)

    def parse_and(text: str) -> Filter:
        parts = _split_top(text, "&")
        if len(parts) > 1:
            return And([parse_atom(p) for p in parts])
        return parse_atom(text)

    def parse_atom(text: str) -> Filter:
        text = text.strip()
        if text.startswith("!"):
            return Not(parse_atom(text[1:]))
        for operator in (">=", "<=", ">", "<"):
            if operator in text:
                attribute, value = text.split(operator, 1)
                try:
                    return Compare(attribute.strip(), operator, float(value.strip()))
                except ValueError as exc:
                    raise FilterError(f"non-numeric comparison value in {text!r}") from exc
        if "~" in text:
            attribute, fragment = text.split("~", 1)
            return Substring(attribute.strip(), fragment.strip())
        if "=" in text:
            attribute, value = text.split("=", 1)
            attribute, value = attribute.strip(), value.strip()
            if value == "*":
                return Present(attribute)
            if value.isdigit():
                return Or([Equals(attribute, value), Equals(attribute, int(value))])
            return Equals(attribute, value)
        raise FilterError(f"cannot parse filter atom {text!r}")

    def _split_top(text: str, separator: str) -> List[str]:
        return [part for part in text.split(separator) if part.strip()]

    return parse_or(expression)
