"""Digital movies: frames, formats and the movie store.

The XMovie project transmits digital movies frame by frame; for the
reproduction a movie is a synthetic sequence of frames whose sizes follow the
characteristics of the chosen image format (I-frame-only formats such as
M-JPEG have roughly constant frame sizes, differential formats alternate
large key frames with small delta frames).  The movie store is the server-side
repository the MCAM Stream Provider reads from and records into.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple


class MovieError(Exception):
    """Errors of the movie model and store."""


@dataclass(frozen=True)
class MovieFormat:
    """A digital image format as stored in the movie directory.

    ``key_frame_bytes`` is the nominal size of a full frame,
    ``delta_ratio`` the size of differential frames relative to key frames
    (1.0 = every frame is a key frame), ``key_frame_interval`` the distance
    between key frames.
    """

    name: str
    key_frame_bytes: int
    delta_ratio: float = 1.0
    key_frame_interval: int = 1
    colour_depth: int = 24

    def frame_size(self, index: int, rng: random.Random) -> int:
        is_key = self.key_frame_interval <= 1 or index % self.key_frame_interval == 0
        base = self.key_frame_bytes if is_key else int(self.key_frame_bytes * self.delta_ratio)
        jitter = rng.uniform(0.9, 1.1)
        return max(64, int(base * jitter))


#: Formats the examples and benchmarks use.  Sizes are scaled-down stand-ins
#: for early-1990s formats so simulations stay fast; ratios are realistic.
FORMATS: Dict[str, MovieFormat] = {
    "mjpeg": MovieFormat("mjpeg", key_frame_bytes=8 * 1024, delta_ratio=1.0, key_frame_interval=1),
    "xmovie-rl": MovieFormat("xmovie-rl", key_frame_bytes=10 * 1024, delta_ratio=0.25, key_frame_interval=8),
    "yuv-raw": MovieFormat("yuv-raw", key_frame_bytes=32 * 1024, delta_ratio=1.0, key_frame_interval=1),
}


@dataclass(frozen=True)
class Frame:
    """One movie frame (payload is synthesised, only the size matters)."""

    index: int
    size: int
    is_key: bool

    def payload(self) -> bytes:
        # A deterministic payload of the right size; contents never matter.
        return bytes((self.index + i) & 0xFF for i in range(self.size))


@dataclass
class Movie:
    """A stored digital movie."""

    name: str
    format: MovieFormat
    frame_rate: float
    frames: List[Frame]
    title: str = ""

    @property
    def frame_count(self) -> int:
        return len(self.frames)

    @property
    def duration_seconds(self) -> float:
        return self.frame_count / self.frame_rate if self.frame_rate else 0.0

    @property
    def total_bytes(self) -> int:
        return sum(frame.size for frame in self.frames)

    @property
    def mean_frame_size(self) -> float:
        return self.total_bytes / self.frame_count if self.frames else 0.0

    def frame_interval_ms(self) -> float:
        """Milliseconds between frames at the nominal rate."""
        if self.frame_rate <= 0:
            raise MovieError(f"movie {self.name!r} has a non-positive frame rate")
        return 1000.0 / self.frame_rate

    def directory_attributes(self, storage_location: str) -> Dict[str, object]:
        """The attribute set registered for this movie in the directory."""
        return {
            "movieTitle": self.title or self.name,
            "imageFormat": self.format.name,
            "frameRate": self.frame_rate,
            "frameCount": self.frame_count,
            "durationSeconds": round(self.duration_seconds, 3),
            "colourDepth": self.format.colour_depth,
            "storageLocation": storage_location,
        }


def synthesise_movie(
    name: str,
    duration_seconds: float = 10.0,
    frame_rate: float = 25.0,
    format_name: str = "mjpeg",
    title: str = "",
    seed: int = 11,
) -> Movie:
    """Create a synthetic movie with format-appropriate frame sizes."""
    movie_format = FORMATS.get(format_name)
    if movie_format is None:
        raise MovieError(f"unknown movie format {format_name!r}; known: {sorted(FORMATS)}")
    if duration_seconds <= 0 or frame_rate <= 0:
        raise MovieError("duration and frame rate must be positive")
    rng = random.Random(seed)
    frame_count = max(1, int(round(duration_seconds * frame_rate)))
    frames = [
        Frame(
            index=index,
            size=movie_format.frame_size(index, rng),
            is_key=movie_format.key_frame_interval <= 1
            or index % movie_format.key_frame_interval == 0,
        )
        for index in range(frame_count)
    ]
    return Movie(name=name, format=movie_format, frame_rate=frame_rate, frames=frames, title=title)


class MovieStore:
    """The server-side movie repository the Stream Provider serves from."""

    def __init__(self) -> None:
        self._movies: Dict[str, Movie] = {}

    def add(self, movie: Movie) -> Movie:
        if movie.name in self._movies:
            raise MovieError(f"movie {movie.name!r} already exists in the store")
        self._movies[movie.name] = movie
        return movie

    def create(self, name: str, **kwargs) -> Movie:
        """Synthesise and store a movie in one step (MCAM CREATE)."""
        movie = synthesise_movie(name, **kwargs)
        return self.add(movie)

    def get(self, name: str) -> Movie:
        try:
            return self._movies[name]
        except KeyError as exc:
            raise MovieError(f"no movie named {name!r} in the store") from exc

    def exists(self, name: str) -> bool:
        return name in self._movies

    def remove(self, name: str) -> None:
        if name not in self._movies:
            raise MovieError(f"no movie named {name!r} in the store")
        del self._movies[name]

    def names(self) -> List[str]:
        return sorted(self._movies)

    def record(self, name: str, frames: List[Frame], frame_rate: float, format_name: str = "mjpeg") -> Movie:
        """Store frames captured from equipment as a new movie (MCAM RECORD)."""
        movie_format = FORMATS.get(format_name)
        if movie_format is None:
            raise MovieError(f"unknown movie format {format_name!r}")
        movie = Movie(name=name, format=movie_format, frame_rate=frame_rate, frames=list(frames))
        return self.add(movie)

    def __len__(self) -> int:
        return len(self._movies)
