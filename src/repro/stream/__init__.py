"""The XMovie stream service: movies, MTP, jitter buffering and QoS.

The continuous-media half of the paper's architecture (Table 1's right
column): a synthetic movie model, the Movie Transmission Protocol over the
simulated UDP/IP/FDDI path, receiver-side jitter buffering and QoS
monitoring.
"""

from .jitter import JitterBuffer, PlayoutDecision
from .movie import (
    FORMATS,
    Frame,
    Movie,
    MovieError,
    MovieFormat,
    MovieStore,
    synthesise_movie,
)
from .mtp import (
    DEFAULT_MTU,
    MTP_HEADER_SIZE,
    MtpError,
    MtpPacket,
    MtpReceiver,
    MtpSender,
    StreamProvider,
    StreamStatistics,
)
from .qos import (
    CONTROL_PROTOCOL_REQUIREMENTS,
    STREAM_PROTOCOL_REQUIREMENTS,
    QosMonitor,
    QosReport,
    QosRequirements,
    compliance,
)

__all__ = [
    "CONTROL_PROTOCOL_REQUIREMENTS",
    "DEFAULT_MTU",
    "FORMATS",
    "Frame",
    "JitterBuffer",
    "MTP_HEADER_SIZE",
    "Movie",
    "MovieError",
    "MovieFormat",
    "MovieStore",
    "MtpError",
    "MtpPacket",
    "MtpReceiver",
    "MtpSender",
    "PlayoutDecision",
    "QosMonitor",
    "QosReport",
    "QosRequirements",
    "STREAM_PROTOCOL_REQUIREMENTS",
    "StreamProvider",
    "StreamStatistics",
    "compliance",
    "synthesise_movie",
]
