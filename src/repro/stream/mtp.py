"""MTP — the XMovie Movie Transmission Protocol (simulated).

The paper runs *"the XMovie transmission protocol MTP directly on top of UDP,
IP and FDDI"*.  MTP here is a lightweight, connectionless media transport:

* the sender paces frames isochronously at the movie's nominal frame rate,
* frames larger than the network MTU are fragmented into numbered packets,
* packets carry stream id, frame index, fragment indices and a send timestamp,
* there is **no retransmission** — loss is detected by sequence gaps and
  reported to the QoS monitor (Table 1: "lightweight or none" error
  correction),
* the receiver reassembles frames, feeds a jitter buffer for isochronous
  playout and records delay/jitter/loss statistics.

Everything runs on the shared :class:`repro.sim.engine.EventScheduler` and the
:class:`repro.sim.network.DatagramNetwork`, so a control connection (OSI
stack) and several CM streams can be simulated together, as in Fig. 2.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..sim.engine import EventScheduler
from ..sim.network import Datagram, DatagramNetwork
from .jitter import JitterBuffer
from .movie import Frame, Movie
from .qos import QosMonitor


class MtpError(Exception):
    """Errors of the movie transmission protocol."""


MTP_HEADER_SIZE = 24
DEFAULT_MTU = 4096  # FDDI-sized payloads


@dataclass(frozen=True)
class MtpPacket:
    """One MTP packet (a fragment of a frame)."""

    stream_id: int
    sequence: int
    frame_index: int
    fragment_index: int
    fragment_count: int
    timestamp_us: int
    payload_size: int

    def to_bytes(self) -> bytes:
        header = (
            self.stream_id.to_bytes(4, "big")
            + self.sequence.to_bytes(4, "big")
            + self.frame_index.to_bytes(4, "big")
            + self.fragment_index.to_bytes(2, "big")
            + self.fragment_count.to_bytes(2, "big")
            + self.timestamp_us.to_bytes(8, "big")
        )
        return header + bytes(self.payload_size)

    @staticmethod
    def from_bytes(data: bytes) -> "MtpPacket":
        if len(data) < MTP_HEADER_SIZE:
            raise MtpError("truncated MTP packet")
        return MtpPacket(
            stream_id=int.from_bytes(data[0:4], "big"),
            sequence=int.from_bytes(data[4:8], "big"),
            frame_index=int.from_bytes(data[8:12], "big"),
            fragment_index=int.from_bytes(data[12:14], "big"),
            fragment_count=int.from_bytes(data[14:16], "big"),
            timestamp_us=int.from_bytes(data[16:24], "big"),
            payload_size=len(data) - MTP_HEADER_SIZE,
        )


@dataclass
class StreamStatistics:
    """Sender- and receiver-side counters for one stream."""

    frames_sent: int = 0
    packets_sent: int = 0
    bytes_sent: int = 0
    frames_delivered: int = 0
    frames_incomplete: int = 0
    packets_received: int = 0
    packets_lost: int = 0

    @property
    def frame_delivery_ratio(self) -> float:
        return self.frames_delivered / self.frames_sent if self.frames_sent else 1.0

    @property
    def packet_loss_ratio(self) -> float:
        total = self.packets_received + self.packets_lost
        return self.packets_lost / total if total else 0.0


class MtpSender:
    """Isochronous sender for one movie stream."""

    _ids = itertools.count(1)

    def __init__(
        self,
        scheduler: EventScheduler,
        network: DatagramNetwork,
        source: str,
        destination: str,
        port: int,
        mtu: int = DEFAULT_MTU,
    ):
        self.scheduler = scheduler
        self.network = network
        self.source = source
        self.destination = destination
        self.port = port
        self.mtu = mtu
        self.stream_id = next(self._ids)
        self.stats = StreamStatistics()
        self._sequence = 0
        self._paused = False
        self._stopped = False
        self._pending_frames: List[Frame] = []
        self._frame_interval = 0.0
        self.finished = False

    # -- control interface (driven by the MCAM Stream Provider Agent) -----------------------------

    def play(self, movie: Movie, start_frame: int = 0, rate_factor: float = 1.0) -> None:
        """Start (or restart) isochronous transmission of ``movie``."""
        if rate_factor <= 0:
            raise MtpError("rate_factor must be positive")
        self._pending_frames = list(movie.frames[start_frame:])
        self._frame_interval = movie.frame_interval_ms() / rate_factor
        self._paused = False
        self._stopped = False
        self.finished = False
        self.scheduler.schedule(0.0, self._send_next, label=f"mtp-{self.stream_id}-start")

    def pause(self) -> None:
        self._paused = True

    def resume(self) -> None:
        if self._paused and not self._stopped:
            self._paused = False
            self.scheduler.schedule(0.0, self._send_next, label=f"mtp-{self.stream_id}-resume")

    def stop(self) -> None:
        self._stopped = True
        self._pending_frames = []
        self.finished = True

    # -- transmission -----------------------------------------------------------------------------------

    def _send_next(self) -> None:
        if self._stopped or self._paused:
            return
        if not self._pending_frames:
            self.finished = True
            return
        frame = self._pending_frames.pop(0)
        self._send_frame(frame)
        if self._pending_frames:
            self.scheduler.schedule(
                self._frame_interval, self._send_next, label=f"mtp-{self.stream_id}-tick"
            )
        else:
            self.finished = True

    def _send_frame(self, frame: Frame) -> None:
        payload_capacity = self.mtu - MTP_HEADER_SIZE
        fragment_count = max(1, -(-frame.size // payload_capacity))
        remaining = frame.size
        timestamp_us = int(self.scheduler.now * 1000)
        for fragment_index in range(fragment_count):
            size = min(payload_capacity, remaining)
            remaining -= size
            packet = MtpPacket(
                stream_id=self.stream_id,
                sequence=self._sequence,
                frame_index=frame.index,
                fragment_index=fragment_index,
                fragment_count=fragment_count,
                timestamp_us=timestamp_us,
                payload_size=size,
            )
            self._sequence += 1
            self.stats.packets_sent += 1
            self.stats.bytes_sent += size + MTP_HEADER_SIZE
            self.network.send(self.source, self.destination, packet.to_bytes(), port=self.port)
        self.stats.frames_sent += 1


class MtpReceiver:
    """Receiver: reassembles frames, runs the jitter buffer, records QoS."""

    def __init__(
        self,
        scheduler: EventScheduler,
        network: DatagramNetwork,
        host: str,
        port: int,
        frame_interval_ms: float,
        jitter_target_ms: float = 30.0,
        on_frame: Optional[Callable[[int, float], None]] = None,
    ):
        self.scheduler = scheduler
        self.network = network
        self.host = host
        self.port = port
        self.stats = StreamStatistics()
        self.qos = QosMonitor("CM stream")
        self.jitter_buffer = JitterBuffer(jitter_target_ms, frame_interval_ms)
        self.on_frame = on_frame
        self._fragments: Dict[Tuple[int, int], Dict[int, int]] = {}
        self._frame_meta: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self._highest_sequence: Optional[int] = None
        network.bind(host, port, self._on_datagram)
        self.delivered_frames: List[int] = []

    def close(self) -> None:
        self.network.unbind(self.host, self.port)

    # -- datagram handling -----------------------------------------------------------------------------

    def _on_datagram(self, datagram: Datagram) -> None:
        packet = MtpPacket.from_bytes(datagram.payload)
        self.stats.packets_received += 1
        if self._highest_sequence is None or packet.sequence > self._highest_sequence:
            self._highest_sequence = packet.sequence

        key = (packet.stream_id, packet.frame_index)
        fragments = self._fragments.setdefault(key, {})
        fragments[packet.fragment_index] = packet.payload_size
        self._frame_meta[key] = (packet.fragment_count, packet.timestamp_us)

        fragment_count, timestamp_us = self._frame_meta[key]
        if len(fragments) == fragment_count:
            self._deliver_frame(key, sum(fragments.values()), timestamp_us)

    def _deliver_frame(self, key: Tuple[int, int], size: int, timestamp_us: int) -> None:
        _, frame_index = key
        now = self.scheduler.now
        sent_at = timestamp_us / 1000.0
        self.qos.note_sent(sent_at)
        self.qos.note_delivered(sent_at, now, size)
        decision = self.jitter_buffer.accept(frame_index, now)
        if decision.late:
            self.qos.note_late_or_lost()
        else:
            self.stats.frames_delivered += 1
            self.delivered_frames.append(frame_index)
            if self.on_frame is not None:
                self.on_frame(frame_index, decision.playout_time)
        del self._fragments[key]
        del self._frame_meta[key]

    # -- end-of-run summary ------------------------------------------------------------------------------

    def incomplete_frames(self) -> int:
        """Frames for which fragments are still outstanding (lost fragments)."""
        return len(self._fragments)

    def finalise(self) -> None:
        """Account losses once the stream has ended.

        Packet loss is inferred from the gap between the highest sequence
        number seen and the number of packets received (MTP has no
        retransmission, so a missing sequence number is a lost packet);
        still-incomplete frames are counted as frame losses.
        """
        if self._highest_sequence is not None:
            expected = self._highest_sequence + 1
            lost = max(0, expected - self.stats.packets_received)
            self.stats.packets_lost = lost
        incomplete = self.incomplete_frames()
        self.stats.frames_incomplete += incomplete
        if incomplete:
            self.qos.note_late_or_lost(incomplete)
        self._fragments.clear()
        self._frame_meta.clear()


class StreamProvider:
    """Server-side stream service: one MTP sender per active playback.

    This is the Stream Provider System (SPS) of Fig. 1 in library form; the
    MCAM server's Stream Provider Agent drives it when PLAY / PAUSE / STOP /
    RECORD requests arrive.
    """

    def __init__(self, scheduler: EventScheduler, network: DatagramNetwork, host: str):
        self.scheduler = scheduler
        self.network = network
        self.host = host
        self._sessions: Dict[int, MtpSender] = {}

    def start_playback(
        self, movie: Movie, destination: str, port: int, rate_factor: float = 1.0
    ) -> MtpSender:
        sender = MtpSender(self.scheduler, self.network, self.host, destination, port)
        sender.play(movie, rate_factor=rate_factor)
        self._sessions[sender.stream_id] = sender
        return sender

    def sender(self, stream_id: int) -> MtpSender:
        try:
            return self._sessions[stream_id]
        except KeyError as exc:
            raise MtpError(f"no active stream {stream_id}") from exc

    def pause(self, stream_id: int) -> None:
        self.sender(stream_id).pause()

    def resume(self, stream_id: int) -> None:
        self.sender(stream_id).resume()

    def stop(self, stream_id: int) -> None:
        self.sender(stream_id).stop()
        del self._sessions[stream_id]

    def active_streams(self) -> List[int]:
        return sorted(self._sessions)
