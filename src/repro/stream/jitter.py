"""Receiver-side jitter buffering for isochronous playout.

A continuous-media stream needs *"delay and jitter control"* (Table 1).  The
receiver cannot display frames the moment they arrive — network jitter would
make playback stutter — so it delays the first frame by a configurable target
and plays subsequent frames at the nominal frame interval relative to that
anchored playout clock.  Frames that arrive after their playout time are
counted as late and dropped (a lightweight policy: no retransmission, matching
the stream-protocol column of Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class PlayoutDecision:
    """The buffer's verdict for one arriving frame."""

    frame_index: int
    arrival_time: float
    playout_time: float
    late: bool

    @property
    def buffered_for(self) -> float:
        """How long the frame waits in the buffer before playout (0 when late)."""
        return 0.0 if self.late else self.playout_time - self.arrival_time


class JitterBuffer:
    """Fixed-target playout buffer.

    ``target_delay`` is the initial buffering delay in milliseconds;
    ``frame_interval`` the nominal distance between consecutive frames.
    """

    def __init__(self, target_delay: float, frame_interval: float):
        if target_delay < 0:
            raise ValueError("target_delay must be non-negative")
        if frame_interval <= 0:
            raise ValueError("frame_interval must be positive")
        self.target_delay = target_delay
        self.frame_interval = frame_interval
        self._base_playout: Optional[float] = None
        self._base_index: Optional[int] = None
        self.decisions: List[PlayoutDecision] = []
        self.late_frames = 0
        self.on_time_frames = 0

    def reset(self) -> None:
        self._base_playout = None
        self._base_index = None
        self.decisions.clear()
        self.late_frames = 0
        self.on_time_frames = 0

    def playout_time_for(self, frame_index: int) -> Optional[float]:
        """The scheduled playout time of a frame (None before the first arrival)."""
        if self._base_playout is None or self._base_index is None:
            return None
        return self._base_playout + (frame_index - self._base_index) * self.frame_interval

    def accept(self, frame_index: int, arrival_time: float) -> PlayoutDecision:
        """Register an arriving frame and decide its playout."""
        if self._base_playout is None:
            self._base_playout = arrival_time + self.target_delay
            self._base_index = frame_index
        playout = self.playout_time_for(frame_index)
        assert playout is not None
        late = arrival_time > playout
        decision = PlayoutDecision(
            frame_index=frame_index,
            arrival_time=arrival_time,
            playout_time=playout,
            late=late,
        )
        if late:
            self.late_frames += 1
        else:
            self.on_time_frames += 1
        self.decisions.append(decision)
        return decision

    # -- statistics ----------------------------------------------------------------------------

    @property
    def frames_seen(self) -> int:
        return len(self.decisions)

    @property
    def late_ratio(self) -> float:
        return self.late_frames / self.frames_seen if self.decisions else 0.0

    def buffering_delays(self) -> List[float]:
        return [d.buffered_for for d in self.decisions if not d.late]

    def max_buffer_occupancy(self) -> float:
        """The largest time any frame spent buffered — a proxy for the memory
        the receiver needs to smooth the stream."""
        delays = self.buffering_delays()
        return max(delays) if delays else 0.0

    def suggest_target_delay(self, safety_factor: float = 1.2) -> float:
        """Smallest target delay that would have made every seen frame on time.

        Used by the adaptive example to re-tune the buffer between plays.
        """
        worst = 0.0
        for decision in self.decisions:
            nominal = decision.playout_time - self.target_delay
            lateness = decision.arrival_time - nominal
            worst = max(worst, lateness)
        return worst * safety_factor
