"""Quality-of-service requirements and monitoring for both protocol types.

Table 1 of the paper contrasts the requirements of the *control* protocol and
the *CM stream* protocol: data rate, reliability, error correction, timing
relations, and delay/jitter control.  :class:`QosRequirements` encodes one
column of that table; :class:`QosMonitor` measures what a protocol actually
delivered in a run so the Table 1 benchmark can print requirement vs
measurement side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..sim.metrics import LatencySeries, mean


@dataclass(frozen=True)
class QosRequirements:
    """One column of Table 1."""

    name: str
    data_rate: str                 # qualitative: "low" / "high"
    reliability: str               # "100%" / "<100%"
    error_correction: str          # "yes" / "lightweight or none"
    timing_relations: str          # "asynchronous" / "isochronous"
    delay_jitter_control: bool
    protocol_stack: str

    def as_row(self) -> Dict[str, str]:
        return {
            "protocol": self.name,
            "data rates": self.data_rate,
            "reliability": self.reliability,
            "error correction": self.error_correction,
            "timing relations": self.timing_relations,
            "delay and jitter control": "yes" if self.delay_jitter_control else "no",
            "protocol stack": self.protocol_stack,
        }


#: The two columns of Table 1.
CONTROL_PROTOCOL_REQUIREMENTS = QosRequirements(
    name="control",
    data_rate="low",
    reliability="100%",
    error_correction="yes",
    timing_relations="asynchronous",
    delay_jitter_control=False,
    protocol_stack="OSI or TCP/IP",
)

STREAM_PROTOCOL_REQUIREMENTS = QosRequirements(
    name="CM stream",
    data_rate="high",
    reliability="< 100%",
    error_correction="lightweight or none",
    timing_relations="isochronous",
    delay_jitter_control=True,
    protocol_stack="XMovie/MTP",
)


@dataclass
class QosReport:
    """Measured behaviour of one protocol run (one row of the T1 benchmark)."""

    name: str
    duration_ms: float
    bytes_delivered: int
    messages_sent: int
    messages_delivered: int
    mean_delay_ms: float
    jitter_ms: float
    max_delay_ms: float
    late_or_lost_ratio: float

    @property
    def throughput_kbps(self) -> float:
        if self.duration_ms <= 0:
            return 0.0
        return (self.bytes_delivered * 8) / self.duration_ms  # kbit/s == bits/ms

    @property
    def delivery_ratio(self) -> float:
        return self.messages_delivered / self.messages_sent if self.messages_sent else 1.0

    def as_row(self) -> Dict[str, str]:
        return {
            "protocol": self.name,
            "throughput": f"{self.throughput_kbps:8.1f} kbit/s",
            "delivery": f"{self.delivery_ratio * 100:5.1f} %",
            "mean delay": f"{self.mean_delay_ms:6.2f} ms",
            "jitter": f"{self.jitter_ms:6.2f} ms",
            "max delay": f"{self.max_delay_ms:6.2f} ms",
            "late/lost": f"{self.late_or_lost_ratio * 100:5.2f} %",
        }


class QosMonitor:
    """Collects per-message delay samples and byte counts during a run."""

    def __init__(self, name: str):
        self.name = name
        self.delays = LatencySeries()
        self.bytes_delivered = 0
        self.messages_sent = 0
        self.messages_delivered = 0
        self.late_or_lost = 0
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    def note_sent(self, at: float, count: int = 1) -> None:
        if self.started_at is None:
            self.started_at = at
        self.messages_sent += count

    def note_delivered(self, sent_at: float, delivered_at: float, size: int) -> None:
        self.messages_delivered += 1
        self.bytes_delivered += size
        self.delays.add(max(0.0, delivered_at - sent_at))
        self.finished_at = delivered_at

    def note_late_or_lost(self, count: int = 1) -> None:
        self.late_or_lost += count

    def report(self) -> QosReport:
        duration = 0.0
        if self.started_at is not None and self.finished_at is not None:
            duration = max(0.0, self.finished_at - self.started_at)
        total = self.messages_sent if self.messages_sent else 1
        return QosReport(
            name=self.name,
            duration_ms=duration,
            bytes_delivered=self.bytes_delivered,
            messages_sent=self.messages_sent,
            messages_delivered=self.messages_delivered,
            mean_delay_ms=self.delays.mean,
            jitter_ms=self.delays.jitter,
            max_delay_ms=self.delays.maximum,
            late_or_lost_ratio=self.late_or_lost / total,
        )


def compliance(report: QosReport, requirements: QosRequirements, max_jitter_ms: float = 20.0) -> Dict[str, bool]:
    """Check a measured run against its Table 1 requirements column.

    The check is intentionally coarse — Table 1 is qualitative — but it gives
    the benchmark a pass/fail per requirement dimension.
    """
    checks: Dict[str, bool] = {}
    if requirements.reliability == "100%":
        checks["reliability"] = report.delivery_ratio >= 0.999
    else:
        checks["reliability"] = report.delivery_ratio >= 0.9
    if requirements.delay_jitter_control:
        checks["jitter"] = report.jitter_ms <= max_jitter_ms
    else:
        checks["jitter"] = True
    checks["data_rate"] = (
        report.throughput_kbps >= 100.0
        if requirements.data_rate == "high"
        else True
    )
    return checks
