"""``repro.serve`` — a multi-session protocol service.

The paper's engine executes one Estelle specification at a time; its real
target — multi-party multimedia call control (MCAM) — is many concurrent
sessions, one protocol instance per user/call.  This package turns the
single-run executor into a long-running service:

* :mod:`repro.serve.registry` — the compile-once registry: every
  ``.estelle`` source is parsed and lowered exactly once (keyed by source
  hash); all sessions of the same source share the lowered module classes,
  the code generator's per-class dispatch selectors and the fused planner's
  compiled code objects.  Session spawn is O(instance state), not
  O(compile).
* :mod:`repro.serve.engine` — the session engine: hosts N independent
  specification instances (create / inject / step / stream-firings / close
  lifecycle), each with its own executor, simulated clock and dirty
  tracker, multiplexed over a thread worker pool.  No module-level globals:
  every piece of state lives on the engine or its sessions.
* :mod:`repro.serve.api` — ingress: a dict-in/dict-out in-process API plus
  a minimal HTTP/JSON front on :mod:`http.server`, with graceful
  degradation: an in-flight admission gate (429 + ``Retry-After``), a
  request-body cap (413) and per-step wall-clock budgets (503).
* Durability: with a ``state_dir`` the engine checkpoints sessions
  (atomically, one pickle per session) and restores them on the next
  start with byte-identical trace suffixes — see ``docs/RESILIENCE.md``.
* ``python -m repro.serve`` — the CLI: serve over HTTP, or run the
  ``--smoke`` self-check CI uses (N interleaved sessions, byte-identical
  traces, clean shutdown).

Sessions are deterministic and isolated: stepping N sessions interleaved
produces, per session, the byte-identical canonical trace
(:mod:`repro.runtime.parallel.trace`) that the same session run
sequentially — or the plain in-process backend — produces.  That property
joins the repo's equivalence matrix and is gated by tests, the
``serve-smoke`` CI job and ``benchmarks/bench_serve_load.py``.
"""

from .engine import (
    ServeError,
    Session,
    SessionEngine,
    SessionUnknown,
    StepTimeout,
)
from .registry import CompiledSpec, SpecRegistry

__all__ = [
    "CompiledSpec",
    "ServeError",
    "Session",
    "SessionEngine",
    "SessionUnknown",
    "SpecRegistry",
    "StepTimeout",
]
