"""The compile-once specification registry.

A service hosting thousands of sessions of the same protocol must not pay
the Estelle front-end (tokenize, parse, lower — dynamic class creation with
AST-closing transitions) once per session.  The registry parses and lowers
each distinct source exactly once and hands out :class:`CompiledSpec`
entries whose :meth:`~CompiledSpec.instantiate` builds fresh, mutually
independent specification trees from the shared
:class:`~repro.estelle.frontend.SpecificationTemplate`.

Sharing cascades through every per-class compiled artefact:

* the lowered module classes themselves (one set per source, not per
  session),
* the code generator's specialized dispatch selectors —
  :meth:`CompiledSpec.dispatch_for` hands out one strategy instance per
  dispatch name whose per-class cache is shared by every session,
* the fused planner's compiled code objects
  (:data:`repro.runtime.planner._PLAN_CODE_CACHE` keys by generated
  source, which is identical across instances of one tree shape).

Keys are SHA-256 hashes of the *source text* (files are read and keyed by
content, so the same protocol reached through a path and through inline
text still shares one entry).  ``factory`` sources cannot share a lowering
— the factory is an opaque callable — so each instantiation rebuilds, and
``compile_count`` honestly counts every rebuild.

Thread safety: ``get`` may be called concurrently (one lock around the
entry map); ``instantiate`` only reads the template and builds fresh
objects, so sessions may spawn in parallel.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Any, Dict, Optional

from ..estelle.frontend import SpecificationTemplate, compile_template
from ..estelle.specification import Specification
from ..runtime.dispatch import DispatchStrategy, dispatch_by_name
from ..runtime.executor import SpecSource


def source_key(source: SpecSource) -> str:
    """Stable content hash identifying a spec source.

    ``estelle-file`` sources are keyed by *file content*, so a path and the
    equivalent inline text resolve to the same registry entry.
    """
    if source.kind == "estelle-file":
        from pathlib import Path

        text = Path(source.payload).read_text()
        material = f"estelle\x00{text}"
    elif source.kind == "estelle-text":
        material = f"estelle\x00{source.payload}"
    else:
        material = f"{source.kind}\x00{source.payload}\x00{source.kwargs!r}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class CompiledSpec:
    """One registry entry: a compiled source plus its shared artefacts."""

    def __init__(self, key: str, source: SpecSource):
        self.key = key
        self.source = source
        #: how many times the front-end actually ran for this entry.  The
        #: service's contract — asserted by the load benchmark and the
        #: ``serve-smoke`` CI job — is that this stays 1 for Estelle sources
        #: no matter how many sessions spawn.
        self.compile_count = 0
        #: how many fresh specification instances this entry produced.
        self.instantiations = 0
        self._template: Optional[SpecificationTemplate] = None
        self._dispatches: Dict[str, DispatchStrategy] = {}
        self._lock = threading.Lock()
        if source.kind in ("estelle-file", "estelle-text"):
            self._template = self._compile_template()

    def _compile_template(self) -> SpecificationTemplate:
        if self.source.kind == "estelle-file":
            from pathlib import Path

            text = Path(self.source.payload).read_text()
            filename = self.source.payload
        else:
            text = self.source.payload
            filename = dict(self.source.kwargs).get("filename", "<estelle>")
        self.compile_count += 1
        return compile_template(text, filename)

    @property
    def name(self) -> str:
        if self._template is not None:
            return self._template.name
        return self.source.payload

    @property
    def shares_compilation(self) -> bool:
        """Whether instances share one lowering (False for factory sources)."""
        return self._template is not None

    def instantiate(self) -> Specification:
        """A fresh, independent specification instance of this source."""
        with self._lock:
            self.instantiations += 1
        if self._template is not None:
            return self._template.instantiate()
        # Factory recipes are opaque: rebuild (and recount) every time.
        self.compile_count += 1
        return self.source.build()

    def dispatch_for(self, name: str) -> DispatchStrategy:
        """The shared dispatch strategy instance for ``name``.

        Dispatch strategies hold only per-module-class caches (compiled
        selectors, flattened tables) plus cost constants — no per-run
        state — so one instance can serve every session of this spec, and
        selector compilation happens once per (entry, dispatch name).
        """
        with self._lock:
            strategy = self._dispatches.get(name)
            if strategy is None:
                strategy = dispatch_by_name(name)
                self._dispatches[name] = strategy
            return strategy

    def stats(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.source.kind,
            "compile_count": self.compile_count,
            "instantiations": self.instantiations,
            "shares_compilation": self.shares_compilation,
        }


class SpecRegistry:
    """Source-hash keyed map of :class:`CompiledSpec` entries."""

    def __init__(self) -> None:
        self._entries: Dict[str, CompiledSpec] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, source: SpecSource) -> CompiledSpec:
        """The entry for ``source``, compiling it on first sight only."""
        key = source_key(source)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                return entry
            entry = CompiledSpec(key, source)
            self._entries[key] = entry
            self.misses += 1
            return entry

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, Any]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "specs": [entry.stats() for entry in self._entries.values()],
        }
