"""The session engine: N independent spec instances behind one service.

Each :class:`Session` owns a full, private execution stack — specification
instance, :class:`~repro.runtime.executor.SpecificationExecutor`, simulated
clock, dirty tracker, trace — built from the compile-once registry
(:mod:`repro.serve.registry`), so spawning a session never re-runs the
front-end.  Sessions are mutually invisible: the only shared objects are
immutable-after-build per-class artefacts (module classes, compiled
selectors, planner code objects), which is what makes the isolation
contract hold — stepping sessions interleaved yields, per session, the
byte-identical canonical trace a sequential run yields.

Concurrency model
-----------------

Operations on one session are serialized by the session's lock; different
sessions proceed independently.  :meth:`SessionEngine.step_all` fans a
step over the engine's thread pool (one task per session) — the idiom for
driving thousands of sessions a timeslice at a time.  Threads (not
processes) are the right pool here: sessions share the per-class compiled
artefacts, and a session step is dominated by the Python round loop which
interleaves fairly under the GIL; the multiprocess axis is ROADMAP item 3.

Lifecycle
---------

::

    engine = SessionEngine()
    sid = engine.create_session(SpecSource.from_estelle_file(path))
    engine.inject(sid, "alice", "ctl", "CallAccept")      # optional ingress
    engine.step(sid, rounds=50)                           # -> health dict
    events, cursor = engine.stream_firings(sid, since=0)  # firing stream
    engine.close_session(sid)                             # -> final stats
    engine.shutdown()

``step`` reports the executor's honest ``stop_reason`` ("quiescent" |
"budget" | "deadline"), so a supervisor can distinguish a finished call
from one that merely exhausted its timeslice.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import pickle
import re
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..estelle.interaction import Interaction
from ..estelle.specification import Specification
from ..faults import FailingSink, FaultPlan, InjectedFault
from ..obs import Observability
from ..runtime.executor import SpecSource, SpecificationExecutor
from ..runtime.mapping import MappingStrategy
from ..runtime.planner import plan_code_cache_info
from ..sim.machine import Cluster, Machine
from .registry import CompiledSpec, SpecRegistry

#: rounds per executor.run() slice when a step carries a wall-clock budget;
#: run() is timeslicing-safe, so slicing cannot change the trace.
STEP_SLICE_ROUNDS = 32

#: on-disk session checkpoint format version.
CHECKPOINT_VERSION = 1

_SERIAL_SID = re.compile(r"^s-(\d+)$")


class ServeError(Exception):
    """An invalid service request (unknown names, bad payloads)."""


class SessionUnknown(ServeError):
    """The referenced session does not exist (or was already closed)."""


class StepTimeout(ServeError):
    """A step exhausted its wall-clock budget before its round budget.

    The session is left healthy at a round boundary (``rounds_completed``
    rounds were run); the caller can simply step again.  Mapped to HTTP
    503 + ``Retry-After`` by the ingress layer.
    """

    def __init__(
        self, session_id: str, rounds_completed: int, budget_s: float
    ) -> None:
        self.session_id = session_id
        self.rounds_completed = rounds_completed
        self.budget_s = budget_s
        super().__init__(
            f"session {session_id!r}: step exceeded its {budget_s:.3f}s "
            f"wall-clock budget after {rounds_completed} rounds "
            "(state is intact at a round boundary; step again to continue)"
        )


def _validated_backend_transport(name: Optional[str]) -> str:
    """Clamp the advertised backend transport to the known closed set.

    The value becomes a ``/metrics`` label, so it must be bounded: either
    ``"in-process"`` or a registered transport name — never free text.
    """
    from ..runtime.parallel.transport import transport_names

    allowed = ("in-process",) + transport_names()
    resolved = name if name is not None else "in-process"
    if resolved not in allowed:
        raise ServeError(
            f"unknown backend transport {resolved!r}; expected one of "
            f"{', '.join(allowed)}"
        )
    return resolved


def default_cluster_for(specification: Specification) -> Cluster:
    """A cluster with one 2-processor machine per placement location.

    Mirrors the clusters the benchmarks build by hand: every location named
    in the spec's placement comments becomes a machine, so any ``.estelle``
    source runs without the caller having to know its topology.
    """
    cluster = Cluster()
    locations = {placement.location for placement in specification.placements}
    for location in sorted(locations) or ["local"]:
        cluster.add(Machine(location, 2))
    return cluster


class Session:
    """One hosted specification instance with its private executor."""

    def __init__(
        self,
        session_id: str,
        entry: CompiledSpec,
        executor: SpecificationExecutor,
        dispatch_name: str,
    ):
        self.id = session_id
        self.entry = entry
        self.executor = executor
        self.dispatch_name = dispatch_name
        self.created_at = time.time()
        self.closed = False
        #: serialize operations on this session (sessions are independent,
        #: one session's ops are not).
        self.lock = threading.Lock()
        self._stream_cursor = 0

    # All methods below are called with ``self.lock`` held by the engine.

    def step(
        self,
        rounds: int,
        deadline: Optional[float] = None,
        budget_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        if budget_s is None or rounds <= 0:
            metrics = self.executor.run(max_rounds=rounds, deadline=deadline)
            return self.health(stop_reason=metrics.stop_reason)
        # With a wall-clock budget, run in round slices and check the clock
        # between them.  run() is documented timeslicing-safe, so slicing
        # cannot change the trace; a timeout always leaves the session at a
        # round boundary with at least one slice of progress made.
        started = time.monotonic()
        remaining = rounds
        while True:
            chunk = min(remaining, STEP_SLICE_ROUNDS)
            metrics = self.executor.run(max_rounds=chunk, deadline=deadline)
            remaining -= chunk
            if metrics.stop_reason != "budget" or remaining <= 0:
                return self.health(stop_reason=metrics.stop_reason)
            if time.monotonic() - started >= budget_s:
                raise StepTimeout(self.id, rounds - remaining, budget_s)

    def inject(
        self,
        module_path: str,
        ip_name: str,
        interaction_name: str,
        params: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        module = self.executor.specification.find(module_path)
        point = module.ips.get(ip_name)
        if point is None:
            raise ServeError(
                f"module {module_path!r} has no interaction point {ip_name!r} "
                f"(declared: {sorted(module.ips)})"
            )
        # Ingress plays the *peer* role: only interactions the peer may send
        # can arrive in this queue, the same check output() applies.
        peer_role = point.role.peer
        if not peer_role.allows(interaction_name):
            raise ServeError(
                f"{point.full_name} (role {point.role.name!r} of channel "
                f"{point.role.channel.name!r}) cannot receive "
                f"{interaction_name!r}; receivable: {sorted(peer_role.interactions)}"
            )
        point.enqueue(Interaction(interaction_name, params or {}))
        return {"queued": point.pending()}

    def stream_firings(self, since: int) -> Tuple[List[Dict[str, Any]], int]:
        events = self.executor.trace.all_firings()
        if since < 0 or since > len(events):
            raise ServeError(
                f"firing cursor {since} out of range (0..{len(events)})"
            )
        new = [
            {
                "round_index": e.round_index,
                "module_path": e.module_path,
                "transition_name": e.transition_name,
                "state_before": e.state_before,
                "state_after": e.state_after,
                "interaction_name": e.interaction_name,
                "cost": e.cost,
                "unit_id": e.unit_id,
                "machine": e.machine,
                "time": e.time,
            }
            for e in events[since:]
        ]
        return new, len(events)

    def health(self, stop_reason: Optional[str] = None) -> Dict[str, Any]:
        metrics = self.executor.metrics
        return {
            "session_id": self.id,
            "spec": self.entry.name,
            "dispatch": self.dispatch_name,
            "rounds": metrics.rounds,
            "transitions_fired": metrics.transitions_fired,
            "simulated_time": self.executor.clock.now,
            "stop_reason": stop_reason
            if stop_reason is not None
            else metrics.stop_reason,
            "quiescent": (stop_reason or metrics.stop_reason) == "quiescent",
            "deadlocked": self.executor.deadlocked,
        }


class SessionEngine:
    """Hosts and multiplexes independent protocol sessions.

    All state is per-engine (registry, sessions, pool, counters) — no
    module-level globals — so several engines can coexist in one process
    (each test gets a private one) and the whole engine is garbage once
    :meth:`shutdown` returns.
    """

    def __init__(
        self,
        registry: Optional[SpecRegistry] = None,
        workers: int = 8,
        default_dispatch: str = "planner",
        cluster_factory: Optional[Callable[[Specification], Cluster]] = None,
        mapping_factory: Optional[Callable[[], MappingStrategy]] = None,
        max_sessions: Optional[int] = None,
        obs: Optional[Observability] = None,
        state_dir: Optional[str] = None,
        step_timeout_s: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
        autopersist: bool = False,
        backend_transport: Optional[str] = None,
    ):
        self.registry = registry if registry is not None else SpecRegistry()
        #: which wire the deployment's execution backend runs over —
        #: ``"in-process"`` (the default: sessions run the in-process
        #: executor on the engine's thread pool) or a name from
        #: :func:`repro.runtime.parallel.transport_names` for deployments
        #: fronting a multiprocess mesh.  Validated against that closed set
        #: so the ``/metrics`` label stays bounded-cardinality by
        #: construction.
        self.backend_transport = _validated_backend_transport(backend_transport)
        self.default_dispatch = default_dispatch
        self.cluster_factory = cluster_factory or default_cluster_for
        self.mapping_factory = mapping_factory
        self.max_sessions = max_sessions
        self._sessions: Dict[str, Session] = {}
        self._sessions_lock = threading.Lock()
        self._serial = itertools.count(1)
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._closed = False
        self._shutting_down = False
        #: durability: a directory of per-session checkpoints.  Sessions are
        #: persisted on shutdown (and via persist_session/persist_all, or
        #: after every step with ``autopersist``) and restored on the next
        #: engine start with byte-identical trace suffixes.
        self._state_dir = Path(state_dir) if state_dir is not None else None
        self._step_timeout_s = step_timeout_s
        self._autopersist = autopersist
        #: deterministic fault injection (repro.faults): per-session typed
        #: exceptions and sink failures.  None (the default) is the
        #: zero-overhead path — nothing below ever checks it per-round.
        self._fault_plan = fault_plan if fault_plan is not None and not fault_plan.empty else None
        self._fault_calls: Dict[Tuple[str, str], int] = {}
        self._faults_lock = threading.Lock()
        self.started_at = time.time()
        #: lifetime counters for the service's own story.  These plain ints
        #: stay the single source of truth; the metric families below read
        #: them through scrape-time callbacks, so ``/stats`` and
        #: ``/metrics`` cannot drift apart.
        self.sessions_created = 0
        self.sessions_closed = 0
        self.peak_sessions = 0
        #: per-engine observability — *live* by default: the engine is the
        #: long-running service layer, exactly what wants watching.  Shared
        #: with every session's executor/planner, so executor and planner
        #: series aggregate across the whole session population.
        self._owns_obs = obs is None
        self.obs = obs if obs is not None else Observability()
        self._register_metrics()
        if self._fault_plan is not None and self._fault_plan.sink_failures:
            self.obs.events.attach(FailingSink(self._fault_plan.sink_failures))
        if self._state_dir is not None:
            self._state_dir.mkdir(parents=True, exist_ok=True)
            self._restore_sessions()

    def _register_metrics(self) -> None:
        registry = self.obs.registry
        self._h_spawn = registry.histogram(
            "repro_serve_spawn_seconds",
            "Wall-clock seconds to create one session (compile-once path).",
        )
        self._h_step = registry.histogram(
            "repro_serve_step_seconds",
            "Wall-clock seconds of one per-session step call.",
        )
        self._m_faults = registry.counter(
            "repro_resil_faults_injected_total",
            "Faults injected by the engine's FaultPlan, by kind.",
            labelnames=("kind",),
        )
        self._m_ckpt_written = registry.counter(
            "repro_resil_checkpoints_written_total",
            "Session checkpoints written to the engine's state directory.",
        )
        self._m_restored = registry.counter(
            "repro_resil_sessions_restored_total",
            "Sessions restored from the state directory at engine start.",
        )
        self._m_step_timeouts = registry.counter(
            "repro_serve_step_timeouts_total",
            "Step calls that exhausted their wall-clock budget.",
        )
        if not registry.enabled:
            return
        registry.counter(
            "repro_serve_sessions_created_total",
            "Sessions created over the engine's lifetime.",
            callback=lambda: self.sessions_created,
        )
        registry.counter(
            "repro_serve_sessions_closed_total",
            "Sessions closed over the engine's lifetime.",
            callback=lambda: self.sessions_closed,
        )
        registry.gauge(
            "repro_serve_sessions_active",
            "Sessions currently hosted.",
            callback=lambda: len(self.session_ids()),
        )
        registry.gauge(
            "repro_serve_sessions_peak",
            "Highest concurrent session population seen.",
            callback=lambda: self.peak_sessions,
        )
        # An info-style gauge: constant 1, the payload is the label.  The
        # label set is bounded by _validated_backend_transport, so scrape
        # cardinality is fixed at one series per engine.
        registry.gauge(
            "repro_serve_backend_transport",
            "The engine's configured execution-backend transport (info metric; "
            "value is always 1, the transport is the label).",
            labelnames=("transport",),
        ).labels(transport=self.backend_transport).set(1)
        registry.counter(
            "repro_serve_registry_hits_total",
            "Spec registry lookups served without recompiling.",
            callback=lambda: self.registry.hits,
        )
        registry.counter(
            "repro_serve_registry_misses_total",
            "Spec registry lookups that compiled a new entry.",
            callback=lambda: self.registry.misses,
        )
        registry.gauge(
            "repro_serve_registry_entries",
            "Distinct compiled specifications in the registry.",
            callback=lambda: len(self.registry),
        )

    # -- lifecycle ---------------------------------------------------------------

    def create_session(
        self,
        source: SpecSource,
        dispatch: Optional[str] = None,
        session_id: Optional[str] = None,
    ) -> str:
        """Spawn one session; returns its id.

        The spawn path never recompiles a previously seen Estelle source:
        the registry entry's template instantiates the module tree (O(its
        size)), and the executor reuses the entry's shared dispatch
        strategy, so per-class selector compilation also happens at most
        once per spec.
        """
        if self._closed:
            raise ServeError("engine is shut down")
        with self._h_spawn.time():
            entry = self.registry.get(source)
            dispatch_name = dispatch or self.default_dispatch
            specification = entry.instantiate()
            executor = SpecificationExecutor(
                specification,
                self.cluster_factory(specification),
                mapping=self.mapping_factory() if self.mapping_factory else None,
                dispatch=entry.dispatch_for(dispatch_name),
                trace=True,
                obs=self.obs,
            )
            with self._sessions_lock:
                if self.max_sessions is not None and len(self._sessions) >= self.max_sessions:
                    raise ServeError(
                        f"session limit reached ({self.max_sessions}); close one first"
                    )
                sid = session_id or f"s-{next(self._serial)}"
                if sid in self._sessions:
                    raise ServeError(f"session id {sid!r} already in use")
                self._sessions[sid] = Session(sid, entry, executor, dispatch_name)
                self.sessions_created += 1
                self.peak_sessions = max(self.peak_sessions, len(self._sessions))
        self.obs.events.emit(
            "session_create", session_id=sid, spec=entry.name, dispatch=dispatch_name
        )
        return sid

    def _session(self, session_id: str) -> Session:
        with self._sessions_lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise SessionUnknown(f"unknown session {session_id!r}")
        return session

    # -- durability (state_dir checkpoints) ---------------------------------------

    def _checkpoint_path(self, session_id: str) -> Path:
        assert self._state_dir is not None
        digest = hashlib.sha256(session_id.encode("utf-8")).hexdigest()[:24]
        return self._state_dir / f"{digest}.ckpt"

    def persist_session(self, session_id: str) -> str:
        """Write one session's checkpoint; returns the file path.

        The checkpoint pairs the session's :class:`SpecSource` recipe with
        an :class:`ExecutorSnapshot`, so a fresh engine can rebuild the
        compiled artefacts and resume the executor with byte-identical
        trace suffixes.  Written atomically (tmp file + rename), so a
        crash mid-write leaves the previous checkpoint intact.
        """
        if self._state_dir is None:
            raise ServeError("engine has no state directory (state_dir=None)")
        session = self._session(session_id)
        with session.lock:
            document = {
                "version": CHECKPOINT_VERSION,
                "session_id": session.id,
                "source": session.entry.source,
                "dispatch": session.dispatch_name,
                "created_at": session.created_at,
                "snapshot": session.executor.snapshot(),
            }
        path = self._checkpoint_path(session_id)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as stream:
            pickle.dump(document, stream, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        self._m_ckpt_written.inc()
        self.obs.events.emit(
            "session_checkpoint", session_id=session_id, path=str(path)
        )
        return str(path)

    def persist_all(self) -> List[str]:
        """Checkpoint every live session; returns the written paths."""
        paths: List[str] = []
        for sid in self.session_ids():
            try:
                paths.append(self.persist_session(sid))
            except SessionUnknown:
                pass  # closed concurrently — nothing to persist
        return paths

    def _restore_sessions(self) -> None:
        """Rehydrate sessions from the state directory (engine start).

        Per-file failure isolation: an unreadable or stale checkpoint is
        reported as a ``session_restore_failed`` event and skipped — one
        corrupt file must not take the whole service down.
        """
        assert self._state_dir is not None
        restored_serials: List[int] = []
        for path in sorted(self._state_dir.glob("*.ckpt")):
            try:
                with open(path, "rb") as stream:
                    document = pickle.load(stream)
                version = document.get("version")
                if version != CHECKPOINT_VERSION:
                    raise ServeError(
                        f"unsupported checkpoint version {version!r}"
                    )
                sid = document["session_id"]
                dispatch_name = document["dispatch"]
                entry = self.registry.get(document["source"])
                specification = entry.instantiate()
                executor = SpecificationExecutor(
                    specification,
                    self.cluster_factory(specification),
                    mapping=self.mapping_factory() if self.mapping_factory else None,
                    dispatch=entry.dispatch_for(dispatch_name),
                    trace=True,
                    obs=self.obs,
                )
                executor.restore(document["snapshot"])
            except Exception as exc:
                self.obs.events.emit(
                    "session_restore_failed",
                    path=str(path),
                    error=f"{type(exc).__name__}: {exc}",
                )
                continue
            session = Session(sid, entry, executor, dispatch_name)
            session.created_at = document["created_at"]
            with self._sessions_lock:
                if sid in self._sessions:
                    continue  # duplicate checkpoint — first one wins
                self._sessions[sid] = session
                self.sessions_created += 1
                self.peak_sessions = max(self.peak_sessions, len(self._sessions))
            match = _SERIAL_SID.match(sid)
            if match:
                restored_serials.append(int(match.group(1)))
            self._m_restored.inc()
            self.obs.events.emit(
                "session_restore",
                session_id=sid,
                spec=entry.name,
                dispatch=dispatch_name,
            )
        if restored_serials:
            # Never hand out an id a restored session already holds.
            self._serial = itertools.count(max(restored_serials) + 1)

    # -- fault injection (repro.faults) -------------------------------------------

    def _maybe_inject(self, session_id: str, op: str) -> None:
        """Raise the scheduled :class:`InjectedFault` for (session, op), if any.

        Counts calls per (session, op) so ``call_index`` selects exactly one
        occurrence; with no fault plan this method is never called.
        """
        assert self._fault_plan is not None
        with self._faults_lock:
            count = self._fault_calls.get((session_id, op), 0) + 1
            self._fault_calls[(session_id, op)] = count
        for fault in self._fault_plan.session_faults:
            if (
                fault.session_id == session_id
                and fault.op == op
                and fault.call_index == count
            ):
                self._m_faults.labels(kind="session").inc()
                self.obs.events.emit(
                    "fault_injected",
                    fault_kind="session",
                    session_id=session_id,
                    op=op,
                    call_index=count,
                )
                raise InjectedFault(fault.message)

    def close_session(self, session_id: str) -> Dict[str, Any]:
        """Retire a session; returns its final health record."""
        with self._sessions_lock:
            session = self._sessions.pop(session_id, None)
            if session is not None:
                self.sessions_closed += 1
        if session is None:
            raise SessionUnknown(f"unknown session {session_id!r}")
        if self._state_dir is not None and not self._shutting_down:
            # An explicitly closed session is finished — its checkpoint must
            # not resurrect it on the next start.  (Shutdown-time closes keep
            # theirs: that's the durability path.)
            try:
                self._checkpoint_path(session_id).unlink(missing_ok=True)
            except OSError:
                pass
        with session.lock:
            session.closed = True
            final = session.health()
        self.obs.events.emit(
            "session_close",
            session_id=session_id,
            spec=session.entry.name,
            rounds=final["rounds"],
            stop_reason=final["stop_reason"],
        )
        return final

    # -- per-session operations --------------------------------------------------

    def step(
        self,
        session_id: str,
        rounds: int = 1,
        deadline: Optional[float] = None,
        timeout_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Run up to ``rounds`` rounds (optionally until a simulated-time
        deadline); returns the session's health including ``stop_reason``.

        ``timeout_s`` (or the engine-wide ``step_timeout_s``) bounds the
        call's wall-clock time: on expiry :class:`StepTimeout` is raised
        with the session intact at a round boundary.
        """
        if rounds < 0:
            raise ServeError(f"rounds must be >= 0, got {rounds}")
        if self._fault_plan is not None:
            self._maybe_inject(session_id, "step")
        session = self._session(session_id)
        budget = timeout_s if timeout_s is not None else self._step_timeout_s
        try:
            with session.lock, self._h_step.time():
                health = session.step(rounds, deadline=deadline, budget_s=budget)
        except StepTimeout as exc:
            self._m_step_timeouts.inc()
            self.obs.events.emit(
                "step_timeout",
                session_id=session_id,
                rounds_completed=exc.rounds_completed,
                budget_s=exc.budget_s,
            )
            raise
        if self._autopersist and self._state_dir is not None:
            self.persist_session(session_id)
        return health

    def run_to_quiescence(
        self, session_id: str, max_rounds: int = 10_000
    ) -> Dict[str, Any]:
        return self.step(session_id, rounds=max_rounds)

    def inject(
        self,
        session_id: str,
        module_path: str,
        ip_name: str,
        interaction_name: str,
        params: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Enqueue an interaction at a module's interaction point (ingress)."""
        if self._fault_plan is not None:
            self._maybe_inject(session_id, "inject")
        session = self._session(session_id)
        with session.lock:
            return session.inject(module_path, ip_name, interaction_name, params)

    def stream_firings(
        self, session_id: str, since: int = 0
    ) -> Tuple[List[Dict[str, Any]], int]:
        """Firing events after cursor ``since``; returns (events, new cursor)."""
        session = self._session(session_id)
        with session.lock:
            return session.stream_firings(since)

    def health(self, session_id: str) -> Dict[str, Any]:
        session = self._session(session_id)
        with session.lock:
            return session.health()

    # -- fan-out -----------------------------------------------------------------

    def step_all(
        self,
        session_ids: Optional[Sequence[str]] = None,
        rounds: int = 1,
        deadline: Optional[float] = None,
    ) -> Dict[str, Dict[str, Any]]:
        """Step many sessions concurrently over the worker pool.

        Returns {session_id: health}.  Sessions closed mid-flight by another
        caller are skipped rather than failed: a supervisor sweeping all
        sessions should not race session teardown.  A session whose step
        *raises* yields an ``{"session_id": ..., "error": ...}`` record
        instead — one failing session neither hides the others' results
        nor poisons the pool.
        """
        if session_ids is None:
            with self._sessions_lock:
                session_ids = list(self._sessions)

        def _one(sid: str) -> Optional[Dict[str, Any]]:
            try:
                return self.step(sid, rounds=rounds, deadline=deadline)
            except SessionUnknown:
                return None
            except Exception as exc:
                return {
                    "session_id": sid,
                    "error": f"{type(exc).__name__}: {exc}",
                }

        results = list(self._pool.map(_one, session_ids))
        return {
            sid: health
            for sid, health in zip(session_ids, results)
            if health is not None
        }

    def session_ids(self) -> List[str]:
        with self._sessions_lock:
            return list(self._sessions)

    # -- service-level introspection ---------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """The service's stats document (shape pinned by ``test_serve_api``).

        Every number here is a *view* over the same state the metric
        families scrape — the counters read these attributes through
        callbacks, so this dict and ``/metrics`` cannot disagree.
        """
        with self._sessions_lock:
            active = len(self._sessions)
        return {
            "active_sessions": active,
            "peak_sessions": self.peak_sessions,
            "sessions_created": self.sessions_created,
            "sessions_closed": self.sessions_closed,
            "uptime_seconds": time.time() - self.started_at,
            "backend_transport": self.backend_transport,
            "registry": self.registry.stats(),
            "plan_code_cache": plan_code_cache_info(),
            "obs": self.obs.stats(),
        }

    def shutdown(self) -> Dict[str, Any]:
        """Close every session and stop the pool; returns final stats.

        Order matters: sessions are checkpointed *before* being closed (so
        a state_dir engine restarts where it left off), and the event bus
        is flushed — and closed, when the engine owns its observability —
        *after* the pool drains, so a tailing JSONL sink holds every
        lifecycle event up to and including the closes.
        """
        if self._state_dir is not None and not self._closed:
            self.persist_all()
        self._shutting_down = True
        with self._sessions_lock:
            remaining = list(self._sessions)
        for sid in remaining:
            try:
                self.close_session(sid)
            except SessionUnknown:
                pass
        self._closed = True
        self._pool.shutdown(wait=True)
        self.obs.events.flush()
        stats = self.stats()
        if self._owns_obs:
            self.obs.events.close()
        return stats

    # -- context manager ----------------------------------------------------------

    def __enter__(self) -> "SessionEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
