"""The session engine: N independent spec instances behind one service.

Each :class:`Session` owns a full, private execution stack — specification
instance, :class:`~repro.runtime.executor.SpecificationExecutor`, simulated
clock, dirty tracker, trace — built from the compile-once registry
(:mod:`repro.serve.registry`), so spawning a session never re-runs the
front-end.  Sessions are mutually invisible: the only shared objects are
immutable-after-build per-class artefacts (module classes, compiled
selectors, planner code objects), which is what makes the isolation
contract hold — stepping sessions interleaved yields, per session, the
byte-identical canonical trace a sequential run yields.

Concurrency model
-----------------

Operations on one session are serialized by the session's lock; different
sessions proceed independently.  :meth:`SessionEngine.step_all` fans a
step over the engine's thread pool (one task per session) — the idiom for
driving thousands of sessions a timeslice at a time.  Threads (not
processes) are the right pool here: sessions share the per-class compiled
artefacts, and a session step is dominated by the Python round loop which
interleaves fairly under the GIL; the multiprocess axis is ROADMAP item 3.

Lifecycle
---------

::

    engine = SessionEngine()
    sid = engine.create_session(SpecSource.from_estelle_file(path))
    engine.inject(sid, "alice", "ctl", "CallAccept")      # optional ingress
    engine.step(sid, rounds=50)                           # -> health dict
    events, cursor = engine.stream_firings(sid, since=0)  # firing stream
    engine.close_session(sid)                             # -> final stats
    engine.shutdown()

``step`` reports the executor's honest ``stop_reason`` ("quiescent" |
"budget" | "deadline"), so a supervisor can distinguish a finished call
from one that merely exhausted its timeslice.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..estelle.interaction import Interaction
from ..estelle.specification import Specification
from ..obs import Observability
from ..runtime.executor import SpecSource, SpecificationExecutor
from ..runtime.mapping import MappingStrategy
from ..runtime.planner import plan_code_cache_info
from ..sim.machine import Cluster, Machine
from .registry import CompiledSpec, SpecRegistry


class ServeError(Exception):
    """An invalid service request (unknown names, bad payloads)."""


class SessionUnknown(ServeError):
    """The referenced session does not exist (or was already closed)."""


def default_cluster_for(specification: Specification) -> Cluster:
    """A cluster with one 2-processor machine per placement location.

    Mirrors the clusters the benchmarks build by hand: every location named
    in the spec's placement comments becomes a machine, so any ``.estelle``
    source runs without the caller having to know its topology.
    """
    cluster = Cluster()
    locations = {placement.location for placement in specification.placements}
    for location in sorted(locations) or ["local"]:
        cluster.add(Machine(location, 2))
    return cluster


class Session:
    """One hosted specification instance with its private executor."""

    def __init__(
        self,
        session_id: str,
        entry: CompiledSpec,
        executor: SpecificationExecutor,
        dispatch_name: str,
    ):
        self.id = session_id
        self.entry = entry
        self.executor = executor
        self.dispatch_name = dispatch_name
        self.created_at = time.time()
        self.closed = False
        #: serialize operations on this session (sessions are independent,
        #: one session's ops are not).
        self.lock = threading.Lock()
        self._stream_cursor = 0

    # All methods below are called with ``self.lock`` held by the engine.

    def step(
        self,
        rounds: int,
        deadline: Optional[float] = None,
    ) -> Dict[str, Any]:
        metrics = self.executor.run(max_rounds=rounds, deadline=deadline)
        return self.health(stop_reason=metrics.stop_reason)

    def inject(
        self,
        module_path: str,
        ip_name: str,
        interaction_name: str,
        params: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        module = self.executor.specification.find(module_path)
        point = module.ips.get(ip_name)
        if point is None:
            raise ServeError(
                f"module {module_path!r} has no interaction point {ip_name!r} "
                f"(declared: {sorted(module.ips)})"
            )
        # Ingress plays the *peer* role: only interactions the peer may send
        # can arrive in this queue, the same check output() applies.
        peer_role = point.role.peer
        if not peer_role.allows(interaction_name):
            raise ServeError(
                f"{point.full_name} (role {point.role.name!r} of channel "
                f"{point.role.channel.name!r}) cannot receive "
                f"{interaction_name!r}; receivable: {sorted(peer_role.interactions)}"
            )
        point.enqueue(Interaction(interaction_name, params or {}))
        return {"queued": point.pending()}

    def stream_firings(self, since: int) -> Tuple[List[Dict[str, Any]], int]:
        events = self.executor.trace.all_firings()
        if since < 0 or since > len(events):
            raise ServeError(
                f"firing cursor {since} out of range (0..{len(events)})"
            )
        new = [
            {
                "round_index": e.round_index,
                "module_path": e.module_path,
                "transition_name": e.transition_name,
                "state_before": e.state_before,
                "state_after": e.state_after,
                "interaction_name": e.interaction_name,
                "cost": e.cost,
                "unit_id": e.unit_id,
                "machine": e.machine,
                "time": e.time,
            }
            for e in events[since:]
        ]
        return new, len(events)

    def health(self, stop_reason: Optional[str] = None) -> Dict[str, Any]:
        metrics = self.executor.metrics
        return {
            "session_id": self.id,
            "spec": self.entry.name,
            "dispatch": self.dispatch_name,
            "rounds": metrics.rounds,
            "transitions_fired": metrics.transitions_fired,
            "simulated_time": self.executor.clock.now,
            "stop_reason": stop_reason
            if stop_reason is not None
            else metrics.stop_reason,
            "quiescent": (stop_reason or metrics.stop_reason) == "quiescent",
            "deadlocked": self.executor.deadlocked,
        }


class SessionEngine:
    """Hosts and multiplexes independent protocol sessions.

    All state is per-engine (registry, sessions, pool, counters) — no
    module-level globals — so several engines can coexist in one process
    (each test gets a private one) and the whole engine is garbage once
    :meth:`shutdown` returns.
    """

    def __init__(
        self,
        registry: Optional[SpecRegistry] = None,
        workers: int = 8,
        default_dispatch: str = "planner",
        cluster_factory: Optional[Callable[[Specification], Cluster]] = None,
        mapping_factory: Optional[Callable[[], MappingStrategy]] = None,
        max_sessions: Optional[int] = None,
        obs: Optional[Observability] = None,
    ):
        self.registry = registry if registry is not None else SpecRegistry()
        self.default_dispatch = default_dispatch
        self.cluster_factory = cluster_factory or default_cluster_for
        self.mapping_factory = mapping_factory
        self.max_sessions = max_sessions
        self._sessions: Dict[str, Session] = {}
        self._sessions_lock = threading.Lock()
        self._serial = itertools.count(1)
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._closed = False
        self.started_at = time.time()
        #: lifetime counters for the service's own story.  These plain ints
        #: stay the single source of truth; the metric families below read
        #: them through scrape-time callbacks, so ``/stats`` and
        #: ``/metrics`` cannot drift apart.
        self.sessions_created = 0
        self.sessions_closed = 0
        self.peak_sessions = 0
        #: per-engine observability — *live* by default: the engine is the
        #: long-running service layer, exactly what wants watching.  Shared
        #: with every session's executor/planner, so executor and planner
        #: series aggregate across the whole session population.
        self.obs = obs if obs is not None else Observability()
        self._register_metrics()

    def _register_metrics(self) -> None:
        registry = self.obs.registry
        self._h_spawn = registry.histogram(
            "repro_serve_spawn_seconds",
            "Wall-clock seconds to create one session (compile-once path).",
        )
        self._h_step = registry.histogram(
            "repro_serve_step_seconds",
            "Wall-clock seconds of one per-session step call.",
        )
        if not registry.enabled:
            return
        registry.counter(
            "repro_serve_sessions_created_total",
            "Sessions created over the engine's lifetime.",
            callback=lambda: self.sessions_created,
        )
        registry.counter(
            "repro_serve_sessions_closed_total",
            "Sessions closed over the engine's lifetime.",
            callback=lambda: self.sessions_closed,
        )
        registry.gauge(
            "repro_serve_sessions_active",
            "Sessions currently hosted.",
            callback=lambda: len(self.session_ids()),
        )
        registry.gauge(
            "repro_serve_sessions_peak",
            "Highest concurrent session population seen.",
            callback=lambda: self.peak_sessions,
        )
        registry.counter(
            "repro_serve_registry_hits_total",
            "Spec registry lookups served without recompiling.",
            callback=lambda: self.registry.hits,
        )
        registry.counter(
            "repro_serve_registry_misses_total",
            "Spec registry lookups that compiled a new entry.",
            callback=lambda: self.registry.misses,
        )
        registry.gauge(
            "repro_serve_registry_entries",
            "Distinct compiled specifications in the registry.",
            callback=lambda: len(self.registry),
        )

    # -- lifecycle ---------------------------------------------------------------

    def create_session(
        self,
        source: SpecSource,
        dispatch: Optional[str] = None,
        session_id: Optional[str] = None,
    ) -> str:
        """Spawn one session; returns its id.

        The spawn path never recompiles a previously seen Estelle source:
        the registry entry's template instantiates the module tree (O(its
        size)), and the executor reuses the entry's shared dispatch
        strategy, so per-class selector compilation also happens at most
        once per spec.
        """
        if self._closed:
            raise ServeError("engine is shut down")
        with self._h_spawn.time():
            entry = self.registry.get(source)
            dispatch_name = dispatch or self.default_dispatch
            specification = entry.instantiate()
            executor = SpecificationExecutor(
                specification,
                self.cluster_factory(specification),
                mapping=self.mapping_factory() if self.mapping_factory else None,
                dispatch=entry.dispatch_for(dispatch_name),
                trace=True,
                obs=self.obs,
            )
            with self._sessions_lock:
                if self.max_sessions is not None and len(self._sessions) >= self.max_sessions:
                    raise ServeError(
                        f"session limit reached ({self.max_sessions}); close one first"
                    )
                sid = session_id or f"s-{next(self._serial)}"
                if sid in self._sessions:
                    raise ServeError(f"session id {sid!r} already in use")
                self._sessions[sid] = Session(sid, entry, executor, dispatch_name)
                self.sessions_created += 1
                self.peak_sessions = max(self.peak_sessions, len(self._sessions))
        self.obs.events.emit(
            "session_create", session_id=sid, spec=entry.name, dispatch=dispatch_name
        )
        return sid

    def _session(self, session_id: str) -> Session:
        with self._sessions_lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise SessionUnknown(f"unknown session {session_id!r}")
        return session

    def close_session(self, session_id: str) -> Dict[str, Any]:
        """Retire a session; returns its final health record."""
        with self._sessions_lock:
            session = self._sessions.pop(session_id, None)
            if session is not None:
                self.sessions_closed += 1
        if session is None:
            raise SessionUnknown(f"unknown session {session_id!r}")
        with session.lock:
            session.closed = True
            final = session.health()
        self.obs.events.emit(
            "session_close",
            session_id=session_id,
            spec=session.entry.name,
            rounds=final["rounds"],
            stop_reason=final["stop_reason"],
        )
        return final

    # -- per-session operations --------------------------------------------------

    def step(
        self,
        session_id: str,
        rounds: int = 1,
        deadline: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Run up to ``rounds`` rounds (optionally until a simulated-time
        deadline); returns the session's health including ``stop_reason``."""
        if rounds < 0:
            raise ServeError(f"rounds must be >= 0, got {rounds}")
        session = self._session(session_id)
        with session.lock, self._h_step.time():
            return session.step(rounds, deadline=deadline)

    def run_to_quiescence(
        self, session_id: str, max_rounds: int = 10_000
    ) -> Dict[str, Any]:
        return self.step(session_id, rounds=max_rounds)

    def inject(
        self,
        session_id: str,
        module_path: str,
        ip_name: str,
        interaction_name: str,
        params: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Enqueue an interaction at a module's interaction point (ingress)."""
        session = self._session(session_id)
        with session.lock:
            return session.inject(module_path, ip_name, interaction_name, params)

    def stream_firings(
        self, session_id: str, since: int = 0
    ) -> Tuple[List[Dict[str, Any]], int]:
        """Firing events after cursor ``since``; returns (events, new cursor)."""
        session = self._session(session_id)
        with session.lock:
            return session.stream_firings(since)

    def health(self, session_id: str) -> Dict[str, Any]:
        session = self._session(session_id)
        with session.lock:
            return session.health()

    # -- fan-out -----------------------------------------------------------------

    def step_all(
        self,
        session_ids: Optional[Sequence[str]] = None,
        rounds: int = 1,
        deadline: Optional[float] = None,
    ) -> Dict[str, Dict[str, Any]]:
        """Step many sessions concurrently over the worker pool.

        Returns {session_id: health}.  Sessions closed mid-flight by another
        caller are skipped rather than failed: a supervisor sweeping all
        sessions should not race session teardown.
        """
        if session_ids is None:
            with self._sessions_lock:
                session_ids = list(self._sessions)

        def _one(sid: str) -> Optional[Dict[str, Any]]:
            try:
                return self.step(sid, rounds=rounds, deadline=deadline)
            except SessionUnknown:
                return None

        results = list(self._pool.map(_one, session_ids))
        return {
            sid: health
            for sid, health in zip(session_ids, results)
            if health is not None
        }

    def session_ids(self) -> List[str]:
        with self._sessions_lock:
            return list(self._sessions)

    # -- service-level introspection ---------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """The service's stats document (shape pinned by ``test_serve_api``).

        Every number here is a *view* over the same state the metric
        families scrape — the counters read these attributes through
        callbacks, so this dict and ``/metrics`` cannot disagree.
        """
        with self._sessions_lock:
            active = len(self._sessions)
        return {
            "active_sessions": active,
            "peak_sessions": self.peak_sessions,
            "sessions_created": self.sessions_created,
            "sessions_closed": self.sessions_closed,
            "uptime_seconds": time.time() - self.started_at,
            "registry": self.registry.stats(),
            "plan_code_cache": plan_code_cache_info(),
            "obs": self.obs.stats(),
        }

    def shutdown(self) -> Dict[str, Any]:
        """Close every session and stop the pool; returns final stats."""
        with self._sessions_lock:
            remaining = list(self._sessions)
        for sid in remaining:
            try:
                self.close_session(sid)
            except SessionUnknown:
                pass
        self._closed = True
        self._pool.shutdown(wait=True)
        return self.stats()

    # -- context manager ----------------------------------------------------------

    def __enter__(self) -> "SessionEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
