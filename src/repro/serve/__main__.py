"""CLI for the session service: serve over HTTP, or run the smoke self-check.

Serve (the deployment entrypoint — the Dockerfile runs exactly this)::

    PYTHONPATH=src python -m repro.serve --host 0.0.0.0 --port 8070

Smoke mode (what the ``serve-smoke`` CI job runs): boot an engine, spawn N
sessions of one spec, step them interleaved to quiescence, and assert

* the registry compiled the source exactly once (compile-once contract),
* every session's canonical trace is byte-identical to a sequential
  reference run of the same source (isolation contract),
* shutdown leaves zero active sessions (clean-teardown contract).

::

    PYTHONPATH=src python -m repro.serve --smoke 50 \
        --spec examples/specs/mcam_sessions.estelle
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

DEFAULT_SPEC = str(
    Path(__file__).resolve().parents[3]
    / "examples"
    / "specs"
    / "mcam_sessions.estelle"
)


def smoke(spec_path: str, sessions: int, dispatch: str, rounds_per_slice: int) -> int:
    from ..runtime.executor import SpecSource
    from ..runtime.parallel.trace import canonical_trace_bytes, trace_diff
    from .engine import SessionEngine

    source = SpecSource.from_estelle_file(spec_path)

    # Sequential reference: one session, run to quiescence on its own engine.
    with SessionEngine(default_dispatch=dispatch) as reference_engine:
        ref_id = reference_engine.create_session(source)
        reference_engine.run_to_quiescence(ref_id)
        reference_trace = reference_engine._session(ref_id).executor.trace
        reference_bytes = canonical_trace_bytes(reference_trace)

    engine = SessionEngine(default_dispatch=dispatch)
    started = time.perf_counter()
    ids = [engine.create_session(source) for _ in range(sessions)]
    spawn_seconds = time.perf_counter() - started

    # Interleave: timeslice every session until all report quiescence.
    live = set(ids)
    sweeps = 0
    while live:
        sweeps += 1
        for sid, health in engine.step_all(sorted(live), rounds=rounds_per_slice).items():
            if health["stop_reason"] == "quiescent":
                live.discard(sid)

    divergent = []
    for sid in ids:
        trace = engine._session(sid).executor.trace
        if canonical_trace_bytes(trace) != reference_bytes:
            divergent.append((sid, trace_diff(reference_trace, trace)))

    entry_stats = engine.registry.stats()["specs"][0]
    stats = engine.shutdown()

    print(
        f"serve-smoke: {sessions} sessions of {Path(spec_path).name!r} "
        f"({dispatch} dispatch) spawned in {spawn_seconds * 1e3:.1f} ms, "
        f"interleaved to quiescence in {sweeps} sweeps"
    )
    print(
        f"  registry: compile_count={entry_stats['compile_count']}, "
        f"instantiations={entry_stats['instantiations']}; "
        f"peak_sessions={stats['peak_sessions']}, "
        f"active_after_shutdown={stats['active_sessions']}"
    )

    failures = []
    if entry_stats["compile_count"] != 1:
        failures.append(
            f"compile-once violated: compile_count={entry_stats['compile_count']}"
        )
    if divergent:
        sid, diff = divergent[0]
        failures.append(
            f"{len(divergent)} session trace(s) diverged from the sequential "
            f"reference; first ({sid}): {diff}"
        )
    if stats["active_sessions"] != 0:
        failures.append(
            f"unclean shutdown: {stats['active_sessions']} sessions still active"
        )
    for failure in failures:
        print(f"  FAIL: {failure}")
    if not failures:
        print("  all sessions byte-identical to the reference; clean shutdown")
    return 1 if failures else 0


def serve(
    host: str,
    port: int,
    verbose: bool,
    state_dir=None,
    max_inflight=None,
    max_body_bytes=None,
    step_timeout_s=None,
    backend_transport=None,
) -> int:
    from .api import DEFAULT_MAX_BODY_BYTES, make_http_server
    from .engine import SessionEngine

    engine = SessionEngine(
        state_dir=state_dir,
        step_timeout_s=step_timeout_s,
        backend_transport=backend_transport,
    )
    restored = engine.session_ids()
    server = make_http_server(
        host=host,
        port=port,
        engine=engine,
        verbose=verbose,
        max_inflight=max_inflight,
        max_body_bytes=(
            max_body_bytes if max_body_bytes is not None else DEFAULT_MAX_BODY_BYTES
        ),
    )
    if restored:
        print(f"repro.serve restored {len(restored)} session(s) from {state_dir}")
    print(f"repro.serve listening on http://{host}:{server.port} (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.api.engine.shutdown()
        server.server_close()
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=8070, help="bind port")
    parser.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    parser.add_argument(
        "--smoke",
        type=int,
        metavar="N",
        help="run the N-session self-check instead of serving",
    )
    parser.add_argument(
        "--spec", default=DEFAULT_SPEC, help="spec for --smoke sessions"
    )
    parser.add_argument(
        "--dispatch", default="planner", help="dispatch strategy for --smoke"
    )
    parser.add_argument(
        "--rounds-per-slice",
        type=int,
        default=7,
        help="rounds per interleaving timeslice in --smoke",
    )
    parser.add_argument(
        "--state-dir",
        default=None,
        help="directory for session checkpoints (persist on shutdown, "
        "restore on start)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        metavar="N",
        help="shed POST requests beyond N in flight with HTTP 429",
    )
    parser.add_argument(
        "--max-body-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="refuse request bodies larger than BYTES with HTTP 413 "
        "(default 1 MiB)",
    )
    parser.add_argument(
        "--step-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per step call (exceeding it returns HTTP 503)",
    )
    parser.add_argument(
        "--backend-transport",
        default=None,
        metavar="NAME",
        help="advertise the deployment's execution-backend transport in "
        "/stats and /metrics: in-process (default), mp-queue or tcp",
    )
    args = parser.parse_args(argv)

    if args.smoke is not None:
        return smoke(args.spec, args.smoke, args.dispatch, args.rounds_per_slice)
    return serve(
        args.host,
        args.port,
        args.verbose,
        state_dir=args.state_dir,
        max_inflight=args.max_inflight,
        max_body_bytes=args.max_body_bytes,
        step_timeout_s=args.step_timeout,
        backend_transport=args.backend_transport,
    )


if __name__ == "__main__":
    sys.exit(main())
