"""Ingress for the session engine: in-process dict API + HTTP/JSON front.

Two layers share one request vocabulary:

* :class:`ServeAPI` — a dict-in/dict-out facade over
  :class:`~repro.serve.engine.SessionEngine`.  Everything it accepts and
  returns is JSON-serialisable, so in-process callers, the HTTP handler
  and the CLI all speak the same protocol.
* :func:`make_http_server` / :class:`ServeHTTPServer` — a minimal
  stdlib-only (:mod:`http.server`) threading HTTP server exposing the API:

  ========  ============================== =================================
  method    path                           body / query
  ========  ============================== =================================
  GET       /healthz                       —
  GET       /stats                         —
  GET       /metrics                       — (Prometheus text exposition)
  POST      /sessions                      {"spec_text" | "spec_path",
                                            "dispatch"?, "session_id"?}
  GET       /sessions                      —
  GET       /sessions/{id}                 —
  POST      /sessions/{id}/step            {"rounds"?, "deadline"?}
  POST      /sessions/{id}/interactions    {"module", "ip", "interaction",
                                            "params"?}
  GET       /sessions/{id}/firings         ?since=N
  DELETE    /sessions/{id}                 —
  ========  ============================== =================================

Errors map to JSON bodies ``{"error": ...}``: 404 for unknown sessions,
400 for invalid requests, 413 when a declared body exceeds the cap, 429
(+ ``Retry-After``) when the in-flight admission gate sheds a request,
and 503 (+ ``Retry-After``) when a step exhausts its wall-clock budget.
The server binds 127.0.0.1 by default — it is a deployment artefact for
the compose file, not an authenticated public endpoint.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..obs import CONTENT_TYPE as METRICS_CONTENT_TYPE
from ..runtime.executor import SpecSource
from .engine import ServeError, SessionEngine, SessionUnknown, StepTimeout

#: default request-body cap for the HTTP front (1 MiB).
DEFAULT_MAX_BODY_BYTES = 1 << 20


class PayloadTooLarge(ServeError):
    """The request body exceeds the configured cap (HTTP 413)."""


class Overloaded(ServeError):
    """Too many requests already in flight — shed, retry later (HTTP 429)."""

    def __init__(self, retry_after_s: float = 1.0) -> None:
        self.retry_after_s = retry_after_s
        super().__init__(
            "service is at its in-flight request limit; "
            f"retry after {retry_after_s:g}s"
        )


class ServeAPI:
    """JSON-friendly facade over a :class:`SessionEngine`."""

    def __init__(self, engine: Optional[SessionEngine] = None):
        self.engine = engine if engine is not None else SessionEngine()
        self._m_http = self.engine.obs.registry.counter(
            "repro_serve_http_requests_total",
            "HTTP requests by method, route template and status.",
            labelnames=("method", "route", "status"),
        )
        self._m_shed = self.engine.obs.registry.counter(
            "repro_serve_requests_shed_total",
            "Requests rejected by the in-flight admission gate (HTTP 429).",
        )

    def note_request(self, method: str, route: str, status: int) -> None:
        """Count one HTTP request (route is the template, not the raw path,
        so series cardinality stays bounded by the route table)."""
        self._m_http.labels(method=method, route=route, status=str(status)).inc()

    def note_shed(self) -> None:
        """Count one request rejected by the admission gate."""
        self._m_shed.inc()

    # -- requests ----------------------------------------------------------------

    def create_session(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        spec_text = payload.get("spec_text")
        spec_path = payload.get("spec_path")
        if (spec_text is None) == (spec_path is None):
            raise ServeError(
                "provide exactly one of 'spec_text' or 'spec_path'"
            )
        if spec_text is not None:
            source = SpecSource.from_estelle_text(
                spec_text, filename=payload.get("filename", "<http>")
            )
        else:
            source = SpecSource.from_estelle_file(spec_path)
        session_id = self.engine.create_session(
            source,
            dispatch=payload.get("dispatch"),
            session_id=payload.get("session_id"),
        )
        return {"session_id": session_id}

    def step(self, session_id: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        rounds = payload.get("rounds", 1)
        deadline = payload.get("deadline")
        if not isinstance(rounds, int):
            raise ServeError(f"'rounds' must be an integer, got {rounds!r}")
        if deadline is not None and not isinstance(deadline, (int, float)):
            raise ServeError(f"'deadline' must be a number, got {deadline!r}")
        return self.engine.step(session_id, rounds=rounds, deadline=deadline)

    def inject(self, session_id: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        try:
            module = payload["module"]
            ip_name = payload["ip"]
            interaction = payload["interaction"]
        except KeyError as exc:
            raise ServeError(f"missing required field {exc.args[0]!r}") from None
        params = payload.get("params") or {}
        if not isinstance(params, dict):
            raise ServeError(f"'params' must be an object, got {params!r}")
        return self.engine.inject(session_id, module, ip_name, interaction, params)

    def firings(self, session_id: str, since: int) -> Dict[str, Any]:
        events, cursor = self.engine.stream_firings(session_id, since=since)
        return {"events": events, "cursor": cursor}

    def health(self, session_id: str) -> Dict[str, Any]:
        return self.engine.health(session_id)

    def close_session(self, session_id: str) -> Dict[str, Any]:
        return self.engine.close_session(session_id)

    def sessions(self) -> Dict[str, Any]:
        return {"sessions": self.engine.session_ids()}

    def stats(self) -> Dict[str, Any]:
        return self.engine.stats()

    def metrics(self) -> str:
        """The engine's registry as Prometheus text exposition."""
        return self.engine.obs.render()

    def healthz(self) -> Dict[str, Any]:
        stats = self.engine.stats()
        return {
            "status": "ok",
            "active_sessions": stats["active_sessions"],
            "uptime_seconds": stats["uptime_seconds"],
        }


_SESSION_ROUTE = re.compile(
    r"^/sessions/(?P<sid>[^/]+)(?:/(?P<verb>step|interactions|firings))?$"
)


def _route_template(path: str) -> str:
    """Collapse a request path onto its route template (bounded label set)."""
    if path in ("/healthz", "/stats", "/metrics", "/sessions"):
        return path
    match = _SESSION_ROUTE.match(path)
    if match:
        verb = match.group("verb")
        return f"/sessions/{{id}}/{verb}" if verb else "/sessions/{id}"
    return "<unmatched>"


class _Handler(BaseHTTPRequestHandler):
    """Route HTTP verbs onto the :class:`ServeAPI` attached to the server."""

    server: "ServeHTTPServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        if self.server.verbose:
            super().log_message(format, *args)

    def _reply(
        self,
        status: int,
        document: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self._reply_bytes(
            status,
            json.dumps(document).encode("utf-8"),
            "application/json",
            headers=headers,
        )

    def _reply_text(self, status: int, text: str, content_type: str) -> None:
        self._reply_bytes(status, text.encode("utf-8"), content_type)

    def _reply_bytes(
        self,
        status: int,
        body: bytes,
        content_type: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _payload(self) -> Dict[str, Any]:
        raw = self.headers.get("Content-Length")
        if raw is None:
            return {}
        try:
            length = int(raw)
        except ValueError:
            raise ServeError(f"invalid Content-Length header {raw!r}") from None
        if length < 0:
            raise ServeError(f"invalid Content-Length header {raw!r}")
        if length == 0:
            return {}
        limit = self.server.max_body_bytes
        if limit is not None and length > limit:
            # The body is deliberately left unread: with the cap declared up
            # front we refuse before buffering, and close the connection so
            # HTTP/1.1 framing cannot desynchronise on the unread bytes.
            self.close_connection = True
            raise PayloadTooLarge(
                f"request body of {length} bytes exceeds the "
                f"{limit}-byte limit"
            )
        try:
            document = json.loads(self.rfile.read(length).decode("utf-8"))
        except json.JSONDecodeError as exc:
            raise ServeError(f"invalid JSON body: {exc}") from None
        if not isinstance(document, dict):
            raise ServeError("request body must be a JSON object")
        return document

    def _dispatch(self, handler, gated: bool = False) -> None:
        """Run one routed request under the error → status-code mapping.

        ``gated`` routes (the work-creating POSTs) pass the server's
        admission gate first: if the in-flight limit is reached the request
        is shed immediately with 429 + ``Retry-After`` — bounded queueing
        beats unbounded thread pile-up when callers outpace the engine.
        """
        gate = self.server.gate if gated else None
        admitted = True
        if gate is not None:
            admitted = gate.acquire(blocking=False)
        if not admitted:
            self.server.api.note_shed()
            exc = Overloaded(self.server.retry_after_s)
            self._note(429)
            self._reply(
                429,
                {"error": str(exc)},
                headers={"Retry-After": f"{exc.retry_after_s:g}"},
            )
            return
        headers: Optional[Dict[str, str]] = None
        try:
            try:
                status, document = handler()
            except SessionUnknown as exc:
                status, document = 404, {"error": str(exc)}
            except StepTimeout as exc:
                # The session is intact at a round boundary — the honest
                # signal is "try again", not a 500.
                status = 503
                document = {
                    "error": str(exc),
                    "session_id": exc.session_id,
                    "rounds_completed": exc.rounds_completed,
                }
                headers = {"Retry-After": f"{self.server.retry_after_s:g}"}
            except PayloadTooLarge as exc:
                status, document = 413, {"error": str(exc)}
            except Overloaded as exc:
                status, document = 429, {"error": str(exc)}
                headers = {"Retry-After": f"{exc.retry_after_s:g}"}
            except ServeError as exc:
                status, document = 400, {"error": str(exc)}
            except Exception as exc:  # pragma: no cover - defensive 500
                status, document = 500, {"error": f"{type(exc).__name__}: {exc}"}
        finally:
            if gate is not None:
                gate.release()
        self._note(status)
        self._reply(status, document, headers=headers)

    def _note(self, status: int) -> None:
        self.server.api.note_request(
            self.command, _route_template(urlparse(self.path).path), status
        )

    # -- verbs -------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        parsed = urlparse(self.path)
        api = self.server.api

        if parsed.path == "/metrics":
            # Prometheus exposition is text, not JSON — served outside the
            # JSON dispatch path, with the scraper's expected content type.
            text = api.metrics()
            self._note(200)
            self._reply_text(200, text, METRICS_CONTENT_TYPE)
            return

        def handle() -> Tuple[int, Dict[str, Any]]:
            if parsed.path == "/healthz":
                return 200, api.healthz()
            if parsed.path == "/stats":
                return 200, api.stats()
            if parsed.path == "/sessions":
                return 200, api.sessions()
            match = _SESSION_ROUTE.match(parsed.path)
            if match and match.group("verb") == "firings":
                query = parse_qs(parsed.query)
                since = int(query.get("since", ["0"])[0])
                return 200, api.firings(match.group("sid"), since)
            if match and match.group("verb") is None:
                return 200, api.health(match.group("sid"))
            return 404, {"error": f"no route for GET {parsed.path}"}

        self._dispatch(handle)

    def do_POST(self) -> None:  # noqa: N802
        parsed = urlparse(self.path)
        api = self.server.api

        def handle() -> Tuple[int, Dict[str, Any]]:
            payload = self._payload()
            if parsed.path == "/sessions":
                return 201, api.create_session(payload)
            match = _SESSION_ROUTE.match(parsed.path)
            if match and match.group("verb") == "step":
                return 200, api.step(match.group("sid"), payload)
            if match and match.group("verb") == "interactions":
                return 200, api.inject(match.group("sid"), payload)
            return 404, {"error": f"no route for POST {parsed.path}"}

        self._dispatch(handle, gated=True)

    def do_DELETE(self) -> None:  # noqa: N802
        parsed = urlparse(self.path)
        api = self.server.api

        def handle() -> Tuple[int, Dict[str, Any]]:
            match = _SESSION_ROUTE.match(parsed.path)
            if match and match.group("verb") is None:
                return 200, api.close_session(match.group("sid"))
            return 404, {"error": f"no route for DELETE {parsed.path}"}

        self._dispatch(handle)


class ServeHTTPServer(ThreadingHTTPServer):
    """The service's HTTP front (threading, daemonic handler threads).

    Back-pressure knobs:

    * ``max_inflight`` — at most this many work-creating (POST) requests
      run concurrently; excess requests get an immediate 429 with
      ``Retry-After`` instead of queueing unboundedly.  ``None`` (default)
      disables the gate; ``0`` sheds every POST (useful in tests).
    * ``max_body_bytes`` — requests declaring a larger body are refused
      with 413 before the body is read.  ``None`` disables the cap.
    """

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        api: ServeAPI,
        verbose: bool = False,
        max_inflight: Optional[int] = None,
        max_body_bytes: Optional[int] = DEFAULT_MAX_BODY_BYTES,
        retry_after_s: float = 1.0,
    ):
        super().__init__(address, _Handler)
        self.api = api
        self.verbose = verbose
        if max_inflight is not None and max_inflight < 0:
            raise ValueError(f"max_inflight must be >= 0, got {max_inflight}")
        self.gate = (
            threading.Semaphore(max_inflight) if max_inflight is not None else None
        )
        self.max_body_bytes = max_body_bytes
        self.retry_after_s = retry_after_s

    @property
    def port(self) -> int:
        return self.server_address[1]

    def serve_in_background(self) -> threading.Thread:
        thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-http", daemon=True
        )
        thread.start()
        return thread


def make_http_server(
    host: str = "127.0.0.1",
    port: int = 0,
    engine: Optional[SessionEngine] = None,
    verbose: bool = False,
    max_inflight: Optional[int] = None,
    max_body_bytes: Optional[int] = DEFAULT_MAX_BODY_BYTES,
    retry_after_s: float = 1.0,
) -> ServeHTTPServer:
    """Build (but do not start) the HTTP front; ``port=0`` picks a free one."""
    return ServeHTTPServer(
        (host, port),
        ServeAPI(engine),
        verbose=verbose,
        max_inflight=max_inflight,
        max_body_bytes=max_body_bytes,
        retry_after_s=retry_after_s,
    )
