"""repro — reproduction of Keller, Fischer & Effelsberg (ICDCS 1994):
"Implementing Movie Control, Access and Management — from a Formal Description
to a Working Multimedia System".

Subpackages
-----------
``repro.estelle``
    The Estelle (ISO 9074) formal-description framework: FSM modules,
    channels, attributes and static semantics.
``repro.estelle.frontend``
    The Estelle *text* front-end: tokenizer, recursive-descent parser and
    semantic lowering compiling ``.estelle`` sources (the paper's "formal
    description") into validated specifications, with source-located
    syntax/semantic diagnostics.
``repro.runtime``
    The parallel runtime the paper's code generator would emit: schedulers,
    dispatch strategies, module-to-processor mappings, and the executor.
``repro.runtime.codegen``
    The optimizing code generator: per-(state, interaction) flattened
    transition tables and precompiled guard closures emitted as specialized
    Python selection functions (the ``"generated"`` dispatch strategy).
``repro.sim``
    Simulated hardware: event scheduler, multiprocessor machines (the KSR1
    stand-in), datagram networks and metrics.
``repro.asn1``
    ASN.1 type system and BER encoding for MCAM PDUs.
``repro.osi``
    OSI upper layers: transport pipe, session, presentation, ACSE and the
    hand-coded ISODE-style interface.
``repro.directory``
    The X.500-style movie directory (DSA/DUA).
``repro.equipment``
    Continuous-media equipment control (ECA/EUA, simulated devices).
``repro.stream``
    The XMovie stream service: movies, the Movie Transmission Protocol,
    jitter buffering and QoS monitoring.
``repro.mcam``
    The paper's core contribution: the MCAM service, PDUs, agents, client and
    server entities, the full Estelle specification and the high-level API.
``repro.harness``
    Workload generation and report helpers for the benchmark suite.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
