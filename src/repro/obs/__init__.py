"""``repro.obs`` — the unified metrics/event/profiling layer.

One subsystem replaces the repo's fragmented telemetry (the executor's
:class:`~repro.sim.metrics.ExecutionMetrics`, four ad-hoc ``stats()``
dicts in ``repro.serve``, the planner's private counters): every layer
records into a :class:`MetricsRegistry`, narrates through an
:class:`EventBus`, and anything holding a registry can be rendered as
Prometheus text exposition (:func:`render_prometheus`) — which is what
``GET /metrics`` on the serve HTTP front returns.

The two invariants that make this safe to leave permanently wired in:

* **Zero perturbation** — observability reads wall time only, never the
  :class:`~repro.runtime.clock.SimulatedClock`, never module state;
  canonical traces are byte-identical with observability enabled,
  disabled, or with a JSONL sink attached
  (``tests/test_obs_equivalence.py``).
* **Near-no-op when disabled** — the default :data:`NULL_OBS` bundle is a
  :class:`NullRegistry` plus a sink-less bus; instrumented hot paths pay
  attribute loads and empty calls only
  (``benchmarks/bench_obs_overhead.py``, the ``obs_overhead`` gate).

Usage::

    from repro.obs import Observability

    obs = Observability()                   # real registry + bus
    executor = SpecificationExecutor(spec, cluster, obs=obs)
    executor.run()
    print(render_prometheus(obs.registry))  # Prometheus text format

    obs.events.attach(JsonlSink("events.jsonl"))   # structured narration
"""

from __future__ import annotations

from typing import Optional

from .events import (
    CallbackSink,
    Event,
    EventBus,
    JsonlSink,
    MAX_SINK_FAILURES,
    RingBufferSink,
)
from .prom import CONTENT_TYPE, render_prometheus
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Timer,
    default_registry,
    set_default_registry,
)

__all__ = [
    "Observability",
    "NULL_OBS",
    "MetricsRegistry",
    "NullRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "DEFAULT_BUCKETS",
    "default_registry",
    "set_default_registry",
    "EventBus",
    "Event",
    "RingBufferSink",
    "JsonlSink",
    "CallbackSink",
    "MAX_SINK_FAILURES",
    "render_prometheus",
    "CONTENT_TYPE",
]


class Observability:
    """One registry + one event bus: the handle instrumented code takes.

    Layers accept ``obs: Optional[Observability]`` and default to
    :data:`NULL_OBS`, so observability is opt-in per executor/engine and
    free when not opted into.  ``enabled`` mirrors the registry's flag —
    the cheap branch for optional extra bookkeeping.
    """

    __slots__ = ("registry", "events")

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        events: Optional[EventBus] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.events = events if events is not None else EventBus()

    @property
    def enabled(self) -> bool:
        return self.registry.enabled

    @classmethod
    def disabled(cls) -> "Observability":
        return cls(NullRegistry(), EventBus())

    def render(self) -> str:
        """The registry as Prometheus text exposition."""
        return render_prometheus(self.registry)

    def stats(self) -> dict:
        """The ``obs`` block ``repro.serve`` reports under ``/stats``."""
        return {
            "enabled": self.enabled,
            "metrics": len(self.registry),
            **self.events.stats(),
        }


#: The process-wide do-nothing bundle: every un-instrumented executor and
#: planner shares this one object (no per-instance allocation).
NULL_OBS = Observability(NullRegistry(), EventBus())
