"""Structured lifecycle events: one bus, pluggable sinks.

Metrics aggregate; events narrate.  The runtime emits a small vocabulary
of lifecycle events — round start/end, structure-epoch bumps, deadline
jumps, session create/close, worker spawn — and this bus fans each one to
whatever sinks are attached:

* :class:`RingBufferSink` — the last N events in memory, for ``/stats``
  style introspection and tests;
* :class:`JsonlSink` — one JSON object per line to a file, the durable
  form an operator tails;
* :class:`CallbackSink` — arbitrary code (the adaptive-mapping work of
  ROADMAP item 5 will hang its re-balancer feedback here).

Contract with the round loop: **a sink may never break execution.**
Every sink call is isolated — an exception is swallowed, counted in
``sink_errors`` and charged to that sink; after :data:`MAX_SINK_FAILURES`
consecutive failures the sink is detached so a permanently broken sink
cannot tax the hot path forever.  And like the metrics layer, events
carry wall-clock timestamps only — the simulated clock is never read, so
an attached sink cannot perturb canonical traces (the zero-perturbation
gate of ``tests/test_obs_equivalence.py`` runs with a JSONL sink
attached).

A bus with no sinks is disabled: ``emit`` returns after one length check,
which is why the executor can emit unconditionally.
"""

from __future__ import annotations

import io
import json
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Union

__all__ = [
    "Event",
    "EventBus",
    "RingBufferSink",
    "JsonlSink",
    "CallbackSink",
    "MAX_SINK_FAILURES",
]

#: Consecutive failures after which a sink is detached from the bus.
MAX_SINK_FAILURES = 8


class Event(Dict[str, Any]):
    """One emitted event: a plain dict with ``kind``, ``seq``, ``ts`` plus
    the emitter's fields.  Being a dict keeps sinks trivial (JSONL is one
    ``json.dumps`` away) and avoids a per-event class allocation dance."""


class Sink:
    """Interface: receive one event.  Raising is tolerated (and counted)."""

    def write(self, event: Event) -> None:
        raise NotImplementedError

    def close(self) -> None:
        pass


class RingBufferSink(Sink):
    """Keep the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError("ring buffer capacity must be positive")
        self._events: Deque[Event] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def write(self, event: Event) -> None:
        with self._lock:
            self._events.append(event)

    def events(self, kind: Optional[str] = None) -> List[Event]:
        with self._lock:
            events = list(self._events)
        if kind is None:
            return events
        return [event for event in events if event["kind"] == kind]

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


class JsonlSink(Sink):
    """Append events as JSON lines to a path or an open text stream.

    Values that are not JSON-serialisable are stringified rather than
    raised on — an event sink must degrade, not veto, whatever the
    runtime chose to report.
    """

    def __init__(self, target: Union[str, "io.TextIOBase"]) -> None:
        if isinstance(target, (str, bytes)):
            self._stream: Any = open(target, "a", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self._lock = threading.Lock()

    def write(self, event: Event) -> None:
        line = json.dumps(event, separators=(",", ":"), default=str)
        with self._lock:
            self._stream.write(line + "\n")

    def flush(self) -> None:
        with self._lock:
            self._stream.flush()

    def close(self) -> None:
        with self._lock:
            if self._owns_stream:
                self._stream.close()
            else:
                self._stream.flush()


class CallbackSink(Sink):
    """Call ``fn(event)`` per event."""

    def __init__(self, fn: Callable[[Event], None]) -> None:
        self._fn = fn

    def write(self, event: Event) -> None:
        self._fn(event)


class EventBus:
    """Fan structured events out to the attached sinks.

    ``emit("round_end", round_index=7, makespan=3.5)`` builds the event
    dict (kind + monotonic ``seq`` + wall ``ts``) and hands it to every
    sink under the failure-isolation contract above.  With no sinks
    attached the call is a single length check — the always-on emit sites
    in the executor cost nothing in the common (unobserved) case.
    """

    def __init__(self) -> None:
        self._sinks: List[Sink] = []
        self._failures: Dict[int, int] = {}
        self._lock = threading.Lock()
        self._seq = 0
        self.emitted = 0
        self.sink_errors = 0
        self.sinks_detached = 0

    # -- sink management -------------------------------------------------------

    def attach(self, sink: Sink) -> Sink:
        with self._lock:
            self._sinks.append(sink)
            self._failures[id(sink)] = 0
        return sink

    def detach(self, sink: Sink) -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)
                self._failures.pop(id(sink), None)

    @property
    def active(self) -> bool:
        return bool(self._sinks)

    # -- emission --------------------------------------------------------------

    def emit(self, kind: str, **fields: Any) -> None:
        if not self._sinks:
            return
        with self._lock:
            self._seq += 1
            seq = self._seq
            sinks = list(self._sinks)
        event = Event(kind=kind, seq=seq, ts=time.time(), **fields)
        self.emitted += 1
        for sink in sinks:
            try:
                sink.write(event)
            except Exception:
                self._note_failure(sink)
            else:
                self._failures[id(sink)] = 0

    def _note_failure(self, sink: Sink) -> None:
        """Count a sink failure; detach the sink once it fails persistently."""
        with self._lock:
            self.sink_errors += 1
            failures = self._failures.get(id(sink), 0) + 1
            self._failures[id(sink)] = failures
            if failures >= MAX_SINK_FAILURES and sink in self._sinks:
                self._sinks.remove(sink)
                self._failures.pop(id(sink), None)
                self.sinks_detached += 1

    # -- introspection ---------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "sinks": len(self._sinks),
                "emitted": self.emitted,
                "sink_errors": self.sink_errors,
                "sinks_detached": self.sinks_detached,
            }

    def flush(self) -> None:
        """Flush every attached sink that supports flushing.

        Same isolation contract as ``emit``: a sink whose flush raises is
        charged a failure (and eventually detached) instead of breaking
        the caller — shutdown paths call this to make JSONL sinks durable.
        """
        with self._lock:
            sinks = list(self._sinks)
        for sink in sinks:
            flush = getattr(sink, "flush", None)
            if flush is None:
                continue
            try:
                flush()
            except Exception:
                self._note_failure(sink)

    def close(self) -> None:
        with self._lock:
            sinks, self._sinks = self._sinks, []
            self._failures.clear()
        for sink in sinks:
            try:
                sink.close()
            except Exception:
                pass
