"""Thread-safe metrics: counters, gauges and fixed-bucket histograms.

The paper's whole evaluation is an observability exercise — scheduler
share, sync losses, per-processor utilisation — and the repo's runtime is
now a long-running multi-session service; this module is the single
vocabulary every layer records into.  Design constraints, in order:

1. **Zero perturbation.**  Instrumentation may read wall time but never
   the :class:`~repro.runtime.clock.SimulatedClock` and never module
   state: attaching or detaching observability must leave every canonical
   trace byte-identical (gated by ``tests/test_obs_equivalence.py``).
2. **Near-no-op when disabled.**  The process-wide default is a
   :class:`NullRegistry`, whose instruments are shared do-nothing
   singletons — an instrumented hot path pays one attribute load and one
   empty method call per record point, nothing else (gated by
   ``benchmarks/bench_obs_overhead.py``).
3. **Thread safety.**  ``repro.serve`` increments from its ``step_all``
   thread pool; every mutation takes the instrument's lock, every read
   sees a consistent snapshot.

Instruments are *get-or-create*: asking a registry twice for the same name
returns the same object, so N sessions instrumenting the same code path
naturally aggregate into one series.  Labelled families follow the
Prometheus model — ``family.labels(reason="budget")`` returns (creating on
first use) the child series for that label combination.

Callback gauges (``registry.gauge(name, help, callback=fn)``) read their
value at scrape time instead of being pushed — the idiom for "live" views
over state that already exists (planner reuse ratio, active session
count), costing the hot path nothing at all.
"""

from __future__ import annotations

import bisect
import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "Timer",
    "DEFAULT_BUCKETS",
    "default_registry",
    "set_default_registry",
]

#: Default histogram buckets (seconds): tuned for the latencies this repo
#: actually measures — sub-millisecond planner rounds up to multi-second
#: bulk steps.  The +Inf bucket is implicit and always present.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)

LabelValues = Tuple[str, ...]


class Timer:
    """Context manager: record the block's wall-clock seconds on exit.

    ``target`` is anything with ``observe(seconds)`` — a histogram child or
    a plain callable's duck-typed stand-in.  Timers read
    :func:`time.perf_counter` only; simulated time is out of bounds for
    observability by contract.
    """

    __slots__ = ("target", "_started")

    def __init__(self, target: "HistogramChild") -> None:
        self.target = target
        self._started = 0.0

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.target.observe(time.perf_counter() - self._started)


class _NullTimer:
    """Shared do-nothing timer for null instruments."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


_NULL_TIMER = _NullTimer()


class _Instrument:
    """Common child-series machinery: one (metric, label values) pair."""

    __slots__ = ("_lock",)

    def __init__(self) -> None:
        self._lock = threading.Lock()


class CounterChild(_Instrument):
    """A monotonically increasing count (pushed, or read at scrape time)."""

    __slots__ = ("_value", "callback")

    def __init__(self, callback: Optional[Callable[[], float]] = None) -> None:
        super().__init__()
        self._value = 0.0
        self.callback = callback

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        if self.callback is not None:
            return float(self.callback())
        with self._lock:
            return self._value


class GaugeChild(_Instrument):
    """A value that can go up and down (or be computed at scrape time)."""

    __slots__ = ("_value", "callback")

    def __init__(self, callback: Optional[Callable[[], float]] = None) -> None:
        super().__init__()
        self._value = 0.0
        self.callback = callback

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        if self.callback is not None:
            return float(self.callback())
        with self._lock:
            return self._value


class HistogramChild(_Instrument):
    """Fixed-bucket histogram: cumulative bucket counts, sum and count.

    ``observe(v)`` lands ``v`` in the first bucket whose upper bound is
    >= v (``le`` semantics: a value exactly on a boundary belongs to that
    boundary's bucket); values above every bound land in +Inf only.
    """

    __slots__ = ("bounds", "_bucket_counts", "_sum", "_count")

    def __init__(self, bounds: Sequence[float]) -> None:
        super().__init__()
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self._bucket_counts = [0] * (len(self.bounds) + 1)  # last is +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._bucket_counts[index] += 1
            self._sum += value
            self._count += 1

    def time(self) -> Timer:
        return Timer(self)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> Dict[str, Any]:
        """Cumulative ``{le: count}`` pairs plus sum/count, one consistent view."""
        with self._lock:
            counts = list(self._bucket_counts)
            total, running = self._sum, 0
        cumulative: List[Tuple[float, int]] = []
        for bound, count in zip(self.bounds, counts):
            running += count
            cumulative.append((bound, running))
        return {
            "buckets": cumulative,
            "inf": running + counts[-1],
            "sum": total,
            "count": running + counts[-1],
        }


class MetricFamily:
    """One named metric plus its labelled children.

    ``labelnames`` fixes the label schema at creation; ``labels(**kv)``
    returns the child for that combination, creating it on first use.  An
    unlabelled family is its own single child (``family.inc(...)`` etc.
    proxy to it), which keeps call sites uniform.
    """

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Tuple[str, ...],
        child_factory: Callable[[], _Instrument],
    ) -> None:
        self.name = name
        self.help = help_text
        self.kind = kind
        self.labelnames = labelnames
        self._child_factory = child_factory
        self._children: Dict[LabelValues, _Instrument] = {}
        self._lock = threading.Lock()
        if not labelnames:
            self._children[()] = child_factory()

    def labels(self, **labelvalues: str) -> Any:
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._child_factory()
                self._children[key] = child
            return child

    def children(self) -> List[Tuple[LabelValues, _Instrument]]:
        with self._lock:
            return list(self._children.items())

    # -- unlabelled proxying ---------------------------------------------------

    def _sole(self) -> Any:
        try:
            return self._children[()]
        except KeyError:
            raise ValueError(
                f"metric {self.name!r} is labelled {self.labelnames}; "
                "call .labels(...) first"
            ) from None

    def inc(self, amount: float = 1.0) -> None:
        self._sole().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._sole().dec(amount)

    def set(self, value: float) -> None:
        self._sole().set(value)

    def observe(self, value: float) -> None:
        self._sole().observe(value)

    def time(self) -> Timer:
        return self._sole().time()

    @property
    def value(self) -> float:
        return self._sole().value

    @property
    def count(self) -> int:
        return self._sole().count

    @property
    def sum(self) -> float:
        return self._sole().sum

    def snapshot(self) -> Dict[str, Any]:
        return self._sole().snapshot()


# Public aliases so annotations read as the instrument kind, not the plumbing.
Counter = MetricFamily
Gauge = MetricFamily
Histogram = MetricFamily


class MetricsRegistry:
    """A namespace of metric families; the unit of scraping.

    ``enabled`` is True so instrumented code can fork cheaply::

        if executor.obs.enabled:
            ...optional extra bookkeeping...

    Get-or-create is type-checked: re-registering a name with a different
    kind or label schema raises, mismatched re-use being a bug worth
    failing loudly on.
    """

    enabled = True

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    def _family(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Tuple[str, ...],
        child_factory: Callable[[], _Instrument],
    ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as {family.kind} "
                        f"with labels {family.labelnames}; cannot re-register "
                        f"as {kind} with labels {labelnames}"
                    )
                return family
            family = MetricFamily(name, help_text, kind, labelnames, child_factory)
            self._families[name] = family
            return family

    def counter(
        self,
        name: str,
        help_text: str = "",
        labelnames: Iterable[str] = (),
        callback: Optional[Callable[[], float]] = None,
    ) -> Counter:
        names = tuple(labelnames)
        if callback is not None and names:
            raise ValueError("callback counters cannot be labelled")
        family = self._family(
            name, help_text, "counter", names, lambda: CounterChild()
        )
        if callback is not None:
            family._sole().callback = callback
        return family

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labelnames: Iterable[str] = (),
        callback: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        names = tuple(labelnames)
        if callback is not None and names:
            raise ValueError("callback gauges cannot be labelled")
        family = self._family(
            name, help_text, "gauge", names, lambda: GaugeChild()
        )
        if callback is not None:
            # Re-registering with a fresh callback rebinds it (a new engine
            # replacing a dead one must not scrape the dead one's state).
            family._sole().callback = callback
        return family

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Iterable[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        bounds = tuple(sorted(set(float(b) for b in buckets)))
        if not bounds:
            raise ValueError("a histogram needs at least one finite bucket bound")
        return self._family(
            name,
            help_text,
            "histogram",
            tuple(labelnames),
            lambda: HistogramChild(bounds),
        )

    # -- introspection ---------------------------------------------------------

    def families(self) -> List[MetricFamily]:
        with self._lock:
            return sorted(self._families.values(), key=lambda f: f.name)

    def get(self, name: str) -> Optional[MetricFamily]:
        with self._lock:
            return self._families.get(name)

    def __len__(self) -> int:
        with self._lock:
            return len(self._families)


class _NullInstrument:
    """One shared object that absorbs every instrument call.

    Serves as counter, gauge, histogram *and* family: ``labels`` returns
    itself, mutations do nothing, reads return zero.  Instrumented code
    therefore never branches on enabled/disabled — it just calls.
    """

    __slots__ = ()

    def labels(self, **labelvalues: str) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def time(self) -> _NullTimer:
        return _NULL_TIMER

    @property
    def value(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> float:
        return 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {"buckets": [], "inf": 0, "sum": 0.0, "count": 0}

    def children(self) -> List[Tuple[LabelValues, "_NullInstrument"]]:
        return []


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """The disabled registry: every instrument is the shared no-op.

    Instrumentation against a ``NullRegistry`` compiles down to attribute
    loads and empty method calls — no locks, no allocation, no state —
    which is what lets the executor keep its obs hooks installed
    unconditionally.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(
        self,
        name: str,
        help_text: str = "",
        labelnames: Iterable[str] = (),
        callback: Optional[Callable[[], float]] = None,
    ):
        return _NULL_INSTRUMENT

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labelnames: Iterable[str] = (),
        callback: Optional[Callable[[], float]] = None,
    ):
        return _NULL_INSTRUMENT

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Iterable[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        return _NULL_INSTRUMENT

    def families(self) -> List[MetricFamily]:
        return []


#: The process-default registry.  Disabled (a ``NullRegistry``) until
#: something opts in: library code records into ``default_registry()``
#: unless handed an explicit one, and pays nothing until a service
#: (``repro.serve``) or a test installs a real registry.
_DEFAULT_REGISTRY: MetricsRegistry = NullRegistry()
_DEFAULT_LOCK = threading.Lock()


def default_registry() -> MetricsRegistry:
    return _DEFAULT_REGISTRY


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process default; returns the previous one."""
    global _DEFAULT_REGISTRY
    with _DEFAULT_LOCK:
        previous = _DEFAULT_REGISTRY
        _DEFAULT_REGISTRY = registry
        return previous
