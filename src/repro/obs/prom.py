"""Prometheus text exposition (format 0.0.4) for a :class:`MetricsRegistry`.

Stdlib-only rendering of the registry's families::

    # HELP repro_serve_sessions_active Sessions currently hosted.
    # TYPE repro_serve_sessions_active gauge
    repro_serve_sessions_active 42
    # TYPE repro_serve_step_seconds histogram
    repro_serve_step_seconds_bucket{le="0.005"} 1201
    repro_serve_step_seconds_bucket{le="+Inf"} 1288
    repro_serve_step_seconds_sum 4.52
    repro_serve_step_seconds_count 1288

Counters and gauges render one sample per labelled child; histograms
render cumulative ``_bucket`` samples (always including ``+Inf``), plus
``_sum`` and ``_count``.  Label values are escaped per the exposition
format (backslash, double-quote, newline); floats use ``repr`` so no
precision is invented or lost.

The HTTP front serves this under ``GET /metrics`` with content type
:data:`CONTENT_TYPE` (see :mod:`repro.serve.api`).
"""

from __future__ import annotations

import math
from typing import List, Tuple

from .registry import MetricFamily, MetricsRegistry

__all__ = ["CONTENT_TYPE", "render_prometheus", "format_value"]

#: The content type Prometheus scrapers expect for text format 0.0.4.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def format_value(value: float) -> str:
    """One sample value: integers render bare, floats via repr, inf/nan named."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _labels_text(
    labelnames: Tuple[str, ...],
    labelvalues: Tuple[str, ...],
    extra: Tuple[Tuple[str, str], ...] = (),
) -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, labelvalues)
    ]
    pairs.extend(f'{name}="{_escape_label_value(value)}"' for name, value in extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _render_family(family: MetricFamily, lines: List[str]) -> None:
    if family.help:
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
    lines.append(f"# TYPE {family.name} {family.kind}")
    for labelvalues, child in family.children():
        labels = _labels_text(family.labelnames, labelvalues)
        if family.kind in ("counter", "gauge"):
            lines.append(f"{family.name}{labels} {format_value(child.value)}")
        else:  # histogram
            snap = child.snapshot()
            for bound, cumulative in snap["buckets"]:
                bucket_labels = _labels_text(
                    family.labelnames,
                    labelvalues,
                    extra=(("le", format_value(float(bound))),),
                )
                lines.append(f"{family.name}_bucket{bucket_labels} {cumulative}")
            inf_labels = _labels_text(
                family.labelnames, labelvalues, extra=(("le", "+Inf"),)
            )
            lines.append(f"{family.name}_bucket{inf_labels} {snap['inf']}")
            lines.append(f"{family.name}_sum{labels} {format_value(snap['sum'])}")
            lines.append(f"{family.name}_count{labels} {snap['count']}")


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as one text-format document (trailing newline included)."""
    lines: List[str] = []
    for family in registry.families():
        _render_family(family, lines)
    return "\n".join(lines) + "\n" if lines else ""
