"""Checkpoint/restore for executor and worker-shard state.

A checkpoint is a *cut state* in the IC3 sense: everything the round
executor needs so that execution resumed from the checkpoint produces a
canonical trace byte-identical to the uninterrupted run's suffix.  That
inventory is small and rng-free by construction — control states,
variables, IP queues and counters, armed delay timers, dynamic-topology
shape (which modules exist, their IP arrays, their connections), the
``<var>#<serial>`` init counters behind trace-stable naming, and the
simulated clock / round cursor.  Deliberately *not* captured: wall-time
metrics, planner caches (rebuilt via the dirty-tracking contract's
explicit ``invalidate()``), and ``Module.uid`` / ``Interaction.uid``
(global instance counters that never reach the canonical trace).

Restore is a direct tree reconstruction, **not** a replay: user
``initialise()`` code never runs, no dirty/structure/topology hooks fire
(callers invalidate their planner explicitly afterwards), and dynamic
modules are rebuilt through ``Specification.body_classes`` with their
exact saved state.  The same helpers serve three consumers with different
scopes — :meth:`SpecificationExecutor.snapshot` (whole tree), the
multiprocess worker's per-round shard checkpoint (owned modules only,
used by the supervising coordinator to respawn a crashed worker), and
``repro.serve``'s session persistence (whole tree, pickled to a state
dir).
"""

from __future__ import annotations

import copy
import re
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..estelle.errors import EstelleError
from ..estelle.interaction import Interaction
from ..estelle.module import Module
from ..estelle.specification import Specification

__all__ = [
    "CheckpointError",
    "ExecutorSnapshot",
    "IPSnapshot",
    "ModuleRef",
    "ModuleSnapshot",
    "WorkerCheckpoint",
    "capture_modules",
    "feed_deadline_hooks",
    "restore_modules",
]

_ARRAY_IP = re.compile(r"^(?P<base>.+)\[(?P<index>\d+)\]$")


class CheckpointError(EstelleError):
    """A module tree cannot be captured or restored faithfully."""


@dataclass(frozen=True)
class ModuleRef:
    """Placeholder for a module variable that holds a child instance.

    Estelle ``init`` stores the created child in its module variable; the
    instance itself is neither picklable nor meaningful across processes,
    so snapshots encode it by trace-stable path and restore re-resolves it
    against the rebuilt tree.
    """

    path: str


def _encode_variable(owner_path: str, key: str, value: Any) -> Any:
    if isinstance(value, Module):
        if value.released:
            raise CheckpointError(
                f"cannot checkpoint {owner_path}: variable {key!r} holds "
                f"released module {value.path!r}"
            )
        return ModuleRef(value.path)
    return copy.deepcopy(value)


@dataclass(frozen=True)
class IPSnapshot:
    """One interaction point: queued messages, counters, and who it was
    connected to (``(owner_path, ip_name)``) so restore can reconcile
    connections without replaying topology events."""

    name: str
    peer: Optional[Tuple[str, str]]
    queue: Tuple[Tuple[str, Tuple[Tuple[str, Any], ...]], ...]
    received_count: int
    sent_count: int


@dataclass(frozen=True)
class ModuleSnapshot:
    """Full per-module cut state, keyed by trace-stable path."""

    path: str
    name: str
    class_name: str
    state: Optional[str]
    variables: Tuple[Tuple[str, Any], ...]
    fired_count: int
    initialised: bool
    delay_since: Tuple[Tuple[str, float], ...]
    init_serial: Tuple[Tuple[str, int], ...]
    array_counters: Tuple[Tuple[str, int], ...]
    ips: Tuple[IPSnapshot, ...]


@dataclass(frozen=True)
class ExecutorSnapshot:
    """What :meth:`SpecificationExecutor.snapshot` returns: the module cut
    plus the executor's round/clock cursors and accumulated metrics."""

    spec_name: str
    round_index: int
    clock_now: float
    deadlocked: bool
    structure_epoch: int
    modules: Tuple[ModuleSnapshot, ...]
    metrics: Any


@dataclass(frozen=True)
class WorkerCheckpoint:
    """A worker's owned shard at the end of round ``round_index`` (after its
    outgoing batches were flushed, before the round-``round_index + 1``
    deliveries were consumed)."""

    round_index: int
    owned_paths: Tuple[str, ...]
    modules: Tuple[ModuleSnapshot, ...]
    #: the per-peer batches this worker flushed for ``round_index``, keyed by
    #: peer unit uid.  A crash can lose in-flight batches — an mp-queue
    #: ``put()`` not yet written by the feeder thread, or a TCP frame on a
    #: connection that died with the worker — so a respawned worker re-sends
    #: them through its transport endpoint; receivers discard the duplicates
    #: by round tag, whatever the transport.
    outgoing: Tuple[Tuple[int, Tuple[Any, ...]], ...] = ()


def _snapshot_ip(point) -> IPSnapshot:
    peer = None
    if point.peer is not None:
        peer = (point.peer.owner.path, point.peer.name)
    queue = tuple(
        (
            interaction.name,
            tuple(
                (key, copy.deepcopy(value))
                for key, value in interaction.params.items()
            ),
        )
        for interaction in point.queue
    )
    return IPSnapshot(
        name=point.name,
        peer=peer,
        queue=queue,
        received_count=point.received_count,
        sent_count=point.sent_count,
    )


def _snapshot_module(module: Module) -> ModuleSnapshot:
    if module.EXTERNAL:
        raise CheckpointError(
            f"cannot checkpoint {module.path}: EXTERNAL bodies hold "
            "hand-coded Python state outside the Estelle state inventory"
        )
    return ModuleSnapshot(
        path=module.path,
        name=module.name,
        class_name=type(module).__name__,
        state=module.state,
        variables=tuple(
            (key, _encode_variable(module.path, key, value))
            for key, value in module.variables.items()
        ),
        fired_count=module.fired_count,
        initialised=module.initialised,
        delay_since=tuple(sorted(module._delay_since.items())),
        init_serial=tuple(sorted(module._init_serial.items())),
        array_counters=tuple(sorted(module._array_counters.items())),
        ips=tuple(_snapshot_ip(point) for point in module.ips.values()),
    )


def capture_modules(
    specification: Specification,
    in_scope: Callable[[str], bool],
) -> Tuple[ModuleSnapshot, ...]:
    """Snapshot every live module whose path satisfies ``in_scope``,
    in pre-order (parents before children — the order restore relies on)."""
    snapshots: List[ModuleSnapshot] = []
    for module in specification.root.walk():
        if module is specification.root:
            continue
        if not in_scope(module.path):
            continue
        snapshots.append(_snapshot_module(module))
    return tuple(snapshots)


def _prune_extra_modules(
    specification: Specification,
    live_paths: set,
    in_scope: Callable[[str], bool],
) -> None:
    """Detach in-scope modules that do not exist in the checkpoint.

    Used when restoring onto a tree that ran ahead of the cut (or onto a
    fresh build whose ``initialise()`` created children the checkpoint had
    already released).  No structure/topology hooks fire — a restore is
    not a topology *event*, and worker-side it must not be re-reported to
    the coordinator.
    """
    for module in list(specification.root.walk()):
        if module is specification.root or module.parent is None:
            continue
        path = module.path
        if not in_scope(path) or path in live_paths:
            continue
        parent = module.parent
        if parent.children.get(module.name) is not module:
            continue  # already detached with an ancestor
        parent.children.pop(module.name)
        for descendant in module.walk():
            descendant.released = True
            for point in descendant.ips.values():
                point.disconnect()


def _create_missing_module(
    specification: Specification,
    by_path: Dict[str, Module],
    snapshot: ModuleSnapshot,
) -> Module:
    """Rebuild a dynamic module directly: resolve the body class, construct
    with the saved variables, propagate hooks/clock from the parent —
    without running ``initialise()`` or firing any hook."""
    parent_path, _, name = snapshot.path.rpartition("/")
    parent = by_path.get(parent_path)
    if parent is None:
        raise CheckpointError(
            f"cannot restore {snapshot.path}: parent {parent_path!r} missing"
        )
    module_class = specification.body_classes.get(snapshot.class_name)
    if module_class is None:
        raise CheckpointError(
            f"cannot restore {snapshot.path}: body class "
            f"{snapshot.class_name!r} is not registered on the specification"
        )
    module = module_class(name, parent=parent, **dict(snapshot.variables))
    module._dirty_hook = parent._dirty_hook
    module._structure_hook = parent._structure_hook
    module._deadline_hook = parent._deadline_hook
    module._topology_hook = parent._topology_hook
    module._sim_clock = parent._sim_clock
    parent.children[name] = module
    return module


def _restore_module_state(module: Module, snapshot: ModuleSnapshot) -> None:
    if type(module).__name__ != snapshot.class_name:
        raise CheckpointError(
            f"cannot restore {snapshot.path}: live module is "
            f"{type(module).__name__}, checkpoint recorded {snapshot.class_name}"
        )
    module.state = snapshot.state
    module.variables = {
        key: value if isinstance(value, ModuleRef) else copy.deepcopy(value)
        for key, value in snapshot.variables
    }
    module.fired_count = snapshot.fired_count
    module.initialised = snapshot.initialised
    module.released = False
    module._delay_since = dict(snapshot.delay_since)
    module._init_serial = dict(snapshot.init_serial)

    saved_ips = {ip.name for ip in snapshot.ips}
    extra = sorted(set(module.ips) - saved_ips)
    if extra:
        raise CheckpointError(
            f"cannot restore {snapshot.path}: live interaction points "
            f"{extra} are absent from the checkpoint"
        )
    # Recreate missing array elements in index order so pts[i] naming and
    # iteration order match the original instance exactly.
    missing = [ip for ip in snapshot.ips if ip.name not in module.ips]
    missing.sort(key=lambda ip: _array_index(snapshot.path, ip.name))
    for ip_snapshot in missing:
        match = _ARRAY_IP.match(ip_snapshot.name)
        if match is None:
            raise CheckpointError(
                f"cannot restore {snapshot.path}: interaction point "
                f"{ip_snapshot.name!r} is not declared and not an array element"
            )
        declaration = type(module)._ip_declarations.get(match.group("base"))
        if declaration is None or not declaration.array:
            raise CheckpointError(
                f"cannot restore {snapshot.path}: no array declaration "
                f"{match.group('base')!r} for {ip_snapshot.name!r}"
            )
        point = declaration.instantiate(module, index=int(match.group("index")))
        module.ips[point.name] = point
    module._array_counters = dict(snapshot.array_counters)

    for ip_snapshot in snapshot.ips:
        point = module.ips[ip_snapshot.name]
        point.queue.clear()
        for interaction_name, params in ip_snapshot.queue:
            point.queue.append(Interaction(interaction_name, dict(params)))
        point.received_count = ip_snapshot.received_count
        point.sent_count = ip_snapshot.sent_count


def _array_index(path: str, ip_name: str) -> int:
    match = _ARRAY_IP.match(ip_name)
    if match is None:
        raise CheckpointError(
            f"cannot restore {path}: interaction point {ip_name!r} "
            "is not declared and not an array element"
        )
    return int(match.group("index"))


def _reconcile_connections(
    by_path: Dict[str, Module],
    snapshots: Tuple[ModuleSnapshot, ...],
) -> None:
    """Make live IP connections match the checkpoint.

    Two passes (disconnect-then-connect) so a connection that *moved* —
    possible once ``release``/``init`` recycle peers — never trips
    ``connect_to``'s already-connected check.
    """
    def live_peer(point) -> Optional[Tuple[str, str]]:
        if point.peer is None:
            return None
        return (point.peer.owner.path, point.peer.name)

    for snapshot in snapshots:
        module = by_path[snapshot.path]
        for ip_snapshot in snapshot.ips:
            point = module.ips[ip_snapshot.name]
            if live_peer(point) != ip_snapshot.peer and point.peer is not None:
                point.disconnect()
    for snapshot in snapshots:
        module = by_path[snapshot.path]
        for ip_snapshot in snapshot.ips:
            if ip_snapshot.peer is None:
                continue
            point = module.ips[ip_snapshot.name]
            if point.peer is not None:
                continue  # the reverse-direction pass already connected it
            peer_path, peer_ip = ip_snapshot.peer
            peer_module = by_path.get(peer_path)
            if peer_module is None or peer_ip not in peer_module.ips:
                raise CheckpointError(
                    f"cannot restore connection {snapshot.path}.{ip_snapshot.name}"
                    f" -> {peer_path}.{peer_ip}: peer does not exist"
                )
            peer_point = peer_module.ips[peer_ip]
            if peer_point.peer is not None:
                peer_point.disconnect()
            point.connect_to(peer_point)


def restore_modules(
    specification: Specification,
    snapshots: Tuple[ModuleSnapshot, ...],
    in_scope: Callable[[str], bool],
) -> None:
    """Impose ``snapshots`` onto the live tree.

    ``in_scope`` bounds the *prune* step only: modules outside it (a
    worker's replicas of remote shards) are never touched, while every
    snapshotted module is created/overwritten unconditionally.
    """
    live_paths = {snapshot.path for snapshot in snapshots}
    _prune_extra_modules(specification, live_paths, in_scope)

    by_path = {
        module.path: module
        for module in specification.root.walk()
        if module is not specification.root
    }
    by_path[specification.root.path] = specification.root
    for snapshot in snapshots:  # pre-order: parents restored first
        module = by_path.get(snapshot.path)
        if module is None:
            module = _create_missing_module(specification, by_path, snapshot)
            by_path[snapshot.path] = module
        _restore_module_state(module, snapshot)

    # Second pass: module variables holding child instances (Estelle
    # ``init`` modvars) were captured as ModuleRef placeholders; resolve
    # them now that every snapshotted module exists.
    for snapshot in snapshots:
        module = by_path[snapshot.path]
        for key, value in module.variables.items():
            if isinstance(value, ModuleRef):
                target = by_path.get(value.path)
                if target is None:
                    raise CheckpointError(
                        f"cannot restore {snapshot.path}: variable {key!r} "
                        f"references missing module {value.path!r}"
                    )
                module.variables[key] = target

    _reconcile_connections(by_path, snapshots)


def feed_deadline_hooks(
    specification: Specification,
    snapshots: Tuple[ModuleSnapshot, ...],
) -> None:
    """Re-announce every restored armed delay timer to the deadline heap.

    The tracker's heap tolerates stale entries but cannot invent missing
    ones — without this, an empty round after restore would jump the clock
    past a pending deadline instead of to it.
    """
    by_path = {
        module.path: module
        for module in specification.root.walk()
        if module is not specification.root
    }
    for snapshot in snapshots:
        module = by_path.get(snapshot.path)
        if module is None or module._deadline_hook is None:
            continue
        declarations = type(module)._transition_declarations
        for transition_name, since in snapshot.delay_since:
            transition = declarations.get(transition_name)
            if transition is None or not transition.delay:
                continue
            module._deadline_hook(module, since + transition.delay)


def capture_executor(executor) -> ExecutorSnapshot:
    """Snapshot a :class:`SpecificationExecutor` (whole tree)."""
    specification = executor.specification
    planner = getattr(executor, "planner", None)
    epoch = 0
    if planner is not None:
        epoch = planner.tracker.structure_epoch
    return ExecutorSnapshot(
        spec_name=specification.name,
        round_index=executor._round_index,
        clock_now=executor.clock.now,
        deadlocked=executor.deadlocked,
        structure_epoch=epoch,
        modules=capture_modules(specification, lambda path: True),
        metrics=copy.deepcopy(executor.metrics),
    )


def restore_executor(executor, snapshot: ExecutorSnapshot) -> None:
    """Impose ``snapshot`` onto a (typically fresh) executor for the same
    specification; the trace restarts empty so continued execution yields
    exactly the uninterrupted run's *suffix*."""
    specification = executor.specification
    if specification.name != snapshot.spec_name:
        raise CheckpointError(
            f"snapshot is for specification {snapshot.spec_name!r}, "
            f"executor runs {specification.name!r}"
        )
    restore_modules(specification, snapshot.modules, lambda path: True)
    executor.clock.now = snapshot.clock_now
    executor._round_index = snapshot.round_index
    executor.deadlocked = snapshot.deadlocked
    executor.metrics = copy.deepcopy(snapshot.metrics)
    executor.trace.rounds.clear()
    executor._dynamic_unit.clear()
    executor._topology_changed = False
    executor._delayed_modules = None
    planner = getattr(executor, "planner", None)
    if planner is not None:
        feed_deadline_hooks(specification, snapshot.modules)
        # Dirty-tracking contract: state was mutated outside the four
        # invalidation points, so invalidate explicitly (epoch bump forces
        # the generated program to rebuild over the restored topology).
        planner.tracker.note_structure_change(specification.root)
        planner.invalidate()
