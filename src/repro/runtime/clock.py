"""The round loop's simulated clock: what makes ``delay`` clauses real.

Estelle's ``delay`` clause (ISO 9074) makes a transition *fireable* only
after it has been continuously enabled for its delay.  That needs a notion
of time the round loop itself owns — distinct from the wall clock (the
multiprocess backend's rounds take however long the host takes) and from
the cost model's makespans in :class:`repro.sim.metrics.ExecutionMetrics`
(which depend on the dispatch strategy's selection costs and would make
timing diverge between table-driven, generated and planner dispatch).

The clock defined here advances by the *dispatch-independent* component of
the existing makespan accounting: per computation round, the busiest
execution unit's sum of firing costs (``Transition.cost`` scaled by the
machine model).  Both backends derive every term of that sum from the same
declared costs and the same unit placement, so the clock reads — and the
simulated ``time`` stamped on every :class:`~repro.runtime.tracing.
FiringEvent` — are bit-identical floats across {in-process, multiprocess}
× {table-driven, generated, planner}.  That is the property the canonical
trace contract (:mod:`repro.runtime.parallel.trace`) relies on now that
``time`` is a canonical field.

When no transition is data-enabled but delay timers are still running, the
round loop *jumps* the clock to the earliest pending deadline instead of
declaring quiescence (:func:`next_delay_deadline` computes it from live
module timers; the incremental planner uses the
:class:`~repro.estelle.dirty.DirtyTracker` deadline index instead, which
additionally wakes the sleeping module so a cached "nothing enabled"
selection is re-evaluated).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..estelle.module import Module
    from ..estelle.specification import Specification


class SimulatedClock:
    """A monotonically advancing simulated-time cursor shared by a module tree.

    Modules reach the clock through their ``_sim_clock`` attribute (installed
    by :meth:`attach`, inherited by dynamically created children); transition
    delay checks are *inert* while no clock is attached, which keeps
    hand-driven tests and direct ``Transition.fire`` calls working unchanged.
    """

    __slots__ = ("now",)

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def advance(self, amount: float) -> None:
        """Advance by ``amount`` time units (the round's firing makespan)."""
        if amount < 0:
            raise ValueError(f"cannot advance the clock backwards ({amount})")
        self.now += amount

    @classmethod
    def attach(cls, specification: "Specification") -> "SimulatedClock":
        """Install a fresh clock on every module of a specification.

        Like :meth:`repro.estelle.dirty.DirtyTracker.attach`: one clock owns
        a tree at a time, and ``create_child`` propagates it to dynamically
        created modules.
        """
        clock = cls()
        for module in specification.root.walk():
            module._sim_clock = clock
        return clock


def firing_advance(unit_firing_costs: Dict[int, float]) -> float:
    """The round's clock advance: the busiest unit's total firing cost.

    ``unit_firing_costs`` maps execution-unit uid to the sum of the scaled
    costs of the transitions that unit fired this round.  The maximum is the
    modelled parallel execution time of the round's firings — the part of
    the makespan both backends compute identically.
    """
    return max(unit_firing_costs.values()) if unit_firing_costs else 0.0


def next_delay_deadline(modules: Iterable["Module"], now: float) -> Optional[float]:
    """Earliest future expiry among the armed delay timers of ``modules``.

    A timer is *armed* while its transition's untimed enabling condition
    holds (see :meth:`repro.estelle.module.Module.refresh_delay_timers`);
    its deadline is the arming time plus the transition's delay.  Deadlines
    at or before ``now`` are ignored: an expired timer means an enabled
    transition, so the caller's plan could not have been empty.

    Used by the full-rescan paths (the interpreted schedulers and the
    non-incremental multiprocess workers); the incremental planner keeps the
    same information in the :class:`~repro.estelle.dirty.DirtyTracker`
    deadline heap so it never has to scan the module population.
    """
    best: Optional[float] = None
    for module in modules:
        since_by_name = module._delay_since
        if not since_by_name:
            continue
        declarations = type(module)._transition_declarations
        for name, since in since_by_name.items():
            deadline = since + declarations[name].delay
            if deadline > now and (best is None or deadline < best):
                best = deadline
    return best
