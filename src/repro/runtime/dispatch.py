"""Transition-dispatch strategies: hard-coded scan vs table-driven selection.

Section 5.2 of the paper: *"Mainly, there are two alternatives: first, each
transition may be hard-coded as a C++ code block in a transition selection
function.  Prioritized transitions will have their place at the beginning of
the function.  Second, states and transitions may be mapped to a table.  The
current state will be used as an index for the row which means that only the
enabled transitions for that state will be investigated.  As newer performance
measurements show, the table-controlled approach is significantly better than
the hard-coded one when the number of transitions becomes larger than four."*

Both strategies are implemented against the declaration metadata of
:class:`repro.estelle.transition.Transition`.  They return the chosen
transition *and* the selection cost (in work units), so the executor can
charge the cost to the right execution unit and the benchmark can reproduce
the crossover around four transitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Type

from ..estelle.module import Module
from ..estelle.transition import ANY_STATE, Transition

#: Name -> strategy class.  Extended by :func:`register_strategy`; the code
#: generator (:mod:`repro.runtime.codegen`) registers its generated strategy
#: here so ``dispatch_by_name("generated")`` works everywhere.
_STRATEGY_REGISTRY: Dict[str, Type["DispatchStrategy"]] = {}


def register_strategy(cls: Type["DispatchStrategy"]) -> Type["DispatchStrategy"]:
    """Class decorator: make a strategy available to :func:`dispatch_by_name`."""
    _STRATEGY_REGISTRY[cls.name] = cls
    return cls


def priority_ordered_transitions(module_class: type) -> Tuple[Transition, ...]:
    """A module class's declared transitions, best priority first (stable)."""
    return tuple(
        sorted(module_class.declared_transitions(), key=lambda t: t.priority)
    )


def state_rows(module_class: type) -> Dict[Optional[str], Tuple[Transition, ...]]:
    """The (state -> candidate transitions) table shared by the table-driven
    strategy and the code generator.

    Each state's row holds the transitions whose ``from`` clause admits it
    (wildcard transitions appear in every row); the extra :data:`ANY_STATE`
    row serves instances that sit in a state outside the declared set.
    Keeping this in one place guarantees the generated strategy selects from
    exactly the same rows as the interpreted table.
    """
    transitions = priority_ordered_transitions(module_class)
    states: List[Optional[str]] = list(getattr(module_class, "STATES", ())) or [None]
    rows: Dict[Optional[str], Tuple[Transition, ...]] = {}
    for state in states:
        rows[state] = tuple(
            t
            for t in transitions
            if ANY_STATE in t.from_states or state in t.from_states
        )
    rows[ANY_STATE] = tuple(t for t in transitions if ANY_STATE in t.from_states)
    return rows


@dataclass(frozen=True)
class DispatchResult:
    """Outcome of one transition-selection pass over a single module."""

    transition: Optional[Transition]
    examined: int
    cost: float
    external: bool = False

    @property
    def fires(self) -> bool:
        return self.transition is not None or self.external


class DispatchStrategy:
    """Interface for transition-selection strategies.

    ``scan_cost`` is the cost of evaluating a single candidate transition's
    enabling condition; ``overhead`` is a fixed per-call cost (the table
    lookup / indexing machinery for the table-driven variant).
    """

    name = "abstract"

    def __init__(self, scan_cost: float = 0.08, overhead: float = 0.0):
        self.scan_cost = scan_cost
        self.overhead = overhead

    # -- candidate enumeration (strategy-specific) --------------------------------

    def candidates(self, module: Module) -> List[Transition]:
        raise NotImplementedError

    # -- shared selection logic -----------------------------------------------------

    def _external_result(self, module: Module) -> DispatchResult:
        """External (hand-coded) modules bypass transition scanning entirely:
        the hand-written body polls its interaction points itself, which the
        paper models with the ISODE-interface loop of Section 4.3."""
        return DispatchResult(
            transition=None,
            examined=0,
            cost=self.overhead,
            external=module.external_ready(),
        )

    def select(self, module: Module) -> DispatchResult:
        """Choose the transition the module should fire next (or none)."""
        if module.EXTERNAL:
            return self._external_result(module)

        # Delay timers are maintained by a strategy-independent module-level
        # pass (never as a side effect of candidate scanning, which differs
        # per strategy); `Transition.enabled` then consults the timers.
        if module._delayed_transitions:
            module.refresh_delay_timers()

        examined = 0
        chosen: Optional[Transition] = None
        for candidate in self.candidates(module):
            examined += 1
            if candidate.enabled(module):
                chosen = candidate
                break
        cost = self.overhead + self.scan_cost * examined
        return DispatchResult(transition=chosen, examined=examined, cost=cost)


@register_strategy
class HardCodedDispatch(DispatchStrategy):
    """Linear scan over the full transition list, priorities first.

    Mirrors a generated selection function in which every transition is a
    code block: candidates are examined in priority order regardless of the
    module's current state, so the cost grows with the *total* number of
    declared transitions.
    """

    name = "hard-coded"

    def __init__(self, scan_cost: float = 0.08):
        super().__init__(scan_cost=scan_cost, overhead=0.0)
        self._ordered_cache: Dict[type, List[Transition]] = {}

    def candidates(self, module: Module) -> List[Transition]:
        module_class = type(module)
        ordered = self._ordered_cache.get(module_class)
        if ordered is None:
            ordered = sorted(
                module_class.declared_transitions(), key=lambda t: t.priority
            )
            self._ordered_cache[module_class] = ordered
        return ordered


@register_strategy
class TableDrivenDispatch(DispatchStrategy):
    """State-indexed transition table.

    The table maps each state to the transitions whose ``from`` clause admits
    it (wildcard transitions appear in every row).  Selection pays a fixed
    indexing overhead but only examines the current state's row, which is why
    it wins once modules have more than a handful of transitions.
    """

    name = "table-driven"

    def __init__(self, scan_cost: float = 0.08, table_overhead: float = 0.25):
        super().__init__(scan_cost=scan_cost, overhead=table_overhead)
        self._tables: Dict[type, Dict[Optional[str], Tuple[Transition, ...]]] = {}

    def _table_for(self, module_class: type) -> Dict[Optional[str], Tuple[Transition, ...]]:
        table = self._tables.get(module_class)
        if table is None:
            table = state_rows(module_class)
            self._tables[module_class] = table
        return table

    def candidates(self, module: Module) -> List[Transition]:
        table = self._table_for(type(module))
        if module.state in table:
            return list(table[module.state])
        return list(table[ANY_STATE])


def dispatch_by_name(name: str, **kwargs) -> DispatchStrategy:
    """Factory used by the benchmark harness.

    Built-in names: ``"hard-coded"`` and ``"table-driven"``; importing
    :mod:`repro.runtime` (or :mod:`repro.runtime.codegen`) additionally
    registers ``"generated"``.
    """
    try:
        strategy_class = _STRATEGY_REGISTRY[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown dispatch strategy {name!r}; choose from "
            f"{sorted(_STRATEGY_REGISTRY)}"
        ) from exc
    return strategy_class(**kwargs)
