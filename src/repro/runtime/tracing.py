"""Execution tracing for the Estelle runtime.

A trace records, per computation round, which modules fired which transitions
and how long the round took in simulated time.  Traces serve three purposes in
the reproduction: debugging protocol specifications, asserting ordering
properties in the integration tests (e.g. "the session connection is
established before the first P-DATA"), and feeding the per-experiment reports
of the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class FiringEvent:
    """One module firing within a round."""

    round_index: int
    module_path: str
    transition_name: str
    state_before: Optional[str]
    state_after: Optional[str]
    interaction_name: Optional[str]
    cost: float
    unit_id: int
    machine: str
    #: simulated time at the start of the firing's round, read off the shared
    #: :class:`repro.runtime.clock.SimulatedClock`.  Dispatch-independent and
    #: backend-independent by construction (the clock advances by the busiest
    #: unit's firing-cost sum per round), so it participates in the canonical
    #: trace equivalence (:mod:`repro.runtime.parallel.trace`).
    time: float = 0.0


@dataclass
class RoundRecord:
    """Summary of one computation round."""

    index: int
    makespan: float
    serial_overhead: float
    firings: List[FiringEvent] = field(default_factory=list)

    @property
    def fired_modules(self) -> List[str]:
        return [f.module_path for f in self.firings]


class ExecutionTrace:
    """An append-only trace of an execution."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.rounds: List[RoundRecord] = []

    # -- recording -------------------------------------------------------------------

    def start_round(self, index: int) -> None:
        if self.enabled:
            self.rounds.append(RoundRecord(index=index, makespan=0.0, serial_overhead=0.0))

    def record_firing(self, event: FiringEvent) -> None:
        if self.enabled and self.rounds:
            self.rounds[-1].firings.append(event)

    def finish_round(self, makespan: float, serial_overhead: float) -> None:
        if self.enabled and self.rounds:
            self.rounds[-1].makespan = makespan
            self.rounds[-1].serial_overhead = serial_overhead

    # -- queries ----------------------------------------------------------------------

    def all_firings(self) -> List[FiringEvent]:
        return [event for record in self.rounds for event in record.firings]

    def firings_of(self, module_path: str) -> List[FiringEvent]:
        return [e for e in self.all_firings() if e.module_path == module_path]

    def transition_sequence(self, module_path: str) -> List[str]:
        return [e.transition_name for e in self.firings_of(module_path)]

    def interaction_sequence(self) -> List[Tuple[str, str]]:
        """(module path, interaction name) pairs in firing order, inputs only."""
        return [
            (e.module_path, e.interaction_name)
            for e in self.all_firings()
            if e.interaction_name is not None
        ]

    def first_round_where(self, module_path: str, transition_name: str) -> Optional[int]:
        """Index of the first round in which the given transition fired."""
        for event in self.all_firings():
            if event.module_path == module_path and event.transition_name == transition_name:
                return event.round_index
        return None

    def concurrency_profile(self) -> List[int]:
        """Number of firings per round — the runtime's achieved parallelism."""
        return [len(record.firings) for record in self.rounds]

    def describe(self, max_rounds: Optional[int] = None) -> str:
        """Human-readable rendering used by the examples."""
        lines: List[str] = []
        rounds = self.rounds if max_rounds is None else self.rounds[:max_rounds]
        for record in rounds:
            lines.append(
                f"round {record.index}: makespan={record.makespan:.2f} "
                f"(serial overhead {record.serial_overhead:.2f})"
            )
            for event in record.firings:
                what = event.transition_name
                if event.interaction_name:
                    what += f" <- {event.interaction_name}"
                lines.append(
                    f"    {event.module_path}: {what} "
                    f"[{event.state_before} -> {event.state_after}] "
                    f"t={event.time:g} on "
                    f"{event.machine}/unit{event.unit_id}"
                )
        return "\n".join(lines)
