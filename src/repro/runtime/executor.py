"""The specification executor: Estelle semantics on a simulated multiprocessor.

This is the runtime a code generator would emit.  It repeatedly asks the
scheduler for a round plan (which modules fire), executes the selected
transitions, and accounts the cost of every piece of work to the execution
unit — and through the unit to the processor — that performs it:

* transition action cost (``Transition.cost`` scaled by the machine model),
* transition-selection cost (dispatch strategy, charged per examined module),
* scheduler bookkeeping (serial for the centralised scheduler, per-unit for
  the decentralised one),
* message-passing cost, depending on whether an interaction stays within a
  unit, crosses units on the same machine (thread synchronisation) or crosses
  machines (remote message),
* context-switch cost when several runnable units share a processor.

The round's *makespan* is the serial scheduler overhead plus the busiest
processor's work; simulated time advances by the makespan per round.  Speedup
numbers in the benchmarks are ratios of the elapsed time of two executions of
the same specification under different mappings/machines, exactly the
methodology of the paper's Section 5.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from ..estelle.errors import SchedulingError
from ..estelle.module import Module
from ..estelle.specification import Specification
from ..sim.machine import Cluster, CostModel, Machine
from ..sim.metrics import ExecutionMetrics
from .dispatch import DispatchStrategy, TableDrivenDispatch
from .mapping import ExecutionUnit, MappingStrategy, SystemMapping, ThreadPerModuleMapping
from .scheduler import DecentralisedScheduler, PlannedFiring, RoundPlan, Scheduler
from .tracing import ExecutionTrace, FiringEvent


class SpecificationExecutor:
    """Executes a validated specification on a simulated cluster."""

    def __init__(
        self,
        specification: Specification,
        cluster: Cluster,
        mapping: Optional[MappingStrategy] = None,
        scheduler: Optional[Scheduler] = None,
        dispatch: Optional[DispatchStrategy] = None,
        cost_model: Optional[CostModel] = None,
        trace: bool = False,
    ):
        self.specification = specification
        self.cluster = cluster
        self.mapping_strategy = mapping or ThreadPerModuleMapping()
        self.scheduler = scheduler or DecentralisedScheduler()
        self.dispatch = dispatch or TableDrivenDispatch()
        self.cost_model = cost_model or cluster.machines()[0].cost_model
        self.trace = ExecutionTrace(enabled=trace)
        self.metrics = ExecutionMetrics()
        self.deadlocked = False
        self._round_index = 0

        specification.validate()
        self._mapping: SystemMapping = self.mapping_strategy.compute(
            specification, cluster
        )
        # Modules created dynamically after the mapping was computed inherit
        # their parent's unit (the paper's runtime attaches a new connection
        # handler to the thread that created it unless remapped).
        self._dynamic_unit: Dict[str, ExecutionUnit] = {}

    # -- mapping helpers ----------------------------------------------------------

    @property
    def mapping(self) -> SystemMapping:
        return self._mapping

    def remap(self) -> None:
        """Recompute the module-to-unit mapping (e.g. after many inits)."""
        self._mapping = self.mapping_strategy.compute(self.specification, self.cluster)
        self._dynamic_unit.clear()

    def unit_of(self, module: Module) -> ExecutionUnit:
        """Execution unit of a module, resolving dynamically created modules."""
        path = module.path
        if self._mapping.knows(path):
            return self._mapping.unit_of(path)
        if path in self._dynamic_unit:
            return self._dynamic_unit[path]
        ancestor = module.parent
        while ancestor is not None:
            if self._mapping.knows(ancestor.path):
                unit = self._mapping.unit_of(ancestor.path)
                self._dynamic_unit[path] = unit
                return unit
            if ancestor.path in self._dynamic_unit:
                unit = self._dynamic_unit[ancestor.path]
                self._dynamic_unit[path] = unit
                return unit
            ancestor = ancestor.parent
        raise SchedulingError(
            f"cannot determine an execution unit for module {path!r}"
        )

    def _unit_of_path(self, path: str) -> Optional[ExecutionUnit]:
        if self._mapping.knows(path):
            return self._mapping.unit_of(path)
        return self._dynamic_unit.get(path)

    # -- execution ------------------------------------------------------------------

    def run(
        self,
        max_rounds: int = 10_000,
        stop_when_quiescent: bool = True,
    ) -> ExecutionMetrics:
        """Run rounds until quiescence (no enabled transition) or ``max_rounds``."""
        for _ in range(max_rounds):
            progressed = self.step_round()
            if not progressed and stop_when_quiescent:
                break
        return self.metrics

    def step_round(self) -> bool:
        """Execute one computation round; returns False when nothing fired."""
        plan = self.scheduler.plan_round(self.specification, self.dispatch)
        if plan.empty:
            self.deadlocked = self.specification.pending_interactions() > 0
            return False

        self._round_index += 1
        self.trace.start_round(self._round_index)

        unit_work: Dict[int, float] = defaultdict(float)
        units_by_id: Dict[int, ExecutionUnit] = {}

        serial_overhead = self._charge_selection(plan, unit_work, units_by_id)
        self._charge_firings(plan, unit_work, units_by_id)
        makespan = self._account_round(serial_overhead, unit_work, units_by_id)

        self.metrics.rounds += 1
        self.metrics.elapsed_time += makespan
        self.metrics.round_makespans.append(makespan)
        self.trace.finish_round(makespan, serial_overhead)
        return True

    # -- selection overhead -----------------------------------------------------------

    def _charge_selection(
        self,
        plan: RoundPlan,
        unit_work: Dict[int, float],
        units_by_id: Dict[int, ExecutionUnit],
    ) -> float:
        """Charge scheduler bookkeeping + dispatch scanning; return serial part."""
        per_module = self.scheduler.per_module_cost
        scan_total = sum(plan.examined_costs.values())
        if self.scheduler.centralised:
            serial = per_module * plan.examined_modules + scan_total
            self.metrics.scheduler_time += per_module * plan.examined_modules
            self.metrics.dispatch_time += scan_total
            return serial

        for path, scan_cost in plan.examined_costs.items():
            unit = self._unit_of_path(path)
            if unit is None:
                # Module examined before any firing established its unit; it
                # will be resolved when it fires.  Charge it to no unit.
                continue
            units_by_id.setdefault(unit.uid, unit)
            unit_work[unit.uid] += per_module + scan_cost
            self.metrics.scheduler_time += per_module
            self.metrics.dispatch_time += scan_cost
        return 0.0

    # -- firing ------------------------------------------------------------------------

    def _charge_firings(
        self,
        plan: RoundPlan,
        unit_work: Dict[int, float],
        units_by_id: Dict[int, ExecutionUnit],
    ) -> None:
        for firing in plan.firings:
            module = firing.module
            unit = self.unit_of(module)
            units_by_id.setdefault(unit.uid, unit)

            sent_before = {
                name: ip.sent_count for name, ip in module.ips.items()
            }

            if firing.is_external:
                cost = module.external_step() * self.cost_model.transition_cost_scale
                self.metrics.external_steps += 1
                transition_name = "external_step"
                state_before = state_after = module.state
                interaction_name = None
            else:
                record = firing.result.transition.fire(module)
                cost = record.cost * self.cost_model.transition_cost_scale
                transition_name = record.transition.name
                state_before = record.state_before
                state_after = record.state_after
                interaction_name = (
                    record.interaction.name if record.interaction else None
                )

            module.note_fired()
            self.metrics.transitions_fired += 1
            self.metrics.transition_time += cost
            unit_work[unit.uid] += cost

            unit_work[unit.uid] += self._charge_messages(module, unit, sent_before)

            self.trace.record_firing(
                FiringEvent(
                    round_index=self._round_index,
                    module_path=module.path,
                    transition_name=transition_name,
                    state_before=state_before,
                    state_after=state_after,
                    interaction_name=interaction_name,
                    cost=cost,
                    unit_id=unit.uid,
                    machine=unit.machine,
                )
            )

    def _charge_messages(
        self,
        module: Module,
        unit: ExecutionUnit,
        sent_before: Dict[str, int],
    ) -> float:
        """Cost of the interactions the firing just emitted."""
        cost = 0.0
        for name, point in module.ips.items():
            delta = point.sent_count - sent_before.get(name, 0)
            if delta <= 0 or point.peer is None:
                continue
            peer_owner = point.peer.owner
            peer_unit = (
                self.unit_of(peer_owner) if isinstance(peer_owner, Module) else None
            )
            if peer_unit is None or peer_unit.uid == unit.uid:
                per_message = self.cost_model.intra_unit_message_cost
                self.metrics.messages_intra_unit += delta
            elif peer_unit.machine != unit.machine:
                per_message = self.cost_model.remote_message_cost
                self.metrics.messages_cross_machine += delta
            else:
                per_message = self.cost_model.sync_cost
                self.metrics.messages_cross_unit += delta
            cost += per_message * delta
            self.metrics.sync_time += per_message * delta
        return cost

    # -- per-round time accounting --------------------------------------------------------

    def _account_round(
        self,
        serial_overhead: float,
        unit_work: Dict[int, float],
        units_by_id: Dict[int, ExecutionUnit],
    ) -> float:
        processor_work: Dict[Tuple[str, int], float] = defaultdict(float)
        processor_units: Dict[Tuple[str, int], int] = defaultdict(int)

        for uid, work in unit_work.items():
            if work <= 0:
                continue
            unit = units_by_id[uid]
            key = (unit.machine, unit.processor_index)
            processor_work[key] += work
            processor_units[key] += 1

        context_switch_total = 0.0
        for key, active_units in processor_units.items():
            if active_units > 1:
                penalty = self.cost_model.context_switch_cost * (active_units - 1)
                processor_work[key] += penalty
                context_switch_total += penalty
                machine = self.cluster.get(key[0])
                machine.processors[key[1]].context_switches += active_units - 1
        self.metrics.context_switch_time += context_switch_total

        for (machine_name, proc_index), work in processor_work.items():
            machine = self.cluster.get(machine_name)
            machine.processors[proc_index].busy_time += work
            label = f"{machine_name}/cpu{proc_index}"
            self.metrics.per_processor_busy[label] = (
                self.metrics.per_processor_busy.get(label, 0.0) + work
            )

        parallel_part = max(processor_work.values()) if processor_work else 0.0
        return serial_overhead + parallel_part


def run_specification(
    specification: Specification,
    cluster: Cluster,
    mapping: Optional[MappingStrategy] = None,
    scheduler: Optional[Scheduler] = None,
    dispatch: Optional[DispatchStrategy] = None,
    cost_model: Optional[CostModel] = None,
    max_rounds: int = 10_000,
    trace: bool = False,
) -> Tuple[ExecutionMetrics, SpecificationExecutor]:
    """Convenience wrapper: build an executor, run to quiescence, return both."""
    executor = SpecificationExecutor(
        specification,
        cluster,
        mapping=mapping,
        scheduler=scheduler,
        dispatch=dispatch,
        cost_model=cost_model,
        trace=trace,
    )
    metrics = executor.run(max_rounds=max_rounds)
    return metrics, executor
