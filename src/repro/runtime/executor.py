"""The specification executor: Estelle semantics on a simulated multiprocessor.

This is the runtime a code generator would emit.  It repeatedly asks the
scheduler for a round plan (which modules fire), executes the selected
transitions, and accounts the cost of every piece of work to the execution
unit — and through the unit to the processor — that performs it:

* transition action cost (``Transition.cost`` scaled by the machine model),
* transition-selection cost (dispatch strategy, charged per examined module),
* scheduler bookkeeping (serial for the centralised scheduler, per-unit for
  the decentralised one),
* message-passing cost, depending on whether an interaction stays within a
  unit, crosses units on the same machine (thread synchronisation) or crosses
  machines (remote message),
* context-switch cost when several runnable units share a processor.

The round's *makespan* is the serial scheduler overhead plus the busiest
processor's work; simulated time advances by the makespan per round.  Speedup
numbers in the benchmarks are ratios of the elapsed time of two executions of
the same specification under different mappings/machines, exactly the
methodology of the paper's Section 5.

Backends
--------

The executor itself is one way to run a specification; the *backend
abstraction* at the bottom of this module generalises it.  An
:class:`ExecutionBackend` turns a :class:`SpecSource` (a picklable recipe for
building a fresh specification — an ``.estelle`` file, inline Estelle text,
or an importable factory) into a :class:`BackendResult` carrying the firing
trace and measured wall-clock time.  :class:`InProcessBackend` wraps this
module's executor; :class:`repro.runtime.parallel.MultiprocessBackend`
registers itself here and runs each execution unit in its own OS process.
Both must produce identical firing traces on the same specification, which
is asserted by ``tests/test_parallel_backend.py`` and the CI smoke job.
"""

from __future__ import annotations

import importlib
import time
from collections import defaultdict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Type, Union

from ..estelle.errors import SchedulingError
from ..estelle.module import Module
from ..estelle.specification import Specification
from ..obs import NULL_OBS, Observability
from ..sim.machine import Cluster, CostModel, Machine
from ..sim.metrics import ExecutionMetrics
from .clock import SimulatedClock, firing_advance, next_delay_deadline
from .dispatch import DispatchStrategy, TableDrivenDispatch
from .mapping import ExecutionUnit, MappingStrategy, SystemMapping, ThreadPerModuleMapping
from .planner import IncrementalRoundPlanner, PlannerDispatch
from .scheduler import DecentralisedScheduler, PlannedFiring, RoundPlan, Scheduler
from .tracing import ExecutionTrace, FiringEvent


class SpecificationExecutor:
    """Executes a validated specification on a simulated cluster."""

    def __init__(
        self,
        specification: Specification,
        cluster: Cluster,
        mapping: Optional[MappingStrategy] = None,
        scheduler: Optional[Scheduler] = None,
        dispatch: Optional[DispatchStrategy] = None,
        cost_model: Optional[CostModel] = None,
        trace: bool = False,
        busy_work: Optional[Callable[[float], None]] = None,
        obs: Optional[Observability] = None,
    ):
        self.specification = specification
        self.cluster = cluster
        self.mapping_strategy = mapping or ThreadPerModuleMapping()
        self.scheduler = scheduler or DecentralisedScheduler()
        self.dispatch = dispatch or TableDrivenDispatch()
        #: observability handle: wall-clock metrics and lifecycle events
        #: only — it never reads or writes :attr:`clock` and never inspects
        #: module state, so canonical traces are identical with or without
        #: it (``tests/test_obs_equivalence.py``).  Defaults to the shared
        #: do-nothing bundle.
        self.obs = obs if obs is not None else NULL_OBS
        #: the simulated clock driving Estelle ``delay`` semantics: advances
        #: by the busiest unit's firing-cost sum per round, and jumps to the
        #: next delay deadline when a round plan comes up empty with timers
        #: still running.  Both execution backends derive identical clock
        #: readings, which FiringEvent.time (a canonical trace field) pins.
        self.clock = SimulatedClock.attach(specification)
        #: the incremental fused planner replaces the per-round scheduler
        #: walk when the "planner" dispatch strategy is selected.
        self.planner: Optional[IncrementalRoundPlanner] = (
            IncrementalRoundPlanner(
                specification,
                dispatch=self.dispatch,
                clock=self.clock,
                obs=self.obs,
            )
            if isinstance(self.dispatch, PlannerDispatch)
            else None
        )
        #: cached delay-bearing modules for the interpreted strategy-
        #: independent timer pass (None = recompute).  Invalidated through
        #: the structure hook, so the per-round cost of the pass on a
        #: delay-free specification is one attribute load + an empty loop
        #: instead of an O(modules) tree walk.  Only installed when no
        #: planner owns the hooks (the planner's dirty tracking already
        #: covers timer refresh through dirty re-evaluation).
        self._delayed_modules: Optional[Tuple[Module, ...]] = None
        if self.planner is None:
            for module in specification.root.walk():
                module._structure_hook = self._note_structure_change
        self.cost_model = cost_model or cluster.machines()[0].cost_model
        #: optional hook emulating *real* per-firing processing time (the
        #: measured-speedup harness burns CPU proportional to the firing's
        #: modelled cost so wall-clock comparisons against the multiprocess
        #: backend measure the same work).
        self.busy_work = busy_work
        self.trace = ExecutionTrace(enabled=trace)
        self.metrics = ExecutionMetrics()
        self.deadlocked = False
        self._round_index = 0

        registry = self.obs.registry
        self._m_rounds = registry.counter(
            "repro_executor_rounds_total", "Computation rounds executed."
        )
        self._m_firings = registry.counter(
            "repro_executor_firings_total",
            "Transition firings (external steps included).",
        )
        self._m_stops = registry.counter(
            "repro_executor_stops_total",
            "Run loop terminations by stop reason.",
            labelnames=("reason",),
        )
        self._m_deadline_jumps = registry.counter(
            "repro_executor_deadline_jumps_total",
            "Simulated-clock jumps to the next delay deadline.",
        )
        self._h_plan = registry.histogram(
            "repro_executor_plan_seconds",
            "Wall-clock seconds spent planning each round.",
        )
        self._h_fire = registry.histogram(
            "repro_executor_fire_seconds",
            "Wall-clock seconds spent firing each round's plan.",
        )

        specification.validate()
        self._mapping: SystemMapping = self.mapping_strategy.compute(
            specification, cluster
        )
        # Modules created dynamically after the mapping was computed inherit
        # their parent's unit (the paper's runtime attaches a new connection
        # handler to the thread that created it unless remapped).  Entries of
        # released modules are evicted at the end of any round whose firings
        # changed the tree (see :meth:`_evict_released_units`), so the map is
        # bounded by the *live* dynamic population even when a long-running
        # service churns init/release indefinitely.
        self._dynamic_unit: Dict[str, ExecutionUnit] = {}
        #: set by the structure hook (interpreted path) when a child was
        #: created or released; the planner path reads the tracker's
        #: structure epoch instead.
        self._topology_changed = False

    # -- mapping helpers ----------------------------------------------------------

    @property
    def mapping(self) -> SystemMapping:
        return self._mapping

    def remap(self) -> None:
        """Recompute the module-to-unit mapping (e.g. after many inits)."""
        self._mapping = self.mapping_strategy.compute(self.specification, self.cluster)
        self._dynamic_unit.clear()

    def unit_of(self, module: Module) -> ExecutionUnit:
        """Execution unit of a module, resolving dynamically created modules."""
        path = module.path
        if self._mapping.knows(path):
            return self._mapping.unit_of(path)
        if path in self._dynamic_unit:
            return self._dynamic_unit[path]
        ancestor = module.parent
        while ancestor is not None:
            if self._mapping.knows(ancestor.path):
                unit = self._mapping.unit_of(ancestor.path)
                self._dynamic_unit[path] = unit
                return unit
            if ancestor.path in self._dynamic_unit:
                unit = self._dynamic_unit[ancestor.path]
                self._dynamic_unit[path] = unit
                return unit
            ancestor = ancestor.parent
        raise SchedulingError(
            f"cannot determine an execution unit for module {path!r}"
        )

    def _unit_of_path(self, path: str) -> Optional[ExecutionUnit]:
        if self._mapping.knows(path):
            return self._mapping.unit_of(path)
        return self._dynamic_unit.get(path)

    # -- execution ------------------------------------------------------------------

    def run(
        self,
        max_rounds: int = 10_000,
        stop_when_quiescent: bool = True,
        deadline: Optional[float] = None,
    ) -> ExecutionMetrics:
        """Run rounds until quiescence, ``max_rounds``, or a clock deadline.

        ``metrics.stop_reason`` records which of the three actually ended the
        loop — ``"quiescent"`` (nothing enabled, no timer pending),
        ``"budget"`` (``max_rounds`` exhausted with work still possible) or
        ``"deadline"`` (the simulated clock reached ``deadline`` before the
        next round started).  ``deadline`` is simulated time: no round begins
        at or after it, so a timeslicing caller can resume later and obtain
        the same rounds a single uninterrupted run would have produced.
        """
        self.metrics.stop_reason = "budget"
        for _ in range(max_rounds):
            if deadline is not None and self.clock.now >= deadline:
                self.metrics.stop_reason = "deadline"
                break
            progressed = self.step_round()
            if not progressed and stop_when_quiescent:
                self.metrics.stop_reason = "quiescent"
                break
        if self.planner is not None:
            self.planner.flush_metrics()
        self._m_stops.labels(reason=self.metrics.stop_reason).inc()
        self.obs.events.emit(
            "run_stop",
            specification=self.specification.name,
            stop_reason=self.metrics.stop_reason,
            rounds=self.metrics.rounds,
            transitions_fired=self.metrics.transitions_fired,
        )
        return self.metrics

    # -- checkpoint/restore -------------------------------------------------------

    def snapshot(self) -> "ExecutorSnapshot":
        """Capture a picklable cut of the full executor state.

        The snapshot holds exactly what resumption needs for a
        byte-identical canonical trace suffix — module control states,
        variables, IP queues, armed delay timers, dynamic topology,
        ``<var>#<serial>`` counters, the simulated clock and the round
        cursor (see :mod:`repro.runtime.checkpoint`).  EXTERNAL bodies are
        rejected: their hand-coded Python state is outside the inventory.
        """
        from .checkpoint import capture_executor

        return capture_executor(self)

    def restore(self, snapshot: "ExecutorSnapshot") -> None:
        """Impose a :meth:`snapshot` onto this executor.

        The trace restarts empty, so running on restores yields the
        uninterrupted run's trace *suffix*; planner caches are rebuilt via
        the dirty-tracking contract's explicit invalidation.
        """
        from .checkpoint import restore_executor

        restore_executor(self, snapshot)

    def _note_structure_change(self, module: Module) -> None:
        """Structure hook (interpreted path): a child was created or
        released, so the cached delay-bearing module list is stale."""
        self._delayed_modules = None
        self._topology_changed = True

    def _evict_released_units(self) -> None:
        """Drop ``_dynamic_unit`` entries whose modules left the tree.

        Called only after a round whose firings changed the module tree
        (structure changes already force an O(tree) planner rebuild, so the
        walk here adds no new asymptotic cost).  Without this, a
        long-running process that churns ``init``/``release`` grows the map
        without bound — one stale entry per released dynamic module.
        """
        live = {module.path for module in self.specification.root.walk()}
        for path in [p for p in self._dynamic_unit if p not in live]:
            del self._dynamic_unit[path]

    def _delay_bearing_modules(self) -> Tuple[Module, ...]:
        cached = self._delayed_modules
        if cached is None:
            cached = tuple(
                module
                for module in self.specification.modules()
                if module._delayed_transitions
            )
            self._delayed_modules = cached
        return cached

    def _plan(self) -> RoundPlan:
        if self.planner is not None:
            return self.planner.plan_round()
        # Strategy-independent delay-timer pass over every delay-bearing
        # module.  The interpreted precedence walk prunes the subtree under
        # a firing parent, so select()-time refreshes alone would arm a
        # pruned child's timers later than the planner (which re-evaluates
        # every dirty module) and the multiprocess workers (which select
        # their full shard) — observable as diverging delay schedules once
        # dynamically created children carry delay clauses.  Refreshing is
        # idempotent for modules whose enabling did not change, and the
        # cached (structure-hook invalidated) module list makes the pass
        # free for delay-free specifications.
        for module in self._delay_bearing_modules():
            module.refresh_delay_timers()
        return self.scheduler.plan_round(self.specification, self.dispatch)

    def _next_deadline(self) -> Optional[float]:
        """Earliest future delay deadline, from the planner's index or a scan."""
        if self.planner is not None:
            return self.planner.next_deadline()
        return next_delay_deadline(self.specification.modules(), self.clock.now)

    def step_round(self) -> bool:
        """Execute one computation round; returns False when nothing fired.

        An empty plan is quiescence only when no delay timer is running:
        otherwise simulated time is the missing enabler, so the clock jumps
        to the earliest pending deadline and planning retries (each jump
        strictly advances the clock and consumes at least one armed timer,
        so the retry loop terminates).
        """
        with self._h_plan.time():
            plan = self._plan()
            resume_at = self.clock.now
            while plan.empty:
                deadline = self._next_deadline()
                if deadline is None or deadline <= self.clock.now:
                    # Quiescent for real.  Jumps taken on the way here chased
                    # *stale* deadline-index entries (timers disarmed before
                    # expiry) and must not outlive the round: rewind so the
                    # final clock reading stays identical to the strategies
                    # that scan live timers and never jump at quiescence.
                    self.clock.now = resume_at
                    self.deadlocked = self.specification.pending_interactions() > 0
                    return False
                self._m_deadline_jumps.inc()
                self.obs.events.emit(
                    "deadline_jump", from_time=self.clock.now, to_time=deadline
                )
                self.clock.now = deadline
                plan = self._plan()

        self._round_index += 1
        self.trace.start_round(self._round_index)
        self.obs.events.emit("round_start", round_index=self._round_index)

        unit_work: Dict[int, float] = defaultdict(float)
        units_by_id: Dict[int, ExecutionUnit] = {}
        firing_work: Dict[int, float] = defaultdict(float)

        epoch_before = (
            self.planner.tracker.structure_epoch if self.planner is not None else 0
        )
        self._topology_changed = False
        fired_before = self.metrics.transitions_fired
        with self._h_fire.time():
            serial_overhead = self._charge_selection(plan, unit_work, units_by_id)
            self._charge_firings(plan, unit_work, units_by_id, firing_work)
        structure_changed = (
            self.planner.tracker.structure_epoch != epoch_before
            if self.planner is not None
            else self._topology_changed
        )
        if structure_changed and self._dynamic_unit:
            self._evict_released_units()
        makespan = self._account_round(serial_overhead, unit_work, units_by_id)

        self.metrics.rounds += 1
        self.metrics.elapsed_time += makespan
        self.metrics.round_makespans.append(makespan)
        self._m_rounds.inc()
        self._m_firings.inc(self.metrics.transitions_fired - fired_before)
        self.obs.events.emit(
            "round_end",
            round_index=self._round_index,
            fired=self.metrics.transitions_fired - fired_before,
            makespan=makespan,
        )
        self.trace.finish_round(makespan, serial_overhead)
        # The delay clock advances by the dispatch-independent component of
        # the makespan: the busiest unit's firing work (events were stamped
        # with the round's *start* time above, before this advance).
        self.clock.advance(firing_advance(firing_work))
        return True

    # -- selection overhead -----------------------------------------------------------

    def _charge_selection(
        self,
        plan: RoundPlan,
        unit_work: Dict[int, float],
        units_by_id: Dict[int, ExecutionUnit],
    ) -> float:
        """Charge scheduler bookkeeping + dispatch scanning; return serial part."""
        per_module = self.scheduler.per_module_cost
        scan_total = sum(plan.examined_costs.values())
        if self.scheduler.centralised:
            serial = per_module * plan.examined_modules + scan_total
            self.metrics.scheduler_time += per_module * plan.examined_modules
            self.metrics.dispatch_time += scan_total
            return serial

        for path, scan_cost in plan.examined_costs.items():
            unit = self._unit_of_path(path)
            if unit is None:
                # Module examined before any firing established its unit; it
                # will be resolved when it fires.  Charge it to no unit.
                continue
            units_by_id.setdefault(unit.uid, unit)
            unit_work[unit.uid] += per_module + scan_cost
            self.metrics.scheduler_time += per_module
            self.metrics.dispatch_time += scan_cost
        return 0.0

    # -- firing ------------------------------------------------------------------------

    def _charge_firings(
        self,
        plan: RoundPlan,
        unit_work: Dict[int, float],
        units_by_id: Dict[int, ExecutionUnit],
        firing_work: Dict[int, float],
    ) -> None:
        for firing in plan.firings:
            module = firing.module
            if module.released:
                # Released by an earlier firing of this same round: the plan
                # was built before the release, but a released module must
                # never fire (Estelle semantics) — skip it without tracing.
                continue
            unit = self.unit_of(module)
            units_by_id.setdefault(unit.uid, unit)

            sent_before = {
                name: ip.sent_count for name, ip in module.ips.items()
            }

            if firing.is_external:
                cost = module.external_step() * self.cost_model.transition_cost_scale
                self.metrics.external_steps += 1
                transition_name = "external_step"
                state_before = state_after = module.state
                interaction_name = None
            else:
                record = firing.result.transition.fire(module)
                cost = record.cost * self.cost_model.transition_cost_scale
                transition_name = record.transition.name
                state_before = record.state_before
                state_after = record.state_after
                interaction_name = (
                    record.interaction.name if record.interaction else None
                )

            if self.busy_work is not None:
                self.busy_work(cost)

            module.note_fired()
            self.metrics.transitions_fired += 1
            self.metrics.transition_time += cost
            unit_work[unit.uid] += cost
            firing_work[unit.uid] += cost

            unit_work[unit.uid] += self._charge_messages(module, unit, sent_before)

            self.trace.record_firing(
                FiringEvent(
                    round_index=self._round_index,
                    module_path=module.path,
                    transition_name=transition_name,
                    state_before=state_before,
                    state_after=state_after,
                    interaction_name=interaction_name,
                    cost=cost,
                    unit_id=unit.uid,
                    machine=unit.machine,
                    time=self.clock.now,
                )
            )

    def _charge_messages(
        self,
        module: Module,
        unit: ExecutionUnit,
        sent_before: Dict[str, int],
    ) -> float:
        """Cost of the interactions the firing just emitted."""
        cost = 0.0
        for name, point in module.ips.items():
            delta = point.sent_count - sent_before.get(name, 0)
            if delta <= 0 or point.peer is None:
                continue
            peer_owner = point.peer.owner
            peer_unit = (
                self.unit_of(peer_owner) if isinstance(peer_owner, Module) else None
            )
            if peer_unit is None or peer_unit.uid == unit.uid:
                per_message = self.cost_model.intra_unit_message_cost
                self.metrics.messages_intra_unit += delta
            elif peer_unit.machine != unit.machine:
                per_message = self.cost_model.remote_message_cost
                self.metrics.messages_cross_machine += delta
            else:
                per_message = self.cost_model.sync_cost
                self.metrics.messages_cross_unit += delta
            cost += per_message * delta
            self.metrics.sync_time += per_message * delta
        return cost

    # -- per-round time accounting --------------------------------------------------------

    def _account_round(
        self,
        serial_overhead: float,
        unit_work: Dict[int, float],
        units_by_id: Dict[int, ExecutionUnit],
    ) -> float:
        processor_work: Dict[Tuple[str, int], float] = defaultdict(float)
        processor_units: Dict[Tuple[str, int], int] = defaultdict(int)

        for uid, work in unit_work.items():
            if work <= 0:
                continue
            unit = units_by_id[uid]
            key = (unit.machine, unit.processor_index)
            processor_work[key] += work
            processor_units[key] += 1

        context_switch_total = 0.0
        for key, active_units in processor_units.items():
            if active_units > 1:
                penalty = self.cost_model.context_switch_cost * (active_units - 1)
                processor_work[key] += penalty
                context_switch_total += penalty
                machine = self.cluster.get(key[0])
                machine.processors[key[1]].context_switches += active_units - 1
        self.metrics.context_switch_time += context_switch_total

        for (machine_name, proc_index), work in processor_work.items():
            machine = self.cluster.get(machine_name)
            machine.processors[proc_index].busy_time += work
            label = f"{machine_name}/cpu{proc_index}"
            self.metrics.per_processor_busy[label] = (
                self.metrics.per_processor_busy.get(label, 0.0) + work
            )

        parallel_part = max(processor_work.values()) if processor_work else 0.0
        return serial_overhead + parallel_part


def run_specification(
    specification: Specification,
    cluster: Cluster,
    mapping: Optional[MappingStrategy] = None,
    scheduler: Optional[Scheduler] = None,
    dispatch: Optional[DispatchStrategy] = None,
    cost_model: Optional[CostModel] = None,
    max_rounds: int = 10_000,
    trace: bool = False,
    obs: Optional[Observability] = None,
) -> Tuple[ExecutionMetrics, SpecificationExecutor]:
    """Convenience wrapper: build an executor, run to quiescence, return both."""
    executor = SpecificationExecutor(
        specification,
        cluster,
        mapping=mapping,
        scheduler=scheduler,
        dispatch=dispatch,
        cost_model=cost_model,
        trace=trace,
        obs=obs,
    )
    metrics = executor.run(max_rounds=max_rounds)
    return metrics, executor


# ---------------------------------------------------------------------------
# the backend abstraction
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SpecSource:
    """A picklable recipe for building a fresh :class:`Specification`.

    Backends (notably the multiprocess one) cannot ship live specification
    objects across process boundaries: frontend-lowered module classes are
    created dynamically and interpret closures over their ASTs.  What *can*
    cross is the recipe — an ``.estelle`` file path, inline Estelle text, or
    a dotted reference to an importable factory — and every process that
    needs the specification rebuilds it deterministically from the recipe.

    ``kwargs`` is stored as a sorted tuple of pairs so sources hash and
    compare by value.
    """

    kind: str  # "estelle-file" | "estelle-text" | "factory"
    payload: str
    kwargs: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def from_estelle_file(cls, path: Union[str, Path]) -> "SpecSource":
        return cls(kind="estelle-file", payload=str(path))

    @classmethod
    def from_estelle_text(cls, text: str, filename: str = "<estelle>") -> "SpecSource":
        return cls(kind="estelle-text", payload=text, kwargs=(("filename", filename),))

    @classmethod
    def from_factory(cls, reference: str, **kwargs: Any) -> "SpecSource":
        """``reference`` is ``"package.module:callable"``; the callable must
        return a :class:`Specification` and its kwargs must be picklable."""
        if ":" not in reference:
            raise ValueError(
                f"factory reference {reference!r} must look like 'package.module:callable'"
            )
        return cls(kind="factory", payload=reference, kwargs=tuple(sorted(kwargs.items())))

    def build(self) -> Specification:
        """Build (and validate) a fresh specification from the recipe."""
        if self.kind == "estelle-file":
            from ..estelle.frontend import compile_file

            return compile_file(self.payload)
        if self.kind == "estelle-text":
            from ..estelle.frontend import compile_source

            return compile_source(self.payload, **dict(self.kwargs))
        if self.kind == "factory":
            module_name, _, attribute = self.payload.partition(":")
            factory = getattr(importlib.import_module(module_name), attribute)
            specification = factory(**dict(self.kwargs))
            if not isinstance(specification, Specification):
                raise TypeError(
                    f"factory {self.payload!r} returned "
                    f"{type(specification).__name__}, not a Specification"
                )
            return specification
        raise ValueError(f"unknown SpecSource kind {self.kind!r}")


@dataclass
class BackendResult:
    """What an execution backend reports back.

    ``wall_seconds`` is *measured* wall-clock time of the round loop (worker
    start-up excluded for the multiprocess backend), as opposed to the
    simulated ``metrics.elapsed_time`` the in-process executor models.
    """

    backend: str
    trace: ExecutionTrace
    rounds: int
    transitions_fired: int
    wall_seconds: float
    deadlocked: bool
    workers: int = 1
    metrics: Optional[ExecutionMetrics] = None
    #: final reading of the simulated delay clock (identical across backends
    #: on the same specification — it is derived from declared costs, not
    #: wall time; see :mod:`repro.runtime.clock`).
    simulated_time: float = 0.0
    #: why the round loop stopped: ``"quiescent"`` or ``"budget"`` (see
    #: :data:`repro.sim.metrics.STOP_REASONS`; backends take no deadline).
    stop_reason: Optional[str] = None
    #: wire the batch mesh ran over (``"mp-queue"``, ``"tcp"``); ``None``
    #: for backends without an inter-unit transport (in-process).
    transport: Optional[str] = None


def busy_work_for(us_per_cost: float) -> Optional[Callable[[float], None]]:
    """A CPU-burning stand-in for per-firing processing time.

    Returns a callable that spins for ``cost * us_per_cost`` microseconds, or
    ``None`` when the knob is zero.  Both backends drive it with the same
    (scaled) firing costs, so measured wall-clock ratios reflect how the
    backends overlap the *same* emulated work.
    """
    if us_per_cost <= 0:
        return None

    def work(cost: float) -> None:
        deadline = time.perf_counter() + (cost * us_per_cost) / 1e6
        while time.perf_counter() < deadline:
            pass

    return work


#: Name -> backend class; extended by :func:`register_backend` (the
#: multiprocess backend in :mod:`repro.runtime.parallel` registers itself).
_BACKEND_REGISTRY: Dict[str, Type["ExecutionBackend"]] = {}


def register_backend(cls: Type["ExecutionBackend"]) -> Type["ExecutionBackend"]:
    """Class decorator: make a backend available to :func:`backend_by_name`."""
    _BACKEND_REGISTRY[cls.name] = cls
    return cls


def backend_by_name(name: str, **kwargs: Any) -> "ExecutionBackend":
    """Factory used by benchmarks, tests and the parallel smoke CLI."""
    try:
        backend_class = _BACKEND_REGISTRY[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown execution backend {name!r}; choose from {sorted(_BACKEND_REGISTRY)}"
        ) from exc
    return backend_class(**kwargs)


class ExecutionBackend:
    """Interface: run a specification (from a :class:`SpecSource`) to
    quiescence and report the firing trace plus measured timings.

    ``dispatch`` is passed by *name* (plus kwargs) rather than as an
    instance because dispatch strategies hold per-class caches of compiled
    selectors and guard closures that cannot cross process boundaries; each
    process reconstructs its own strategy from the name.
    """

    name = "abstract"

    def execute(
        self,
        source: SpecSource,
        cluster: Cluster,
        *,
        mapping: Optional[MappingStrategy] = None,
        scheduler: Optional[Scheduler] = None,
        dispatch: str = "table-driven",
        dispatch_kwargs: Optional[Dict[str, Any]] = None,
        max_rounds: int = 10_000,
        busy_work_us_per_cost: float = 0.0,
        obs: Optional[Observability] = None,
    ) -> BackendResult:
        raise NotImplementedError


@register_backend
class InProcessBackend(ExecutionBackend):
    """The conventional backend: one process, the simulated-cluster executor.

    Parallelism is *modelled* (per-unit cost accounting and per-round
    makespans) rather than exercised; the returned ``metrics`` carry the
    model's predictions while ``wall_seconds`` measures the actual serial
    execution."""

    name = "in-process"

    def execute(
        self,
        source: SpecSource,
        cluster: Cluster,
        *,
        mapping: Optional[MappingStrategy] = None,
        scheduler: Optional[Scheduler] = None,
        dispatch: str = "table-driven",
        dispatch_kwargs: Optional[Dict[str, Any]] = None,
        max_rounds: int = 10_000,
        busy_work_us_per_cost: float = 0.0,
        obs: Optional[Observability] = None,
    ) -> BackendResult:
        from .dispatch import dispatch_by_name

        specification = source.build()
        executor = SpecificationExecutor(
            specification,
            cluster,
            mapping=mapping,
            scheduler=scheduler,
            dispatch=dispatch_by_name(dispatch, **(dispatch_kwargs or {})),
            trace=True,
            busy_work=busy_work_for(busy_work_us_per_cost),
            obs=obs,
        )
        started = time.perf_counter()
        metrics = executor.run(max_rounds=max_rounds)
        wall = time.perf_counter() - started
        return BackendResult(
            backend=self.name,
            trace=executor.trace,
            rounds=metrics.rounds,
            transitions_fired=metrics.transitions_fired,
            wall_seconds=wall,
            deadlocked=executor.deadlocked,
            workers=1,
            metrics=metrics,
            simulated_time=executor.clock.now,
            stop_reason=metrics.stop_reason,
        )
