"""Estelle schedulers: transition selection per computation round.

The Estelle execution model proceeds in *computation steps* (rounds).  In each
round the scheduler determines, per system module, which modules fire a
transition, respecting:

* **parent precedence** — a child may only fire if no ancestor of it has an
  enabled transition in this round;
* **process parallelism** — children of a ``process``/``systemprocess``
  parent may all fire in the same round;
* **activity exclusivity** — of the children of an ``activity``/
  ``systemactivity`` parent, at most one child *subtree* fires per round;
* system modules are mutually independent and always run in parallel.

The paper found that for protocols with small processing times *"the Estelle
scheduler of many available compilers becomes the bottleneck for the speedup.
Measurements show a runtime percentage of the scheduler of up to 80%.  Our
scheduler shows better runtime behavior, as it is decentralized."*  Both
schedulers below produce the *same* selection (so functional behaviour is
identical); they differ only in where the selection overhead is charged:

* :class:`CentralisedScheduler` — one scheduler instance walks every module of
  the specification; its cost is serial and adds directly to the round
  makespan.
* :class:`DecentralisedScheduler` — each execution unit scans only its own
  modules; the cost is charged to the unit and therefore overlaps across
  processors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import AbstractSet, Dict, Iterable, List, Optional, Tuple

from ..estelle.module import Module
from ..estelle.specification import Specification
from .dispatch import DispatchResult, DispatchStrategy


@dataclass
class PlannedFiring:
    """One module selected to execute in the current round."""

    module: Module
    result: DispatchResult

    @property
    def is_external(self) -> bool:
        return self.result.external


@dataclass
class RoundPlan:
    """The scheduler's output for one computation round."""

    firings: List[PlannedFiring] = field(default_factory=list)
    #: dispatch cost per module path for modules that were *examined*,
    #: whether or not they fire (scanning disabled modules costs time too).
    examined_costs: Dict[str, float] = field(default_factory=dict)
    #: number of modules examined during selection.
    examined_modules: int = 0

    @property
    def empty(self) -> bool:
        return not self.firings


def _select_subtree(
    module: Module,
    dispatch: DispatchStrategy,
    plan: RoundPlan,
) -> bool:
    """Recursive Estelle selection over one subtree.

    Returns True when this subtree contributed at least one firing (used by
    the activity-exclusivity rule of the caller).
    """
    result = dispatch.select(module)
    plan.examined_modules += 1
    plan.examined_costs[module.path] = (
        plan.examined_costs.get(module.path, 0.0) + result.cost
    )

    if result.fires:
        # Parent precedence: the module itself fires, its children do not.
        plan.firings.append(PlannedFiring(module=module, result=result))
        return True

    children = list(module.children.values())
    if not children:
        return False

    if module.attribute.children_parallel:
        fired_any = False
        for child in children:
            fired_any |= _select_subtree(child, dispatch, plan)
        return fired_any

    # activity / systemactivity parent: children are mutually exclusive.
    for child in children:
        if _select_subtree(child, dispatch, plan):
            return True
    return False


class Scheduler:
    """Base scheduler: produces the round plan shared by both variants."""

    name = "abstract"
    centralised = True

    def __init__(self, per_module_cost: float = 0.25):
        #: bookkeeping cost per module examined per round, *excluding* the
        #: dispatch scan cost (which the dispatch strategy reports itself).
        self.per_module_cost = per_module_cost

    def plan_round(
        self,
        specification: Specification,
        dispatch: DispatchStrategy,
        roots: Optional[Iterable[Module]] = None,
    ) -> RoundPlan:
        """Select the transitions to fire in the next round.

        ``roots`` restricts the walk to a subset of the specification's
        system modules (callers must pass them in declaration order).
        System modules are mutually independent — precedence never crosses
        system subtrees — so the restricted plan is exactly the global
        plan's projection onto those subtrees.  The multiprocess backend's
        barrier relaxation leans on this: a relaxed worker plans only its
        own roots, the coordinator plans only the barrier roots, and the
        concatenation (in declaration order) reproduces the global plan.
        """
        plan = RoundPlan()
        for system_module in (
            roots if roots is not None else specification.system_modules()
        ):
            _select_subtree(system_module, dispatch, plan)
        return plan

    # -- overhead accounting (strategy-specific) -----------------------------------

    def serial_overhead(self, plan: RoundPlan) -> float:
        """Overhead that serialises the whole round (centralised scheduler)."""
        raise NotImplementedError

    def unit_overhead(self, plan: RoundPlan, unit_module_paths: Iterable[str]) -> float:
        """Overhead charged to one execution unit (decentralised scheduler).

        Callers that evaluate many rounds against the same unit should pass a
        precomputed ``frozenset`` of the unit's module paths; it is used for
        membership tests as-is, without per-call set rebuilding.
        """
        raise NotImplementedError


class CentralisedScheduler(Scheduler):
    """A single, global scheduler loop (the conventional generated runtime).

    All per-module selection work — bookkeeping *and* transition scanning —
    happens in one thread, so it adds serially to every round regardless of
    how many processors are available.
    """

    name = "centralised"
    centralised = True

    def serial_overhead(self, plan: RoundPlan) -> float:
        scan_cost = sum(plan.examined_costs.values())
        return self.per_module_cost * plan.examined_modules + scan_cost

    def unit_overhead(self, plan: RoundPlan, unit_module_paths: Iterable[str]) -> float:
        return 0.0


class DecentralisedScheduler(Scheduler):
    """The paper's decentralised scheduler.

    *"Each part only has to check the transition of one module.  This can be
    done in parallel."* — per-module selection cost is charged to the
    execution unit owning the module and therefore overlaps across
    processors; nothing is charged serially.
    """

    name = "decentralised"
    centralised = False

    def serial_overhead(self, plan: RoundPlan) -> float:
        return 0.0

    def unit_overhead(self, plan: RoundPlan, unit_module_paths: Iterable[str]) -> float:
        # Charge the unit from its own bucket: iterate the unit's (usually
        # small) path set and look each path up in the plan's examined-cost
        # dict, instead of scanning every examined module and membership-
        # testing it against the unit.  Across all units of a mapping this is
        # one pass over the module population per plan, not units × modules.
        member = (
            unit_module_paths
            if isinstance(unit_module_paths, AbstractSet)
            else frozenset(unit_module_paths)
        )
        examined_costs = plan.examined_costs
        examined_here = 0
        scan_cost = 0.0
        for path in member:
            cost = examined_costs.get(path)
            if cost is not None:
                examined_here += 1
                scan_cost += cost
        return self.per_module_cost * examined_here + scan_cost


def scheduler_by_name(name: str, **kwargs) -> Scheduler:
    """Factory used by benchmarks (`"centralised"` / `"decentralised"`)."""
    schedulers = {
        CentralisedScheduler.name: CentralisedScheduler,
        DecentralisedScheduler.name: DecentralisedScheduler,
    }
    try:
        return schedulers[name](**kwargs)
    except KeyError as exc:
        raise ValueError(
            f"unknown scheduler {name!r}; choose from {sorted(schedulers)}"
        ) from exc
