"""Smoke CLI: run a specification on both backends, assert trace equality.

This is the command CI runs on every supported Python version::

    PYTHONPATH=src python -m repro.runtime.parallel examples/specs/mcam_core.estelle

It builds a cluster from the specification's placement comments (one machine
per distinct ``at`` location, ``--processors`` processors each), executes the
spec on the in-process backend and on the multiprocess backend under the
same grouped mapping, and exits non-zero with a pinpointed diff if the
canonical firing traces differ by even one byte.
"""

from __future__ import annotations

import argparse
import sys

from ...estelle.frontend import compile_file
from ...sim.machine import Cluster, Machine
from ..executor import SpecSource, backend_by_name
from ..mapping import GroupedMapping
from .backend import MultiprocessBackend
from .trace import canonical_trace_bytes, trace_diff
from .transport import transport_names


def cluster_from_placements(spec_path: str, processors: int) -> Cluster:
    """One machine per distinct placement location of the specification."""
    specification = compile_file(spec_path)
    locations = sorted({p.location for p in specification.placements}) or ["local"]
    cluster = Cluster()
    for location in locations:
        cluster.add(Machine(location, processors))
    return cluster


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.parallel",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("spec", help="path to an .estelle specification")
    parser.add_argument(
        "--processors",
        type=int,
        default=1,
        help="processors per machine (bounds units per machine under the "
        "grouped mapping; default 1)",
    )
    parser.add_argument(
        "--dispatch",
        default="table-driven",
        help="dispatch strategy name (table-driven, hard-coded, generated, "
        "planner — the incremental fused round planner)",
    )
    parser.add_argument("--max-rounds", type=int, default=1000)
    parser.add_argument(
        "--transport",
        default="mp-queue",
        choices=transport_names(),
        help="wire the multiprocess backend's batch mesh runs over: "
        "mp-queue (default) or tcp (localhost socket mesh)",
    )
    parser.add_argument(
        "--busy-work-us",
        type=float,
        default=0.0,
        help="emulated processing time per cost unit, in microseconds",
    )
    parser.add_argument(
        "--relax-barrier",
        action="store_true",
        help="enable conservative lookahead: units that wholly own their "
        "delay-free system subtrees run rounds locally instead of "
        "synchronising at the global round barrier (the trace must stay "
        "byte-identical either way)",
    )
    args = parser.parse_args(argv)

    source = SpecSource.from_estelle_file(args.spec)
    cluster = cluster_from_placements(args.spec, args.processors)

    results = {}
    for backend_name in ("in-process", "multiprocess"):
        if backend_name == "multiprocess":
            backend = MultiprocessBackend(
                transport=args.transport, relax_barrier=args.relax_barrier
            )
        else:
            backend = backend_by_name(backend_name)
        results[backend_name] = backend.execute(
            source,
            cluster,
            mapping=GroupedMapping(),
            dispatch=args.dispatch,
            max_rounds=args.max_rounds,
            busy_work_us_per_cost=args.busy_work_us,
        )
        result = results[backend_name]
        wire = f" over {result.transport}" if result.transport else ""
        print(
            f"{backend_name:>12}: {result.rounds} rounds, "
            f"{result.transitions_fired} firings, {result.workers} worker(s), "
            f"wall {result.wall_seconds * 1e3:.1f} ms{wire}"
        )

    in_process, multiprocess = results["in-process"], results["multiprocess"]
    divergence = trace_diff(in_process.trace, multiprocess.trace)
    if divergence is not None:
        print(f"TRACE MISMATCH: {divergence}", file=sys.stderr)
        return 1
    identical = canonical_trace_bytes(in_process.trace) == canonical_trace_bytes(
        multiprocess.trace
    )
    if not identical:  # unreachable if trace_diff is sound, but belt-and-braces
        print("TRACE MISMATCH: byte encodings differ", file=sys.stderr)
        return 1
    print(
        f"traces byte-identical ({len(canonical_trace_bytes(in_process.trace))} "
        f"canonical bytes, {in_process.transitions_fired} firings)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
