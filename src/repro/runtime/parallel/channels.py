"""Batched, order-preserving inter-unit channels over multiprocessing queues.

The paper's runtime exchanges interactions between execution units through
shared-memory queues guarded by thread synchronisation; crossing machines
costs a remote message.  Here the units are OS processes, so interactions
travel over :mod:`multiprocessing` queues — and because every queue operation
pays a pickle + pipe round trip, messages are *batched per computation
round*: a sender flushes exactly one batch (possibly empty) per peer unit per
round, tagged with the round index, and a receiver drains exactly one batch
per peer before the next round's transition selection.

Ordering guarantees
-------------------

* Estelle interaction points are connected pairwise, so each inbound FIFO
  queue receives from exactly one peer module, which lives in exactly one
  unit and fires at most once per round — a single batch therefore carries
  every message an IP can receive in a round, already in send order.
* Within a batch, messages are tagged ``(plan_index, seq)`` — the global
  position of the firing that produced them and the send position within the
  firing — so a receiver merging several peers' batches can re-establish the
  exact global order the in-process executor would have produced.
* The round tag turns protocol bugs (a batch from a *future* round, i.e. a
  worker flushing twice) into immediate :class:`ChannelProtocolError`
  diagnostics rather than silent trace divergence.  A batch tagged with a
  *past* round is not an error but a duplicate: a crashed-and-respawned
  sender re-sends its last checkpointed round's batches (the original flush
  may have died in the queue's feeder thread), and since round tags strictly
  increase per link the receiver can discard them safely.
"""

from __future__ import annotations

import pickle
from queue import Empty
from time import monotonic
from typing import Any, Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple

from ...estelle.errors import EstelleError


class ChannelProtocolError(EstelleError):
    """The batch protocol was violated (wrong round tag, missing batch)."""


def describe_transport(
    transport: Optional[str], endpoint: Optional[str]
) -> str:
    """Render the ``[transport …, peer …]`` suffix of channel diagnostics.

    Every wire-layer error names the transport it crossed and the peer
    endpoint it was waiting on (a queue label for mp-queue, a ``host:port``
    for tcp), so a multi-transport deployment's logs pinpoint the failing
    link without correlating unit ids against an address table by hand.
    """
    if not transport and not endpoint:
        return ""
    parts = []
    if transport:
        parts.append(f"transport {transport}")
    if endpoint:
        parts.append(f"peer endpoint {endpoint}")
    return f" [{', '.join(parts)}]"


class ChannelTimeout(ChannelProtocolError):
    """No batch arrived within the receive window.

    Carries the peer unit id, round index, transport name and peer endpoint
    as structured attributes so the worker loop and the coordinator can
    render an exact diagnostic (which unit was waiting on whom, over which
    wire, for which round) instead of a bare message string.
    """

    def __init__(
        self,
        round_index: int,
        timeout_s: float,
        peer: Optional[int] = None,
        transport: Optional[str] = None,
        endpoint: Optional[str] = None,
    ) -> None:
        self.peer = peer
        self.round_index = round_index
        self.timeout_s = timeout_s
        self.transport = transport
        self.endpoint = endpoint
        source = f"from unit {peer} " if peer is not None else ""
        super().__init__(
            f"no batch {source}for round {round_index} arrived within "
            f"{timeout_s:.0f}s (peer worker dead or deadlocked?)"
            + describe_transport(transport, endpoint)
        )


class RoutedMessage(NamedTuple):
    """One interaction crossing a unit boundary.

    ``plan_index`` is the position in the round plan of the firing that sent
    it; ``seq`` the send position within that firing.  ``params`` is a sorted
    tuple of pairs so the message is hashable and pickles deterministically.
    """

    plan_index: int
    seq: int
    target_path: str
    ip_name: str
    interaction_name: str
    params: Tuple[Tuple[str, Any], ...]


class Batch(NamedTuple):
    """Everything one unit sends another within one computation round."""

    round_index: int
    messages: Tuple[RoutedMessage, ...]


def encode_batch(round_index: int, messages: Sequence[RoutedMessage]) -> bytes:
    """Serialize one batch to its wire payload (shared by all transports).

    The highest pickle protocol is used explicitly: a multiprocessing
    queue's feeder thread would otherwise fall back to the (older) default
    protocol, and a pre-encoded payload lets callers reuse their message
    buffers immediately — the batch is snapshotted at this point.
    """
    return pickle.dumps(
        Batch(round_index=round_index, messages=tuple(messages)),
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def derive_link_pairs(
    unit_ids: Sequence[int],
    pairs: Optional[Iterable[Tuple[int, int]]] = None,
) -> List[Tuple[int, int]]:
    """Validate and normalise the directed link set of a transport mesh.

    ``pairs=None`` yields the full mesh over ``unit_ids``; an explicit pair
    set is checked against the known units (self-links and unknown units are
    configuration errors, not runtime surprises).  Shared by every transport
    so the mesh topology — which unit pairs get a wire at all — is a
    transport-independent property of the mapping.
    """
    ordered = tuple(sorted(unit_ids))
    if len(set(ordered)) != len(ordered):
        raise ValueError(f"duplicate unit ids in {ordered}")
    known = set(ordered)
    if pairs is None:
        return [
            (source, target)
            for source in ordered
            for target in ordered
            if source != target
        ]
    link_pairs = sorted(set(pairs))
    for source, target in link_pairs:
        if source == target:
            raise ValueError(f"unit {source} cannot link to itself")
        if source not in known or target not in known:
            raise ValueError(
                f"link ({source}, {target}) names a unit outside {ordered}"
            )
    return link_pairs


class BatchChannel:
    """One direction of an inter-unit link: per-round batches over a queue.

    Built from a multiprocessing context so the underlying queue survives
    being inherited by a spawned worker process.  ``send_batch`` is called by
    the owning sender exactly once per round; ``receive_batch`` blocks (with
    a timeout guarding against dead peers) until the peer's batch for the
    expected round arrives.
    """

    def __init__(self, ctx) -> None:
        self._queue = ctx.Queue()

    def send_payload(self, payload: bytes) -> None:
        """Enqueue an already-encoded batch payload (see :func:`encode_batch`)."""
        self._queue.put(payload)

    def send_batch(self, round_index: int, messages: Sequence[RoutedMessage]) -> None:
        self.send_payload(encode_batch(round_index, messages))

    def poll_payload(self, timeout: float) -> Optional[bytes]:
        """Next raw encoded batch within ``timeout`` seconds, or ``None``.

        The round-tag discipline (stale skip / future error / timeout
        diagnostics) lives in :meth:`TransportEndpoint.resolve_round`, shared
        by every transport; this is the mp-queue transport's raw ``_poll``.
        """
        try:
            return self._queue.get(timeout=max(timeout, 0.001))
        except Empty:
            return None

    def receive_batch(
        self,
        round_index: int,
        timeout: float = 60.0,
        peer: Optional[int] = None,
        transport: Optional[str] = None,
        endpoint: Optional[str] = None,
    ) -> Batch:
        deadline = monotonic() + timeout
        while True:
            remaining = max(deadline - monotonic(), 0.001)
            try:
                batch = pickle.loads(self._queue.get(timeout=remaining))
            except Empty:
                raise ChannelTimeout(
                    round_index,
                    timeout,
                    peer=peer,
                    transport=transport,
                    endpoint=endpoint,
                ) from None
            if batch.round_index < round_index:
                # A stale duplicate: a crashed-and-respawned sender re-sends
                # its last checkpointed round's batches because its original
                # flush may have died in the queue's feeder thread.  Round
                # tags are strictly increasing per link, so anything older
                # than the expected round was already delivered — drop it.
                continue
            if batch.round_index != round_index:
                raise ChannelProtocolError(
                    f"expected the batch for round {round_index}, "
                    f"got round {batch.round_index}"
                    + describe_transport(transport, endpoint)
                )
            return batch

    def close(self) -> None:
        self._queue.close()
        self._queue.join_thread()


class ChannelMesh:
    """The directed :class:`BatchChannel` links between units.

    By default every ordered unit pair gets a link (a full mesh); passing
    ``pairs`` restricts the mesh to the unit pairs that can actually exchange
    interactions (derived by the coordinator from the specification's IP
    connectivity and the mapping).  Each multiprocessing queue costs two pipe
    descriptors plus a feeder thread and one batch transfer per round, so on
    sparsely connected specifications — e.g. independent connections mapped
    to their own units — the restricted mesh scales linearly with the real
    communication structure instead of quadratically with the unit count.

    ``endpoints_for(uid)`` returns the two per-unit views a worker needs:
    ``inbound`` (peer uid -> channel it receives on) and ``outbound`` (peer
    uid -> channel it sends on).  Both views are plain dicts of channels and
    cross the process boundary through :class:`multiprocessing.Process`
    argument inheritance.
    """

    def __init__(
        self,
        ctx,
        unit_ids: Iterable[int],
        pairs: Optional[Iterable[Tuple[int, int]]] = None,
    ) -> None:
        self.unit_ids: Tuple[int, ...] = tuple(sorted(unit_ids))
        self._links: Dict[Tuple[int, int], BatchChannel] = {
            pair: BatchChannel(ctx)
            for pair in derive_link_pairs(self.unit_ids, pairs)
        }

    @property
    def pairs(self) -> Tuple[Tuple[int, int], ...]:
        """The directed ``(source, target)`` link pairs of this mesh."""
        return tuple(self._links)

    def endpoints_for(self, uid: int) -> Tuple[Dict[int, BatchChannel], Dict[int, BatchChannel]]:
        if uid not in self.unit_ids:
            raise KeyError(f"unit {uid} is not part of this mesh ({self.unit_ids})")
        inbound = {
            source: channel
            for (source, target), channel in self._links.items()
            if target == uid
        }
        outbound = {
            target: channel
            for (source, target), channel in self._links.items()
            if source == uid
        }
        return inbound, outbound

    def close(self) -> None:
        for channel in self._links.values():
            channel.close()


def merge_batches(batches: Iterable[Batch]) -> List[RoutedMessage]:
    """Merge several peers' batches into global delivery order.

    Sorting by ``(plan_index, seq)`` reconstructs the order in which the
    in-process executor would have enqueued the same interactions; the
    trailing fields only break (impossible, see the ordering notes above)
    ties deterministically.
    """
    merged: List[RoutedMessage] = []
    for batch in batches:
        merged.extend(batch.messages)
    merged.sort(
        key=lambda m: (m.plan_index, m.seq, m.target_path, m.ip_name)
    )
    return merged
