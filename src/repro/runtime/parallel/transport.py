"""The pluggable wire layer of the parallel mesh: ``Transport`` implementations.

The paper maps execution units to *processors of a multiprocessor or hosts
of a network*; which wire carries the inter-unit batches is therefore a
deployment decision, not an architectural one.  This module extracts that
decision behind one interface:

* :class:`Transport` — the coordinator-side factory.  It owns the mesh's
  directed links (derived from the mapping's connectivity, exactly as
  before) and hands each worker a picklable :class:`TransportEndpoint`.
* :class:`TransportEndpoint` — the per-unit view a worker actually uses:
  ``send_batch``/``receive_batch`` per peer, with the round-tag protocol
  (one batch per peer per round, stale duplicates skipped, future rounds a
  :class:`~.channels.ChannelProtocolError`) enforced identically by every
  implementation.  Fault-plan send delays (:class:`repro.faults.ChannelDelay`)
  and the oversized-batch guard live in the shared base class so they apply
  uniformly to every transport.

Implementations:

* :class:`MpQueueTransport` (``"mp-queue"``, the default) — a behaviour-
  preserving wrap of the original :class:`~.channels.BatchChannel` /
  :class:`~.channels.ChannelMesh` multiprocessing queues.  Zero new copies,
  zero new threads: the hot path is byte-for-byte the pre-transport wire.
* :class:`TcpTransport` (``"tcp"``) — length-prefixed pickled batches over
  stdlib sockets.  The coordinator binds one listening socket per unit and
  publishes an **address table** ``{unit: (host, port)}``; workers are
  handshaked by address — a sender dials its peer's listener and introduces
  itself with a hello frame carrying its unit id, so the receiver can route
  each accepted connection to the right per-peer inbox.  Nothing in the
  data plane assumes a shared address space, which is what makes multi-host
  distribution a configuration change (see ``docs/DISTRIBUTION.md``).

Crash recovery is transport-generic but the mechanics differ: mp queues
outlive a crashed worker (in-flight batches survive in the shared queue),
while a TCP connection dies with its process.  Both cases reduce to the
same two rules — (1) every sender keeps a one-deep **retransmit slot** (its
last flushed batch per link) and re-sends it when the supervisor tells it
to redial a respawned peer, and (2) receivers already skip stale round tags
as duplicates, so retransmitting is always safe and never double-delivers.
"""

from __future__ import annotations

import pickle
import queue
import socket
import struct
import threading
import time
from time import monotonic
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Type

from .channels import (
    Batch,
    BatchChannel,
    ChannelMesh,
    ChannelProtocolError,
    ChannelTimeout,
    RoutedMessage,
    derive_link_pairs,
    describe_transport,
    encode_batch,
)

__all__ = [
    "DEFAULT_MAX_BATCH_BYTES",
    "DEFAULT_RECEIVE_TIMEOUT_S",
    "MpQueueTransport",
    "TcpTransport",
    "Transport",
    "TransportEndpoint",
    "transport_by_name",
    "transport_names",
]

#: Ceiling on one encoded batch.  Generous — a batch is one round's worth of
#: interactions on one link — but explicit, so a runaway workload fails with
#: a transport-labelled diagnostic instead of an opaque OS-level stall, and
#: identically on every transport.
DEFAULT_MAX_BATCH_BYTES = 64 * 1024 * 1024

#: Fallback receive window when neither the caller nor :meth:`configure`
#: supplied one.  Operators set their own through the backend's
#: ``round_timeout_s`` (threaded to every endpoint via ``WorkerConfig``);
#: this constant only covers endpoints driven outside a worker.
DEFAULT_RECEIVE_TIMEOUT_S = 60.0


class TransportEndpoint:
    """One unit's view of the mesh: its inbound and outbound links.

    Endpoints are created coordinator-side (:meth:`Transport.endpoint_for`)
    and must be picklable across the ``spawn`` boundary; anything that
    cannot cross a process boundary (threads, live connections) is created
    worker-side in :meth:`connect`.  The base class implements the parts of
    the wire contract that must not vary by transport:

    * fault-plan send delays (wall-clock only, applied before encoding) and
      the ``max_batch_bytes`` guard in :meth:`send_batch`,
    * the round-window resolution loop (stale skip / future error / timeout)
      in :meth:`resolve_round`, over the subclass's ``_poll``.
    """

    transport_name = "abstract"

    def __init__(
        self,
        uid: int,
        peers_in: Iterable[int],
        peers_out: Iterable[int],
        max_batch_bytes: int = DEFAULT_MAX_BATCH_BYTES,
    ) -> None:
        self.uid = uid
        self.peers_in: Tuple[int, ...] = tuple(sorted(peers_in))
        self.peers_out: Tuple[int, ...] = tuple(sorted(peers_out))
        self.max_batch_bytes = max_batch_bytes
        self._send_delays: Dict[Tuple[int, int], float] = {}
        self._receive_timeout_s: Optional[float] = None
        # Per-peer round window: the highest round tag resolved on each
        # inbound link.  Round tags strictly increase per link, but under
        # barrier relaxation the links advance *independently* — one peer may
        # be rounds ahead of another — so the high-water mark is per peer,
        # not per endpoint.
        self._round_window: Dict[int, int] = {}

    # -- worker-side lifecycle -----------------------------------------------------

    def configure(
        self,
        send_delays: Sequence[Tuple[int, int, float]] = (),
        receive_timeout_s: Optional[float] = None,
    ) -> None:
        """Install per-``(target, round)`` fault-plan send delays and the
        operator's receive window.

        Called by the worker from its :class:`WorkerConfig` after the
        endpoint crossed the process boundary; the delays then apply
        uniformly inside :meth:`send_batch`, whatever the transport, and
        ``receive_timeout_s`` (the backend's ``round_timeout_s``) becomes
        the default window of :meth:`resolve_round` — so chaos runs on slow
        hosts time out with the configured setting, not a hardcoded one.
        """
        self._send_delays = {
            (target, round_index): seconds
            for target, round_index, seconds in send_delays
        }
        if receive_timeout_s is not None:
            self._receive_timeout_s = receive_timeout_s

    def connect(self) -> None:
        """Activate the endpoint in the worker process (bind, listen, dial).

        A no-op for transports whose links are inherited objects (mp-queue);
        address-based transports start their receive machinery here.
        """

    def close(self) -> None:
        """Quiesce the endpoint (crash paths call this before hard exit)."""

    # -- the wire ------------------------------------------------------------------

    def send_batch(
        self, peer: int, round_index: int, messages: Sequence[RoutedMessage]
    ) -> None:
        """Send one round's batch (possibly empty) towards ``peer``."""
        if self._send_delays:
            delay = self._send_delays.get((peer, round_index))
            if delay:
                time.sleep(delay)
        payload = encode_batch(round_index, messages)
        if len(payload) > self.max_batch_bytes:
            raise ChannelProtocolError(
                f"round-{round_index} batch of {len(payload)} bytes exceeds "
                f"the {self.max_batch_bytes}-byte transport limit"
                + describe_transport(
                    self.transport_name, self.describe_peer(peer)
                )
            )
        self._send_payload(peer, round_index, payload)

    def resolve_round(
        self, peer: int, round_index: int, timeout: Optional[float] = None
    ) -> Batch:
        """Block until ``peer``'s batch for ``round_index`` arrives.

        The round tag on each link marks the link's position in that *peer's*
        round window — under barrier relaxation different links of one
        endpoint legitimately sit at different rounds, so resolution is a
        per-peer affair: anything older than the requested round is a
        duplicate (a respawned sender's retransmit, or a redial's slot
        re-send) and is skipped; a *future* round tag means a sender flushed
        twice for one round — a protocol bug — and raises immediately.

        ``timeout=None`` uses the window installed by :meth:`configure`
        (the backend's ``round_timeout_s``), falling back to
        :data:`DEFAULT_RECEIVE_TIMEOUT_S` for bare endpoints.
        """
        if timeout is None:
            timeout = (
                self._receive_timeout_s
                if self._receive_timeout_s is not None
                else DEFAULT_RECEIVE_TIMEOUT_S
            )
        deadline = monotonic() + timeout
        while True:
            remaining = max(deadline - monotonic(), 0.001)
            payload = self._poll(peer, remaining)
            if payload is None:
                raise ChannelTimeout(
                    round_index,
                    timeout,
                    peer=peer,
                    transport=self.transport_name,
                    endpoint=self.describe_peer(peer),
                )
            batch = pickle.loads(payload)
            if batch.round_index < round_index:
                continue  # stale duplicate from a respawned sender
            if batch.round_index != round_index:
                raise ChannelProtocolError(
                    f"expected the batch for round {round_index}, "
                    f"got round {batch.round_index}"
                    + describe_transport(
                        self.transport_name, self.describe_peer(peer)
                    )
                )
            self._round_window[peer] = batch.round_index
            return batch

    def receive_batch(
        self, peer: int, round_index: int, timeout: Optional[float] = None
    ) -> Batch:
        """Compatibility alias for :meth:`resolve_round`."""
        return self.resolve_round(peer, round_index, timeout=timeout)

    def round_window(self, peer: int) -> int:
        """The highest round resolved on the inbound link from ``peer``
        (0 before the first batch) — the link's round-window high-water mark."""
        return self._round_window.get(peer, 0)

    def reconnect_peer(self, peer: int) -> None:
        """Re-establish the outbound link to a respawned ``peer``.

        Transports whose links survive a peer's death (mp-queue) need do
        nothing; connection-oriented transports redial the peer's address
        and re-send their retransmit slot (the receiver dedups by round
        tag, so this is always safe).
        """

    def describe_peer(self, peer: int) -> str:
        """A human-readable endpoint for diagnostics (queue label, host:port)."""
        return f"unit {peer}"

    # -- subclass wire primitives --------------------------------------------------

    def _send_payload(self, peer: int, round_index: int, payload: bytes) -> None:
        raise NotImplementedError

    def _poll(self, peer: int, timeout: float) -> Optional[bytes]:
        """Next raw payload from ``peer`` within ``timeout``, or ``None``."""
        raise NotImplementedError


class Transport:
    """Coordinator-side factory for one run's mesh.

    Lifecycle: ``open(ctx, unit_ids, pairs)`` builds the links, then
    :meth:`endpoint_for` mints one picklable endpoint per worker (called
    again on respawn — a fresh endpoint carries no stale connections), and
    :meth:`close` tears the mesh down after the run.
    """

    name = "abstract"

    def open(
        self,
        ctx,
        unit_ids: Iterable[int],
        pairs: Optional[Iterable[Tuple[int, int]]] = None,
    ) -> None:
        raise NotImplementedError

    def endpoint_for(self, uid: int) -> TransportEndpoint:
        raise NotImplementedError

    @property
    def pairs(self) -> Tuple[Tuple[int, int], ...]:
        raise NotImplementedError

    def senders_to(self, uid: int) -> Tuple[int, ...]:
        """The units holding a link *into* ``uid`` (the supervisor tells
        exactly these to :meth:`TransportEndpoint.reconnect_peer` after
        respawning ``uid``)."""
        return tuple(
            sorted(source for source, target in self.pairs if target == uid)
        )

    def close(self) -> None:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# mp-queue: the original multiprocessing-queue wire, re-wrapped
# ---------------------------------------------------------------------------


class MpQueueEndpoint(TransportEndpoint):
    """Per-unit view over inherited :class:`BatchChannel` queues.

    Behaviour-preserving by construction: send is the original
    ``BatchChannel.send_batch`` pickle-and-put; receive is the shared
    :meth:`TransportEndpoint.resolve_round` window loop over the channel's
    raw ``poll_payload``, so the round-tag discipline is enforced by exactly
    one implementation for every transport.  The queues are owned by the
    coordinator's :class:`ChannelMesh` and *survive a worker crash*, so no
    retransmit machinery is needed — :meth:`reconnect_peer` is a no-op.
    """

    transport_name = "mp-queue"

    def __init__(
        self,
        uid: int,
        inbound: Dict[int, BatchChannel],
        outbound: Dict[int, BatchChannel],
        max_batch_bytes: int = DEFAULT_MAX_BATCH_BYTES,
    ) -> None:
        super().__init__(uid, inbound, outbound, max_batch_bytes)
        self._inbound = inbound
        self._outbound = outbound

    def describe_peer(self, peer: int) -> str:
        return f"unit {peer} (shared queue)"

    def _send_payload(self, peer: int, round_index: int, payload: bytes) -> None:
        self._outbound[peer].send_payload(payload)

    def _poll(self, peer: int, timeout: float) -> Optional[bytes]:
        return self._inbound[peer].poll_payload(timeout)

    def close(self) -> None:
        # Quiesce the outbound feeder threads (a dying feeder holding a
        # shared pipe lock would wedge every other worker); inbound queues
        # are left to the coordinator's mesh teardown, as before.
        for channel in self._outbound.values():
            channel.close()


class MpQueueTransport(Transport):
    """The default transport: one multiprocessing queue per directed link."""

    name = "mp-queue"

    def __init__(self, max_batch_bytes: int = DEFAULT_MAX_BATCH_BYTES) -> None:
        self.max_batch_bytes = max_batch_bytes
        self._mesh: Optional[ChannelMesh] = None

    def open(self, ctx, unit_ids, pairs=None) -> None:
        self._mesh = ChannelMesh(ctx, unit_ids, pairs=pairs)

    @property
    def pairs(self) -> Tuple[Tuple[int, int], ...]:
        assert self._mesh is not None, "transport not opened"
        return self._mesh.pairs

    def endpoint_for(self, uid: int) -> MpQueueEndpoint:
        assert self._mesh is not None, "transport not opened"
        inbound, outbound = self._mesh.endpoints_for(uid)
        return MpQueueEndpoint(uid, inbound, outbound, self.max_batch_bytes)

    def close(self) -> None:
        if self._mesh is not None:
            self._mesh.close()


# ---------------------------------------------------------------------------
# tcp: length-prefixed pickled batches over stdlib sockets
# ---------------------------------------------------------------------------

_LENGTH = struct.Struct(">I")


def _read_exact(conn: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes, or ``None`` on EOF / connection reset."""
    chunks: List[bytes] = []
    remaining = count
    while remaining:
        try:
            chunk = conn.recv(min(remaining, 1 << 20))
        except (ConnectionError, OSError):
            return None
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _read_frame(conn: socket.socket) -> Optional[bytes]:
    header = _read_exact(conn, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    return _read_exact(conn, length)


def _frame(payload: bytes) -> bytes:
    return _LENGTH.pack(len(payload)) + payload


class TcpEndpoint(TransportEndpoint):
    """One unit's socket machinery: a listener for inbound links, lazily
    dialled connections for outbound ones.

    The pickled form carries the unit's listening socket (file descriptors
    cross the ``spawn`` boundary through :mod:`multiprocessing.reduction`)
    plus the address table; everything live — the accept thread, per-
    connection reader threads, per-peer inboxes, dialled sockets, the
    retransmit slots — is built worker-side by :meth:`connect`.

    Keeping the *listening* socket open in the coordinator as well is the
    crash-recovery trick: the unit's port stays bound across a worker's
    death, dials from peers land in the kernel backlog while the
    replacement boots, and the respawned worker (handed a fresh dup of the
    same listener) simply accepts them.
    """

    transport_name = "tcp"

    def __init__(
        self,
        uid: int,
        peers_in: Iterable[int],
        peers_out: Iterable[int],
        addresses: Dict[int, Tuple[str, int]],
        listener: Optional[socket.socket],
        max_batch_bytes: int = DEFAULT_MAX_BATCH_BYTES,
        connect_timeout_s: float = 30.0,
    ) -> None:
        super().__init__(uid, peers_in, peers_out, max_batch_bytes)
        self.addresses = dict(addresses)
        self.connect_timeout_s = connect_timeout_s
        self._listener = listener
        self._stopping = False
        self._inboxes: Dict[int, "queue.Queue[bytes]"] = {}
        self._out_socks: Dict[int, socket.socket] = {}
        self._retransmit: Dict[int, bytes] = {}
        self._accept_thread: Optional[threading.Thread] = None

    def __getstate__(self) -> Dict[str, Any]:
        # Only the cold half crosses the process boundary; the live half is
        # rebuilt by connect().  The listener socket itself pickles through
        # multiprocessing's fd-passing reduction.
        state = self.__dict__.copy()
        state["_inboxes"] = {}
        state["_out_socks"] = {}
        state["_retransmit"] = {}
        state["_accept_thread"] = None
        state["_stopping"] = False
        state["_round_window"] = {}
        return state

    def describe_peer(self, peer: int) -> str:
        address = self.addresses.get(peer)
        if address is None:
            return f"unit {peer}"
        return f"unit {peer} at {address[0]}:{address[1]}"

    # -- worker-side lifecycle -----------------------------------------------------

    def connect(self) -> None:
        for peer in self.peers_in:
            self._inboxes[peer] = queue.Queue()
        if self._listener is not None and self.peers_in:
            self._listener.settimeout(0.2)
            self._accept_thread = threading.Thread(
                target=self._accept_loop,
                name=f"tcp-accept-u{self.uid}",
                daemon=True,
            )
            self._accept_thread.start()

    def close(self) -> None:
        self._stopping = True
        for sock in self._out_socks.values():
            try:
                sock.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass
        self._out_socks.clear()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass

    # -- receive side ----------------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping:
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._reader, args=(conn,), daemon=True
            ).start()

    def _reader(self, conn: socket.socket) -> None:
        """Drain one accepted connection into the sender's inbox.

        The first frame is the hello ``("hello", sender uid)``; a
        connection introducing an unknown sender is dropped (a dial from a
        unit outside the mesh's link set is a deployment error, but the
        receive path must not crash on it).
        """
        with conn:
            conn.settimeout(None)
            hello = _read_frame(conn)
            if hello is None:
                return
            try:
                kind, sender = pickle.loads(hello)
            except Exception:
                return
            if kind != "hello" or sender not in self._inboxes:
                return
            inbox = self._inboxes[sender]
            while not self._stopping:
                payload = _read_frame(conn)
                if payload is None:
                    return  # sender closed (or died); a redial replaces it
                inbox.put(payload)

    def _poll(self, peer: int, timeout: float) -> Optional[bytes]:
        try:
            return self._inboxes[peer].get(timeout=timeout)
        except queue.Empty:
            return None

    # -- send side -------------------------------------------------------------------

    def _dial(self, peer: int) -> socket.socket:
        address = self.addresses.get(peer)
        if address is None:
            raise ChannelProtocolError(
                f"no address for unit {peer} in the transport's address table"
                + describe_transport(self.transport_name, None)
            )
        deadline = monotonic() + self.connect_timeout_s
        while True:
            try:
                sock = socket.create_connection(address, timeout=5.0)
                break
            except OSError:
                if monotonic() >= deadline:
                    raise ChannelProtocolError(
                        f"could not connect to unit {peer}"
                        + describe_transport(
                            self.transport_name, self.describe_peer(peer)
                        )
                    ) from None
                time.sleep(0.05)
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.sendall(
            _frame(pickle.dumps(("hello", self.uid), pickle.HIGHEST_PROTOCOL))
        )
        self._out_socks[peer] = sock
        return sock

    def _send_payload(self, peer: int, round_index: int, payload: bytes) -> None:
        frame = _frame(payload)
        sock = self._out_socks.get(peer)
        if sock is None:
            sock = self._dial(peer)
        try:
            sock.sendall(frame)
        except OSError:
            # The peer died since the last round.  Redial (its listener —
            # held open by the coordinator — queues the connection for the
            # replacement) and lead with the retransmit slot so a receiver
            # that already consumed the previous round just skips it.
            sock = self._dial(peer)
            previous = self._retransmit.get(peer)
            if previous is not None:
                sock.sendall(previous)
            sock.sendall(frame)
        self._retransmit[peer] = frame

    def reconnect_peer(self, peer: int) -> None:
        old = self._out_socks.pop(peer, None)
        if old is not None:
            try:
                old.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass
        sock = self._dial(peer)
        previous = self._retransmit.get(peer)
        if previous is not None:
            sock.sendall(previous)


class TcpTransport(Transport):
    """Length-prefixed pickled batches over a localhost (or LAN) socket mesh.

    The coordinator binds one listening socket per receiving unit on
    ``host`` (ephemeral ports unless ``base_port`` pins them) and publishes
    the resulting address table through every endpoint — the handshake is
    by ``(host, port)``, never by passing live objects, so the same wire
    protocol spans machines once workers are launched remotely (see
    ``docs/DISTRIBUTION.md`` for the deployment story and its current
    limits).
    """

    name = "tcp"

    def __init__(
        self,
        host: str = "127.0.0.1",
        base_port: Optional[int] = None,
        max_batch_bytes: int = DEFAULT_MAX_BATCH_BYTES,
        connect_timeout_s: float = 30.0,
    ) -> None:
        self.host = host
        self.base_port = base_port
        self.max_batch_bytes = max_batch_bytes
        self.connect_timeout_s = connect_timeout_s
        self._pairs: Tuple[Tuple[int, int], ...] = ()
        self._listeners: Dict[int, socket.socket] = {}
        self.addresses: Dict[int, Tuple[str, int]] = {}

    def open(self, ctx, unit_ids, pairs=None) -> None:
        del ctx  # sockets need no multiprocessing context
        self._pairs = tuple(derive_link_pairs(tuple(unit_ids), pairs))
        receivers = sorted({target for _, target in self._pairs})
        for index, uid in enumerate(receivers):
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            port = 0 if self.base_port is None else self.base_port + index
            listener.bind((self.host, port))
            listener.listen(64)
            self._listeners[uid] = listener
            self.addresses[uid] = (
                self.host,
                listener.getsockname()[1],
            )

    @property
    def pairs(self) -> Tuple[Tuple[int, int], ...]:
        return self._pairs

    def endpoint_for(self, uid: int) -> TcpEndpoint:
        peers_in = [source for source, target in self._pairs if target == uid]
        peers_out = [target for source, target in self._pairs if source == uid]
        return TcpEndpoint(
            uid,
            peers_in,
            peers_out,
            addresses=self.addresses,
            listener=self._listeners.get(uid),
            max_batch_bytes=self.max_batch_bytes,
            connect_timeout_s=self.connect_timeout_s,
        )

    def close(self) -> None:
        for listener in self._listeners.values():
            try:
                listener.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass
        self._listeners.clear()


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

_TRANSPORTS: Dict[str, Type[Transport]] = {
    MpQueueTransport.name: MpQueueTransport,
    TcpTransport.name: TcpTransport,
}


def transport_names() -> Tuple[str, ...]:
    return tuple(sorted(_TRANSPORTS))


def transport_by_name(name: str, **options: Any) -> Transport:
    """Instantiate a transport by its registry name (``mp-queue``, ``tcp``)."""
    try:
        transport_class = _TRANSPORTS[name]
    except KeyError:
        raise ValueError(
            f"unknown transport {name!r}; available: {', '.join(transport_names())}"
        ) from None
    return transport_class(**options)
