"""``repro.runtime.parallel`` — the real multiprocess execution backend.

The in-process executor (:mod:`repro.runtime.executor`) *models* the paper's
decentralised runtime; this package *runs* it: each execution unit of the
mapping becomes an OS worker process executing its own scheduler shard, and
interactions cross unit boundaries over batched, order-preserving
multiprocessing channels with a barrier per computation step.

Pieces:

* :mod:`.backend` — :class:`MultiprocessBackend` (registered with
  :func:`repro.runtime.executor.backend_by_name` under ``"multiprocess"``)
  and the coordinator-side round planner,
* :mod:`.worker` — the per-unit worker process (rebuilds the specification
  from a picklable :class:`~repro.runtime.executor.SpecSource`, selects,
  fires, routes),
* :mod:`.channels` — the batched round protocol (round tags, ``(plan_index,
  seq)`` merge order) and the multiprocessing-queue channel primitives,
* :mod:`.transport` — the pluggable wire layer: :class:`MpQueueTransport`
  (default) and :class:`TcpTransport` (length-prefixed socket streams with
  an address-based peer table) behind one :class:`Transport` interface,
* :mod:`.trace` — the canonical byte encoding under which both backends'
  firing traces must be identical, plus a diff helper.

Smoke-check from the command line (used by CI)::

    python -m repro.runtime.parallel examples/specs/mcam_core.estelle
    python -m repro.runtime.parallel --transport tcp examples/specs/mcam_core.estelle
"""

from .backend import (
    MultiprocessBackend,
    ParallelExecutionError,
    PrecomputedDispatch,
)
from .channels import (
    Batch,
    BatchChannel,
    ChannelMesh,
    ChannelProtocolError,
    ChannelTimeout,
    RoutedMessage,
    merge_batches,
)
from .trace import canonical_trace_bytes, firing_tuple, trace_diff, traces_equal
from .transport import (
    MpQueueTransport,
    TcpTransport,
    Transport,
    TransportEndpoint,
    transport_by_name,
    transport_names,
)
from .worker import UnitDescriptor, WorkerConfig, WorkerRuntime, worker_main

__all__ = [
    "Batch",
    "BatchChannel",
    "ChannelMesh",
    "ChannelProtocolError",
    "ChannelTimeout",
    "MpQueueTransport",
    "MultiprocessBackend",
    "ParallelExecutionError",
    "PrecomputedDispatch",
    "RoutedMessage",
    "TcpTransport",
    "Transport",
    "TransportEndpoint",
    "UnitDescriptor",
    "WorkerConfig",
    "WorkerRuntime",
    "canonical_trace_bytes",
    "firing_tuple",
    "merge_batches",
    "trace_diff",
    "traces_equal",
    "transport_by_name",
    "transport_names",
    "worker_main",
]
