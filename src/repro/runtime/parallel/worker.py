"""The per-unit worker process of the multiprocess backend.

Each worker owns one execution unit (a group of modules from the mapping
layer) and runs the unit's share of the paper's decentralised scheduler:
*"each part only has to check the transition of one module — this can be
done in parallel."*  Concretely, per computation round a worker

1. **delivers** the previous round's inbound interaction batches (one per
   peer unit, merged into global order) into its modules' IP queues,
2. **selects** — evaluates the dispatch strategy against every owned module
   and reports the per-module results to the coordinator, which combines
   them with the Estelle precedence rules into the global round plan,
3. **fires** the transitions the plan assigned to this unit, capturing the
   interactions that cross unit boundaries, and flushes exactly one batch
   per peer unit before meeting the other workers at the round barrier.

Workers never exchange module state — only interactions.  Every process
(including the coordinator) rebuilds the *same* specification from the
picklable :class:`~repro.runtime.executor.SpecSource`, so a worker holds a
full replica of the module tree but treats only its own unit's modules as
authoritative: remote modules' replicas are never fired and never read, and
interactions a local module sends to a remote-owned IP are intercepted and
routed through the channel mesh instead of the replica's queues.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ...estelle.dirty import DirtyTracker
from ...estelle.errors import SchedulingError
from ...estelle.interaction import Interaction
from ...estelle.module import Module
from ..clock import SimulatedClock, next_delay_deadline
from ..dispatch import dispatch_by_name
from ..executor import SpecSource, busy_work_for
from ..planner import PLANNER_DISPATCH_NAME
from .channels import BatchChannel, RoutedMessage, merge_batches


@dataclass(frozen=True)
class UnitDescriptor:
    """A picklable snapshot of one ExecutionUnit of the mapping."""

    uid: int
    machine: str
    processor_index: int
    module_paths: Tuple[str, ...]
    label: str = ""


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker needs to rebuild its shard (all picklable)."""

    source: SpecSource
    unit_uid: int
    units: Tuple[UnitDescriptor, ...]
    dispatch_name: str = "table-driven"
    dispatch_kwargs: Tuple[Tuple[str, Any], ...] = ()
    transition_cost_scale: float = 1.0
    busy_work_us_per_cost: float = 0.0
    channel_timeout_s: float = 60.0


#: One module's selection outcome, reported to the coordinator:
#: (path, transition name or None, external?, examined, cost, pending).
SelectionSummary = Tuple[str, Optional[str], bool, int, float, int]

#: One assigned firing: (plan index, path, transition name or None, external?).
AssignedFiring = Tuple[int, str, Optional[str], bool]

#: One executed firing, reported for the global trace: (plan index, path,
#: transition name, state before, state after, interaction name, cost).
FiringReport = Tuple[int, str, str, Optional[str], Optional[str], Optional[str], float]


class WorkerRuntime:
    """The in-process core of a worker (separated from the process entry
    point so the round protocol is unit-testable without spawning)."""

    def __init__(
        self,
        config: WorkerConfig,
        inbound: Dict[int, BatchChannel],
        outbound: Dict[int, BatchChannel],
    ) -> None:
        self.config = config
        self.inbound = inbound
        self.outbound = outbound
        self.specification = config.source.build()
        self.specification.validate()
        self.modules: Dict[str, Module] = {
            module.path: module for module in self.specification.modules()
        }
        self.owner_of: Dict[str, int] = {
            path: unit.uid for unit in config.units for path in unit.module_paths
        }
        (self.unit,) = [u for u in config.units if u.uid == config.unit_uid]
        missing = [p for p in self.owner_of if p not in self.modules]
        if missing:
            raise SchedulingError(
                f"unit mapping names modules the rebuilt specification lacks: {missing}"
            )
        self.dispatch = dispatch_by_name(
            config.dispatch_name, **dict(config.dispatch_kwargs)
        )
        # The delay clock is coordinator-authoritative: every "select"
        # command carries the current simulated time, which the worker copies
        # onto its replica's clock before evaluating (delay timers and
        # eligibility then read exactly the coordinator's time).
        self.clock = SimulatedClock.attach(self.specification)
        self.busy_work = busy_work_for(config.busy_work_us_per_cost)
        self._module_census = len(self.modules)
        self._undelivered_round: Optional[int] = None
        # Reused per-peer send buffers: one list per outbound peer, cleared
        # per round instead of rebuilding a dict of lists every fire().
        self._outgoing: Dict[int, List[RoutedMessage]] = {
            peer: [] for peer in outbound
        }
        # Under the incremental planner ("planner" dispatch) a worker
        # re-evaluates only the dirty part of its shard and reports summary
        # *deltas*; the coordinator caches the rest (ISSUE 3).
        self.incremental = config.dispatch_name == PLANNER_DISPATCH_NAME
        self._owned = frozenset(self.unit.module_paths)
        self._tracker: Optional[DirtyTracker] = (
            DirtyTracker.attach(self.specification) if self.incremental else None
        )
        self._selected_once = False

    # -- the three phases ----------------------------------------------------------

    def deliver_pending(self) -> None:
        """Drain one batch per peer for the round whose firings precede this
        selection, and enqueue the interactions in global order."""
        if self._undelivered_round is None:
            return
        round_index = self._undelivered_round
        self._undelivered_round = None
        batches = [
            self.inbound[peer].receive_batch(
                round_index, timeout=self.config.channel_timeout_s
            )
            for peer in sorted(self.inbound)
        ]
        for message in merge_batches(batches):
            module = self.modules[message.target_path]
            module.ips[message.ip_name].enqueue(
                Interaction(message.interaction_name, dict(message.params))
            )

    def select(self, now: float = 0.0) -> Tuple[List[SelectionSummary], Optional[float]]:
        """Phase 2: per-module transition selection over the owned shard.

        ``now`` is the coordinator's simulated time (delay semantics); the
        returned pair is ``(summaries, next_deadline)`` where the deadline is
        the earliest future delay-timer expiry among the owned modules (None
        when no timer is running) — the coordinator jumps the clock to the
        minimum over all workers when a round plan comes up empty.

        With the incremental planner the evaluated set shrinks to the shard's
        *dirty* modules (changed state or queues since the previous round,
        plus modules woken by an expired delay deadline) and the returned
        summaries are a delta; otherwise the whole shard is evaluated and
        reported, every round.
        """
        self.clock.now = now
        if self._tracker is not None:
            self._tracker.wake_due(now)
            if self._selected_once:
                dirty = self._tracker.drain()
                paths: List[str] = sorted(
                    module.path
                    for module in dirty
                    if module.path in self._owned
                )
            else:
                # Round 1 seeds the coordinator's cache with the full shard.
                self._tracker.drain()
                paths = list(self.unit.module_paths)
                self._selected_once = True
        else:
            paths = list(self.unit.module_paths)
        summaries: List[SelectionSummary] = []
        for path in paths:
            module = self.modules[path]
            result = self.dispatch.select(module)
            summaries.append(
                (
                    path,
                    result.transition.name if result.transition else None,
                    result.external,
                    result.examined,
                    result.cost,
                    module.pending_interactions(),
                )
            )
        if self._tracker is not None:
            deadline = self._tracker.next_deadline()
        else:
            deadline = next_delay_deadline(
                (self.modules[path] for path in self.unit.module_paths), now
            )
        return summaries, deadline

    def fire(
        self, round_index: int, firings: Tuple[AssignedFiring, ...]
    ) -> Tuple[List[FiringReport], Dict[int, List[RoutedMessage]]]:
        """Phase 3: execute this unit's share of the round plan."""
        reports: List[FiringReport] = []
        outgoing = self._outgoing
        for bucket in outgoing.values():
            bucket.clear()
        scale = self.config.transition_cost_scale

        for plan_index, path, transition_name, is_external in firings:
            module = self.modules[path]
            sent_before = {name: ip.sent_count for name, ip in module.ips.items()}

            if is_external:
                cost = module.external_step() * scale
                fired_name = "external_step"
                state_before = state_after = module.state
                interaction_name = None
            else:
                declared = type(module)._transition_declarations[transition_name]
                record = declared.fire(module)
                cost = record.cost * scale
                fired_name = record.transition.name
                state_before = record.state_before
                state_after = record.state_after
                interaction_name = (
                    record.interaction.name if record.interaction else None
                )

            if self.busy_work is not None:
                self.busy_work(cost)
            module.note_fired()
            reports.append(
                (
                    plan_index,
                    path,
                    fired_name,
                    state_before,
                    state_after,
                    interaction_name,
                    cost,
                )
            )
            self._capture_remote_sends(module, sent_before, plan_index, outgoing)

        current_paths = [module.path for module in self.specification.modules()]
        if len(current_paths) != self._module_census or any(
            path not in self.modules for path in current_paths
        ):
            raise SchedulingError(
                "the multiprocess backend requires a static module tree; a "
                "transition created or released a module instance at runtime"
            )
        return reports, outgoing

    def flush(self, round_index: int, outgoing: Dict[int, List[RoutedMessage]]) -> None:
        """Send exactly one batch (possibly empty) to every peer unit."""
        for peer in sorted(self.outbound):
            self.outbound[peer].send_batch(round_index, outgoing.get(peer, ()))
        self._undelivered_round = round_index

    # -- internals -----------------------------------------------------------------

    def _capture_remote_sends(
        self,
        module: Module,
        sent_before: Dict[str, int],
        plan_index: int,
        outgoing: Dict[int, List[RoutedMessage]],
    ) -> None:
        """Route interactions the firing pushed into remote-owned IP queues.

        A replica enqueues sends through the real connection objects, so the
        just-sent interactions sit at the *tail* of the (stale) local copy of
        the remote module's queue; they are removed here and forwarded so the
        owning worker — whose copy is authoritative — enqueues them instead.
        """
        for name, point in module.ips.items():
            delta = point.sent_count - sent_before.get(name, 0)
            if delta <= 0 or point.peer is None:
                continue
            peer_owner = point.peer.owner
            if not isinstance(peer_owner, Module):
                continue
            target_uid = self.owner_of.get(peer_owner.path)
            if target_uid is None:
                raise SchedulingError(
                    f"module {peer_owner.path!r} has no execution unit; the "
                    "multiprocess backend requires a complete static mapping"
                )
            if target_uid == self.unit.uid:
                continue  # stayed inside this unit: the local enqueue stands
            if target_uid not in self.outbound:
                raise SchedulingError(
                    f"{module.path} sent an interaction to unit {target_uid} "
                    "but no channel exists for that unit pair; was the "
                    "connection created after the mesh was derived (runtime "
                    "connect)?"
                )
            newest_first = [point.peer.queue.pop() for _ in range(delta)]
            for seq, interaction in enumerate(reversed(newest_first)):
                outgoing[target_uid].append(
                    RoutedMessage(
                        plan_index=plan_index,
                        seq=seq,
                        target_path=peer_owner.path,
                        ip_name=point.peer.name,
                        interaction_name=interaction.name,
                        params=tuple(sorted(interaction.params.items())),
                    )
                )


def worker_main(
    config: WorkerConfig,
    command_queue,
    result_queue,
    inbound: Dict[int, BatchChannel],
    outbound: Dict[int, BatchChannel],
    barrier,
) -> None:
    """Process entry point: serve the coordinator's round protocol.

    Commands are ``("select", round, now)``, ``("fire", round, firings)``
    and ``("stop",)``; every select/fire is answered with exactly one result
    tuple ``(uid, kind, round, payload)``.  A ``select`` may repeat for the
    same round with a later ``now`` when the coordinator jumps the simulated
    clock over a delay deadline.  Any exception is reported as an
    ``("error", traceback)`` result instead of dying silently, so the
    coordinator can fail fast with the worker's stack trace.
    """
    uid = config.unit_uid
    try:
        runtime = WorkerRuntime(config, inbound, outbound)
        result_queue.put((uid, "ready", 0, len(runtime.unit.module_paths)))
        while True:
            command = command_queue.get()
            kind = command[0]
            if kind == "select":
                round_index, now = command[1], command[2]
                runtime.deliver_pending()
                summaries, deadline = runtime.select(now)
                result_queue.put(
                    (uid, "summaries", round_index, (tuple(summaries), deadline))
                )
            elif kind == "fire":
                round_index, firings = command[1], command[2]
                reports, outgoing = runtime.fire(round_index, firings)
                runtime.flush(round_index, outgoing)
                # The barrier is the computation-step synchronisation point:
                # after it, every unit's batches for this round are in flight,
                # so the next round's delivery cannot observe a partial round.
                barrier.wait(timeout=config.channel_timeout_s)
                result_queue.put((uid, "fired", round_index, tuple(reports)))
            elif kind == "stop":
                break
            else:  # pragma: no cover - coordinator never sends other kinds
                raise ValueError(f"unknown worker command {kind!r}")
    except BaseException:
        result_queue.put((uid, "error", -1, traceback.format_exc()))
