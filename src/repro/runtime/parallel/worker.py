"""The per-unit worker process of the multiprocess backend.

Each worker owns one execution unit (a group of modules from the mapping
layer) and runs the unit's share of the paper's decentralised scheduler:
*"each part only has to check the transition of one module — this can be
done in parallel."*  Concretely, per computation round a worker

1. **delivers** the previous round's inbound interaction batches (one per
   peer unit, merged into global order) into its modules' IP queues,
2. **selects** — evaluates the dispatch strategy against every owned module
   and reports the per-module results to the coordinator, which combines
   them with the Estelle precedence rules into the global round plan,
3. **fires** the transitions the plan assigned to this unit, capturing the
   interactions that cross unit boundaries, and flushes exactly one batch
   per peer unit before meeting the other workers at the round barrier.

Workers never exchange module state — only interactions.  Every process
(including the coordinator) rebuilds the *same* specification from the
picklable :class:`~repro.runtime.executor.SpecSource`, so a worker holds a
full replica of the module tree but treats only its own unit's modules as
authoritative: remote modules' replicas are never fired and never read, and
interactions a local module sends to a remote-owned IP are intercepted and
routed through the channel mesh instead of the replica's queues.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ...estelle.dirty import DirtyTracker
from ...estelle.errors import SchedulingError
from ...estelle.interaction import Interaction
from ...estelle.module import Module
from ..checkpoint import (
    WorkerCheckpoint,
    capture_modules,
    feed_deadline_hooks,
    restore_modules,
)
from ..clock import SimulatedClock, next_delay_deadline
from ..dispatch import dispatch_by_name
from ..executor import SpecSource, busy_work_for
from ..planner import PLANNER_DISPATCH_NAME
from ..scheduler import DecentralisedScheduler
from .channels import ChannelTimeout, RoutedMessage, merge_batches
from .transport import TransportEndpoint

#: Exit code of a deterministically injected worker crash (repro.faults).
#: Distinct from 0/None so the coordinator's liveness check classifies the
#: process as dead-abnormally, exactly like a SIGKILL'd worker.
CRASH_EXIT_CODE = 17


@dataclass(frozen=True)
class UnitDescriptor:
    """A picklable snapshot of one ExecutionUnit of the mapping."""

    uid: int
    machine: str
    processor_index: int
    module_paths: Tuple[str, ...]
    label: str = ""


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker needs to rebuild its shard (all picklable)."""

    source: SpecSource
    unit_uid: int
    units: Tuple[UnitDescriptor, ...]
    dispatch_name: str = "table-driven"
    dispatch_kwargs: Tuple[Tuple[str, Any], ...] = ()
    transition_cost_scale: float = 1.0
    busy_work_us_per_cost: float = 0.0
    channel_timeout_s: float = 60.0
    #: rounds at whose select command this worker hard-exits
    #: (deterministic fault injection; see repro.faults.FaultPlan).
    crash_rounds: Tuple[int, ...] = ()
    #: ``(target unit, round, seconds)`` wall-clock delays applied before
    #: flushing the matching outgoing batch (trace-neutral by construction:
    #: the simulated clock never observes them).
    send_delays: Tuple[Tuple[int, int, float], ...] = ()
    #: ship a WorkerCheckpoint of the owned shard with every fired reply,
    #: enabling the coordinator's supervised crash recovery.
    checkpoint: bool = False
    #: shard checkpoint to resume from instead of the fresh initial state
    #: (set by the coordinator when respawning a crashed worker).
    restore: Optional[WorkerCheckpoint] = None
    #: this unit runs under conservative lookahead: it wholly owns its
    #: system subtrees and none of its modules declares a delay transition,
    #: so the coordinator grants it windows of rounds to plan and fire
    #: locally (``run_rounds``) instead of folding it into the global
    #: barrier round (see MultiprocessBackend ``relax_barrier``).
    relaxed: bool = False


#: One module's selection outcome, reported to the coordinator:
#: (path, transition name or None, external?, examined, cost, pending).
SelectionSummary = Tuple[str, Optional[str], bool, int, float, int]

#: One assigned firing: (plan index, path, transition name or None, external?).
AssignedFiring = Tuple[int, str, Optional[str], bool]

#: A tree-shape change caused by a firing, replayable on another replica:
#: ("init", parent path, child name, class name, ((var, value), ...)) or
#: ("release", parent path, child name).
TopologyEvent = Tuple

#: One executed firing, reported for the global trace: (plan index, path,
#: transition name, state before, state after, interaction name, cost,
#: topology events the firing caused — in execution order).
FiringReport = Tuple[
    int,
    str,
    str,
    Optional[str],
    Optional[str],
    Optional[str],
    float,
    Tuple[TopologyEvent, ...],
]

#: Per-round observability delta a worker ships with its firing reports:
#: (busy wall seconds of fire+flush, wall seconds spent at the round
#: barrier, cross-unit messages routed, per-peer batch sizes).  Pure
#: measurement — deltas never feed back into scheduling, costs or the
#: simulated clock, so shipping them cannot perturb canonical traces.
ObsDelta = Tuple[float, float, int, Tuple[int, ...]]


def _declares_delay(module_class: type) -> bool:
    """Whether any transition declared on ``module_class`` is delay-bearing."""
    declarations = getattr(module_class, "_transition_declarations", {})
    return any(
        t.delay > 0 or t.delay_max is not None for t in declarations.values()
    )


class WorkerRuntime:
    """The in-process core of a worker (separated from the process entry
    point so the round protocol is unit-testable without spawning)."""

    def __init__(
        self,
        config: WorkerConfig,
        endpoint: TransportEndpoint,
    ) -> None:
        self.config = config
        self.endpoint = endpoint
        # Fault-plan send delays apply inside the transport's send_batch so
        # they are uniform across transports (mp-queue and tcp alike), and
        # the operator's round timeout becomes the endpoint's default
        # receive window (no hardcoded 60 s on any resolve_round call site).
        endpoint.configure(
            config.send_delays, receive_timeout_s=config.channel_timeout_s
        )
        self.specification = config.source.build()
        self.specification.validate()
        self.modules: Dict[str, Module] = {
            module.path: module for module in self.specification.modules()
        }
        self.owner_of: Dict[str, int] = {
            path: unit.uid for unit in config.units for path in unit.module_paths
        }
        (self.unit,) = [u for u in config.units if u.uid == config.unit_uid]
        missing = [p for p in self.owner_of if p not in self.modules]
        if missing:
            raise SchedulingError(
                f"unit mapping names modules the rebuilt specification lacks: {missing}"
            )
        self.dispatch = dispatch_by_name(
            config.dispatch_name, **dict(config.dispatch_kwargs)
        )
        # The delay clock is coordinator-authoritative: every "select"
        # command carries the current simulated time, which the worker copies
        # onto its replica's clock before evaluating (delay timers and
        # eligibility then read exactly the coordinator's time).
        self.clock = SimulatedClock.attach(self.specification)
        self.busy_work = busy_work_for(config.busy_work_us_per_cost)
        self._undelivered_round: Optional[int] = None
        # Reused per-peer send buffers: one list per outbound peer, cleared
        # per round instead of rebuilding a dict of lists every fire().
        self._outgoing: Dict[int, List[RoutedMessage]] = {
            peer: [] for peer in endpoint.peers_out
        }
        # Under the incremental planner ("planner" dispatch) a worker
        # re-evaluates only the dirty part of its shard and reports summary
        # *deltas*; the coordinator caches the rest (ISSUE 3).
        self.incremental = config.dispatch_name == PLANNER_DISPATCH_NAME
        # The *dynamic* shard: seeded with the mapping's static assignment,
        # grown when a local firing creates a child (dynamic children run on
        # their parent's execution unit) and shrunk when one is released
        # (retired from dispatch).  Kept as a dict for deterministic
        # insertion order.
        self._owned: Dict[str, None] = {
            path: None for path in self.unit.module_paths
        }
        self._tracker: Optional[DirtyTracker] = (
            DirtyTracker.attach(self.specification) if self.incremental else None
        )
        self._selected_once = False
        self._last_epoch = self._tracker.structure_epoch if self._tracker else 0
        # Tree-shape changes caused by local firings, captured through the
        # module-level topology hook and reported to the coordinator with
        # the firing that caused them (ISSUE 5).  Installing the hook after
        # DirtyTracker.attach is safe: the hooks are independent attributes.
        self._topology_events: List[TopologyEvent] = []
        for module in self.specification.root.walk():
            module._topology_hook = self._topology_events.append
        # Conservative lookahead (relaxed units only): this unit's system
        # subtrees, in specification declaration order.  System modules are
        # mutually independent — precedence never crosses system subtrees —
        # so restricting the Estelle precedence walk to the owned roots
        # yields exactly the global plan's projection onto this unit.
        own_roots = {
            "/".join(path.split("/", 2)[:2]) for path in self.unit.module_paths
        }
        self._own_roots = tuple(
            root
            for root in self.specification.system_modules()
            if root.path in own_roots
        )
        self._local_scheduler = DecentralisedScheduler()

    # -- the three phases ----------------------------------------------------------

    def deliver_pending(self) -> None:
        """Drain one batch per peer for the round whose firings precede this
        selection, and enqueue the interactions in global order."""
        if self._undelivered_round is None:
            return
        round_index = self._undelivered_round
        self._undelivered_round = None
        batches = [
            self.endpoint.resolve_round(peer, round_index)
            for peer in self.endpoint.peers_in
        ]
        for message in merge_batches(batches):
            module = self.modules.get(message.target_path)
            if module is None:
                # A remote firing's replica-side send raced a local release:
                # the in-process executor would have raised a ChannelError at
                # output time (release disconnects the subtree's IPs), so a
                # silent drop here would diverge silently — fail loud instead.
                raise SchedulingError(
                    f"interaction {message.interaction_name!r} arrived for "
                    f"module {message.target_path!r}, which was released; "
                    "cross-unit sends to releasable modules are not "
                    "supported (a released module's IPs are disconnected)"
                )
            module.ips[message.ip_name].enqueue(
                Interaction(message.interaction_name, dict(message.params))
            )

    def select(self, now: float = 0.0) -> Tuple[List[SelectionSummary], Optional[float]]:
        """Phase 2: per-module transition selection over the owned shard.

        ``now`` is the coordinator's simulated time (delay semantics); the
        returned pair is ``(summaries, next_deadline)`` where the deadline is
        the earliest future delay-timer expiry among the owned modules (None
        when no timer is running) — the coordinator jumps the clock to the
        minimum over all workers when a round plan comes up empty.

        With the incremental planner the evaluated set shrinks to the shard's
        *dirty* modules (changed state or queues since the previous round,
        plus modules woken by an expired delay deadline) and the returned
        summaries are a delta; otherwise the whole shard is evaluated and
        reported, every round.
        """
        self.clock.now = now
        if self._tracker is not None:
            self._tracker.wake_due(now)
            epoch = self._tracker.structure_epoch
            if self._selected_once and epoch == self._last_epoch:
                dirty = self._tracker.drain()
                paths: List[str] = sorted(
                    module.path
                    for module in dirty
                    if module.path in self._owned
                )
            else:
                # Round 1 seeds the coordinator's cache with the full shard;
                # a structure-epoch bump (a local init/release last round)
                # re-reports the full — possibly re-shaped — shard so the
                # coordinator's rebuilt program has every slot filled.
                self._tracker.drain()
                paths = list(self._owned)
                self._selected_once = True
                self._last_epoch = epoch
        else:
            paths = list(self._owned)
        summaries: List[SelectionSummary] = []
        for path in paths:
            module = self.modules[path]
            result = self.dispatch.select(module)
            summaries.append(
                (
                    path,
                    result.transition.name if result.transition else None,
                    result.external,
                    result.examined,
                    result.cost,
                    module.pending_interactions(),
                )
            )
        if self._tracker is not None:
            deadline = self._tracker.next_deadline()
        else:
            deadline = next_delay_deadline(
                (self.modules[path] for path in self._owned), now
            )
        return summaries, deadline

    def fire(
        self, round_index: int, firings: Tuple[AssignedFiring, ...]
    ) -> Tuple[List[FiringReport], Dict[int, List[RoutedMessage]]]:
        """Phase 3: execute this unit's share of the round plan."""
        reports: List[FiringReport] = []
        outgoing = self._outgoing
        for bucket in outgoing.values():
            bucket.clear()
        scale = self.config.transition_cost_scale

        for plan_index, path, transition_name, is_external in firings:
            module = self.modules.get(path)
            if module is None or module.released:
                # Released by an earlier firing of this same round: the plan
                # was built before the release, but a released module must
                # never fire — skip it, exactly like the in-process executor.
                continue
            sent_before = {name: ip.sent_count for name, ip in module.ips.items()}
            events_before = len(self._topology_events)

            if is_external:
                cost = module.external_step() * scale
                fired_name = "external_step"
                state_before = state_after = module.state
                interaction_name = None
            else:
                declared = type(module)._transition_declarations[transition_name]
                record = declared.fire(module)
                cost = record.cost * scale
                fired_name = record.transition.name
                state_before = record.state_before
                state_after = record.state_after
                interaction_name = (
                    record.interaction.name if record.interaction else None
                )

            if self.busy_work is not None:
                self.busy_work(cost)
            module.note_fired()
            topology = tuple(self._topology_events[events_before:])
            if topology:
                self._apply_topology_locally(topology)
            reports.append(
                (
                    plan_index,
                    path,
                    fired_name,
                    state_before,
                    state_after,
                    interaction_name,
                    cost,
                    topology,
                )
            )
            self._capture_remote_sends(module, sent_before, plan_index, outgoing)

        self._topology_events.clear()
        return reports, outgoing

    def flush(self, round_index: int, outgoing: Dict[int, List[RoutedMessage]]) -> None:
        """Send exactly one batch (possibly empty) to every peer unit.

        Fault-plan send delays and the oversized-batch guard live inside the
        endpoint's ``send_batch``, identically for every transport.
        """
        for peer in self.endpoint.peers_out:
            self.endpoint.send_batch(peer, round_index, outgoing.get(peer, ()))
        self._undelivered_round = round_index

    # -- conservative lookahead (relaxed units) ------------------------------------

    def local_round(
        self, round_index: int
    ) -> Tuple[int, List[FiringReport], ObsDelta, int]:
        """Run one computation round entirely locally (no coordinator fold).

        A relaxed unit wholly owns its system subtrees, so the restricted
        precedence walk over ``self._own_roots`` *is* the global plan's
        projection onto this unit; and it is delay-free, so the plan does not
        depend on the simulated clock.  The round is still paced by the
        mesh: ``deliver_pending`` blocks per inbound link on the previous
        round's batch (a peer — barrier or relaxed — that has not finished
        that round yet holds this unit back exactly one round), and the
        flush ships this round's batches so downstream peers can proceed.

        Returns ``(planned, reports, obs_delta, pending)``: the number of
        *planned* firings (before any released-module skip, i.e. the local
        plan's emptiness as the in-process executor would see it), the
        firing reports, the usual observability delta (sync here is the
        inbound-pacing wait instead of a barrier wait), and the number of
        queued interactions (only counted when the plan was empty — the
        coordinator's deadlock verdict needs it then).
        """
        phase_started = time.perf_counter()
        self.deliver_pending()
        sync_seconds = time.perf_counter() - phase_started
        plan = self._local_scheduler.plan_round(
            self.specification, self.dispatch, roots=self._own_roots
        )
        firings: Tuple[AssignedFiring, ...] = tuple(
            (
                index,
                planned.module.path,
                planned.result.transition.name
                if planned.result.transition
                else None,
                planned.is_external,
            )
            for index, planned in enumerate(plan.firings)
        )
        fire_started = time.perf_counter()
        reports, outgoing = self.fire(round_index, firings)
        self.flush(round_index, outgoing)
        busy_seconds = time.perf_counter() - fire_started
        batch_sizes = tuple(
            len(outgoing.get(peer, ())) for peer in self.endpoint.peers_out
        )
        delta: ObsDelta = (
            busy_seconds,
            sync_seconds,
            sum(batch_sizes),
            batch_sizes,
        )
        pending = 0
        if not firings:
            pending = sum(
                self.modules[path].pending_interactions() for path in self._owned
            )
        return len(firings), reports, delta, pending

    # -- checkpoint/restore --------------------------------------------------------

    def snapshot_shard(
        self,
        round_index: int,
        outgoing: Dict[int, List[RoutedMessage]],
    ) -> WorkerCheckpoint:
        """Capture the owned shard at the end of ``round_index`` (after this
        round's outgoing batches were flushed)."""
        return WorkerCheckpoint(
            round_index=round_index,
            owned_paths=tuple(self._owned),
            modules=capture_modules(
                self.specification, self._owned.__contains__
            ),
            outgoing=tuple(
                (peer, tuple(outgoing.get(peer, ())))
                for peer in self.endpoint.peers_out
            ),
        )

    def restore_shard(self, checkpoint: WorkerCheckpoint) -> None:
        """Resume a freshly rebuilt worker from a shard checkpoint.

        Only the statically owned scope is pruned/overwritten — replicas of
        remote units' modules keep their fresh-build state, exactly as they
        would in a worker that never crashed (workers never apply remote
        topology events to their replicas).  The next select re-reports the
        full shard, so the coordinator's planner cache refills.
        """
        static_owned = frozenset(self.unit.module_paths)
        restore_modules(
            self.specification,
            checkpoint.modules,
            static_owned.__contains__,
        )
        self.modules = {
            module.path: module for module in self.specification.modules()
        }
        self._owned = {path: None for path in checkpoint.owned_paths}
        for path in [
            p
            for p, owner in self.owner_of.items()
            if owner == self.unit.uid and p not in self._owned
        ]:
            del self.owner_of[path]
        for path in checkpoint.owned_paths:
            self.owner_of[path] = self.unit.uid
        if self._tracker is not None:
            feed_deadline_hooks(self.specification, checkpoint.modules)
            self._tracker.note_structure_change(self.specification.root)
            self._last_epoch = self._tracker.structure_epoch
        self._selected_once = False
        self._topology_events.clear()
        # The crash happened at a select, i.e. *before* the previous round's
        # batches were consumed — deliver them on the next select.  On
        # mp-queue they still sit in the surviving shared queues; on tcp
        # they died with the process, and the supervisor's "reconnect"
        # broadcast makes every live sender re-send its retransmit slot
        # (exactly that round's batch) over a fresh connection.
        self._undelivered_round = checkpoint.round_index
        # The crashed process's original flush may not have reached every
        # peer (an mp queue's feeder thread dies with os._exit before
        # draining; a TCP stream dies with its socket).  Re-send the whole
        # checkpointed round over the fresh endpoint: a receiver that
        # already consumed the original discards the duplicate by its stale
        # round tag, on every transport.
        for peer, messages in checkpoint.outgoing:
            self.endpoint.send_batch(peer, checkpoint.round_index, messages)

    # -- internals -----------------------------------------------------------------

    def _apply_topology_locally(self, events: Tuple[TopologyEvent, ...]) -> None:
        """Register/retire dynamic modules in this worker's shard.

        Only *local* firings cause events here (a worker never fires remote
        replicas), and a dynamically created child always runs on its
        parent's execution unit — so every event extends or shrinks this
        unit's own shard.
        """
        for event in events:
            if event[0] == "init":
                parent_path, child_name = event[1], event[2]
                parent = self.modules[parent_path]
                child = parent.children[child_name]
                for descendant in child.walk():
                    if self.config.relaxed and _declares_delay(type(descendant)):
                        # Relaxation eligibility was decided statically from
                        # the initial tree; a dynamically created delay
                        # transition would need the coordinator's clock
                        # authority this unit deliberately runs without.
                        raise SchedulingError(
                            f"dynamically created module {descendant.path!r} "
                            "declares a delay transition, but its execution "
                            "unit runs with the round barrier relaxed "
                            "(delay-free conservative lookahead); run this "
                            "specification with relax_barrier=False"
                        )
                    self.modules[descendant.path] = descendant
                    self._owned[descendant.path] = None
                    self.owner_of[descendant.path] = self.unit.uid
            else:  # release: retire the whole subtree by path prefix
                _, parent_path, child_name = event
                root_path = f"{parent_path}/{child_name}"
                prefix = root_path + "/"
                for path in [
                    p
                    for p in self.modules
                    if p == root_path or p.startswith(prefix)
                ]:
                    self.modules.pop(path, None)
                    self._owned.pop(path, None)
                    self.owner_of.pop(path, None)

    def _capture_remote_sends(
        self,
        module: Module,
        sent_before: Dict[str, int],
        plan_index: int,
        outgoing: Dict[int, List[RoutedMessage]],
    ) -> None:
        """Route interactions the firing pushed into remote-owned IP queues.

        A replica enqueues sends through the real connection objects, so the
        just-sent interactions sit at the *tail* of the (stale) local copy of
        the remote module's queue; they are removed here and forwarded so the
        owning worker — whose copy is authoritative — enqueues them instead.
        """
        for name, point in module.ips.items():
            delta = point.sent_count - sent_before.get(name, 0)
            if delta <= 0 or point.peer is None:
                continue
            peer_owner = point.peer.owner
            if not isinstance(peer_owner, Module):
                continue
            target_uid = self.owner_of.get(peer_owner.path)
            if target_uid is None:
                raise SchedulingError(
                    f"module {peer_owner.path!r} has no execution unit; the "
                    "multiprocess backend requires a complete static mapping"
                )
            if target_uid == self.unit.uid:
                continue  # stayed inside this unit: the local enqueue stands
            if target_uid not in self._outgoing:
                raise SchedulingError(
                    f"{module.path} sent an interaction to unit {target_uid} "
                    "but no channel exists for that unit pair; was the "
                    "connection created after the mesh was derived (runtime "
                    "connect)?"
                )
            newest_first = [point.peer.queue.pop() for _ in range(delta)]
            for seq, interaction in enumerate(reversed(newest_first)):
                outgoing[target_uid].append(
                    RoutedMessage(
                        plan_index=plan_index,
                        seq=seq,
                        target_path=peer_owner.path,
                        ip_name=point.peer.name,
                        interaction_name=interaction.name,
                        params=tuple(sorted(interaction.params.items())),
                    )
                )


def worker_main(
    config: WorkerConfig,
    command_queue,
    result_queue,
    endpoint: TransportEndpoint,
    barrier,
) -> None:
    """Process entry point: serve the coordinator's round protocol.

    Commands are ``("select", round, now)``, ``("fire", round, firings)``,
    ``("run_rounds", start, end)`` (relaxed units: a window of locally
    planned rounds, answered with one ``lround`` per round plus a
    ``window_done``), ``("reconnect", peer)`` and ``("stop",)``; every
    select/fire is answered with exactly one result tuple
    ``(uid, kind, round, payload)``.  A
    ``select`` may repeat for the same round with a later ``now`` when the
    coordinator jumps the simulated clock over a delay deadline; a
    ``reconnect`` (sent by the supervisor after respawning a crashed peer,
    unanswered) makes connection-oriented transports redial that peer and
    re-send their retransmit slot.  Any exception is reported as an
    ``("error", traceback)`` result instead of dying silently, so the
    coordinator can fail fast with the worker's stack trace.
    """
    uid = config.unit_uid
    crash_rounds = frozenset(config.crash_rounds)
    try:
        endpoint.connect()
        runtime = WorkerRuntime(config, endpoint)
        if config.restore is not None:
            runtime.restore_shard(config.restore)
        result_queue.put((uid, "ready", 0, len(runtime.unit.module_paths)))
        while True:
            command = command_queue.get()
            kind = command[0]
            if kind == "select":
                round_index, now = command[1], command[2]
                if round_index in crash_rounds:
                    # Deterministic fault injection (repro.faults): hard exit
                    # with no error report and the previous round's inbound
                    # batches left unconsumed (the supervisor's respawn picks
                    # them up).  The transport is quiesced first: an mp
                    # queue's feeder threads share write locks with live
                    # processes, and dying inside a feeder's lock window
                    # would wedge every other worker — the model here is
                    # "death at a round boundary", not a torn write mid-pipe
                    # (which no respawn could repair).
                    endpoint.close()
                    result_queue.close()
                    result_queue.join_thread()
                    os._exit(CRASH_EXIT_CODE)
                runtime.deliver_pending()
                summaries, deadline = runtime.select(now)
                result_queue.put(
                    (uid, "summaries", round_index, (tuple(summaries), deadline))
                )
            elif kind == "fire":
                round_index, firings = command[1], command[2]
                phase_started = time.perf_counter()
                reports, outgoing = runtime.fire(round_index, firings)
                runtime.flush(round_index, outgoing)
                busy_seconds = time.perf_counter() - phase_started
                # The barrier is the computation-step synchronisation point:
                # after it, every unit's batches for this round are in flight,
                # so the next round's delivery cannot observe a partial round.
                barrier.wait(timeout=config.channel_timeout_s)
                sync_seconds = time.perf_counter() - phase_started - busy_seconds
                batch_sizes = tuple(
                    len(outgoing.get(peer, ())) for peer in endpoint.peers_out
                )
                delta: ObsDelta = (
                    busy_seconds,
                    sync_seconds,
                    sum(batch_sizes),
                    batch_sizes,
                )
                payload: Tuple[Any, ...] = (tuple(reports), delta)
                if config.checkpoint:
                    # Round-boundary checkpoint, piggybacked on the reply so
                    # supervision costs no extra protocol round trip.
                    payload = payload + (
                        runtime.snapshot_shard(round_index, outgoing),
                    )
                result_queue.put((uid, "fired", round_index, payload))
            elif kind == "run_rounds":
                # Conservative lookahead: run a window of rounds entirely
                # locally, streaming one "lround" result per round (the
                # coordinator folds them asynchronously, in round order)
                # and a terminal "window_done" marker.  Pacing is purely
                # per-link: deliver_pending inside local_round blocks on
                # each inbound peer's previous-round batch.
                start_round, end_round = command[1], command[2]
                for local_index in range(start_round, end_round + 1):
                    planned, reports, delta, pending = runtime.local_round(
                        local_index
                    )
                    result_queue.put(
                        (
                            uid,
                            "lround",
                            local_index,
                            (planned, tuple(reports), delta, pending),
                        )
                    )
                result_queue.put((uid, "window_done", end_round, None))
            elif kind == "reconnect":
                # A crashed peer was respawned; redial it (and re-send the
                # retransmit slot) on transports whose links died with it.
                endpoint.reconnect_peer(command[1])
            elif kind == "stop":
                break
            else:  # pragma: no cover - coordinator never sends other kinds
                raise ValueError(f"unknown worker command {kind!r}")
    except ChannelTimeout as exc:
        peer = "?" if exc.peer is None else exc.peer
        result_queue.put(
            (
                uid,
                "error",
                -1,
                f"channel timeout: unit {uid} waited {exc.timeout_s:.0f}s for "
                f"the round-{exc.round_index} batch from unit {peer}; that "
                "peer worker is dead or deadlocked\n"
                + traceback.format_exc(),
            )
        )
    except BaseException:
        result_queue.put((uid, "error", -1, traceback.format_exc()))
