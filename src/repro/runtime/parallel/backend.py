"""The multiprocess execution backend: real OS processes per execution unit.

Where :class:`repro.runtime.executor.SpecificationExecutor` *models* the
paper's decentralised runtime (charging selection and firing costs to
simulated processors), this backend *is* one: every execution unit of the
mapping runs in its own worker process, transition selection over a unit's
modules happens concurrently across workers, and interactions cross unit
boundaries through batched multiprocessing channels with a barrier per
computation step.

The coordinator keeps the one job that is inherently global and cheap — the
Estelle precedence walk.  Workers report per-module selection results; the
coordinator replays the *same* tree walk the in-process schedulers use
(:meth:`repro.runtime.scheduler.Scheduler.plan_round`, driven by a dispatch
strategy that returns the precomputed results) and broadcasts each unit its
share of the plan.  This is exactly the split the paper describes: the
per-module checks — the part measured at up to 80% of runtime — run in
parallel; the combination is a tree fold over booleans.

Equivalence with the in-process backend is *byte-level* on the canonical
firing trace (:mod:`repro.runtime.parallel.trace`): same rounds, same
firings, same order, same state changes, same costs, same unit placement.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import time
from queue import Empty
from typing import Any, Dict, List, Optional, Tuple

from ...estelle.errors import SchedulingError
from ...estelle.specification import Specification
from ...obs import NULL_OBS, Observability
from ...sim.machine import Cluster
from ..clock import SimulatedClock, firing_advance
from ..dispatch import DispatchResult, DispatchStrategy
from ..executor import (
    BackendResult,
    ExecutionBackend,
    SpecSource,
    register_backend,
)
from ..mapping import MappingStrategy, SystemMapping, ThreadPerModuleMapping
from ..planner import PLANNER_DISPATCH_NAME, compile_plan_program
from ..scheduler import DecentralisedScheduler, RoundPlan, Scheduler
from ..tracing import ExecutionTrace, FiringEvent
from .transport import Transport, transport_by_name
from .worker import (
    AssignedFiring,
    FiringReport,
    SelectionSummary,
    UnitDescriptor,
    WorkerConfig,
    _declares_delay,
    worker_main,
)


def _relaxable_units(
    specification: Specification,
    units: Tuple[UnitDescriptor, ...],
    owner_of: Dict[str, int],
) -> frozenset:
    """Units eligible for conservative lookahead (barrier relaxation).

    A unit may run its rounds locally when (a) every system subtree it
    touches is wholly owned by it — Estelle precedence never crosses system
    subtrees, so the unit's restricted precedence walk equals the global
    plan's projection onto its subtrees — and (b) none of its modules
    declares a delay transition, so its selection never depends on the
    coordinator-owned simulated clock (deadline jumps cannot change its
    local plan, and it reports no deadlines of its own).
    """
    shared: set = set()
    for root in specification.system_modules():
        owners = {
            owner_of[module.path]
            for module in root.walk()
            if module.path in owner_of
        }
        if len(owners) > 1:
            shared.update(owners)
    module_by_path = {module.path: module for module in specification.modules()}
    relaxed = set()
    for unit in units:
        if unit.uid in shared:
            continue
        if any(
            _declares_delay(type(module_by_path[path]))
            for path in unit.module_paths
        ):
            continue
        relaxed.add(unit.uid)
    return frozenset(relaxed)


class ParallelExecutionError(SchedulingError):
    """A worker died, timed out, or violated the round protocol."""


class _Supervisor:
    """Crash-recovery state for one supervised run.

    Workers ship a round-boundary checkpoint of their owned shard with
    every fired reply; when the liveness check finds a worker dead during
    a *select* gather, :meth:`respawn` starts a replacement process seeded
    with the last checkpoint (``WorkerConfig.restore``) and re-issues the
    select it consumed — the round then completes as if the crash never
    happened, which the chaos suite pins with byte-identical traces.

    A death during the *fire* phase is not recoverable: the crashed worker
    may have flushed some batches and breaks the round barrier, so the run
    still fails fast with :class:`ParallelExecutionError`.
    """

    #: give up after this many respawns of the same unit in one run — a
    #: worker that keeps dying without a scheduled crash is a real bug.
    MAX_RESPAWNS_PER_UNIT = 8

    def __init__(
        self,
        ctx,
        transport: Transport,
        barrier,
        result_queue,
        command_queues: Dict[int, Any],
        processes: Dict[int, Any],
        configs: Dict[int, WorkerConfig],
        obs: Observability,
    ) -> None:
        self.ctx = ctx
        self.transport = transport
        self.barrier = barrier
        self.result_queue = result_queue
        self.command_queues = command_queues
        self.processes = processes
        self.configs = configs
        self.obs = obs
        self.checkpoints: Dict[int, Any] = {}
        self.recoveries = 0
        self._respawns: Dict[int, int] = {}
        registry = obs.registry
        self._m_crashes = registry.counter(
            "repro_resil_worker_crashes_total",
            "Worker processes found dead by the supervising coordinator.",
        )
        self._m_recoveries = registry.counter(
            "repro_resil_recoveries_total",
            "Crashed workers respawned from a shard checkpoint.",
        )
        self._m_checkpoints = registry.counter(
            "repro_resil_checkpoints_total",
            "Round-boundary shard checkpoints received from workers.",
        )

    def store_checkpoint(self, uid: int, checkpoint) -> None:
        self.checkpoints[uid] = checkpoint
        self._m_checkpoints.inc()

    def respawn(self, uid: int, round_index: int, now: float) -> None:
        count = self._respawns.get(uid, 0) + 1
        if count > self.MAX_RESPAWNS_PER_UNIT:
            raise ParallelExecutionError(
                f"worker for unit {uid} died {count} times in one run; "
                "giving up on recovery"
            )
        self._respawns[uid] = count
        exitcode = self.processes[uid].exitcode
        self._m_crashes.inc()
        self.obs.events.emit(
            "worker_crash", unit=uid, round_index=round_index, exitcode=exitcode
        )
        checkpoint = self.checkpoints.get(uid)
        config = dataclasses.replace(
            self.configs[uid],
            # The scheduled crash (if any) already happened; keep only
            # strictly later ones so a multi-crash schedule still plays out.
            crash_rounds=tuple(
                r for r in self.configs[uid].crash_rounds if r > round_index
            ),
            restore=checkpoint,
        )
        self.configs[uid] = config
        # A fresh endpoint from the transport: mp-queue re-wraps the shared
        # (surviving) queues; tcp re-dups the unit's still-bound listener so
        # peers' redials land on the replacement.
        endpoint = self.transport.endpoint_for(uid)
        process = self.ctx.Process(
            target=worker_main,
            args=(
                config,
                self.command_queues[uid],
                self.result_queue,
                endpoint,
                self.barrier,
            ),
            daemon=True,
            name=f"estelle-unit-{uid}-respawn{count}",
        )
        self.processes[uid] = process
        process.start()
        # Tell every unit holding a link into the crashed one to redial it
        # and re-send its retransmit slot (the replacement needs the round's
        # inbound batches, which on connection-oriented transports died with
        # the process; mp-queue endpoints treat this as a no-op).  The
        # command lands before the sender's next "fire", so the redial
        # always precedes its next flush.
        for sender in self.transport.senders_to(uid):
            if sender != uid:
                self.command_queues[sender].put(("reconnect", uid))
        # Re-issue the select the dead worker consumed; the replacement
        # answers it right after rebuilding + restoring its shard (its
        # "ready" is tolerated and skipped by the supervised gather).
        self.command_queues[uid].put(("select", round_index, now))
        self.recoveries += 1
        self._m_recoveries.inc()
        self.obs.events.emit(
            "worker_recovered",
            unit=uid,
            round_index=round_index,
            from_round=checkpoint.round_index if checkpoint is not None else 0,
        )


class _ResultCollector:
    """Kind-aware gather over the shared result queue (relaxed-barrier runs).

    With the barrier relaxed, relaxed units stream ``lround`` results at
    their own pace while barrier units answer selects and fires round by
    round — results therefore interleave arbitrarily on the single result
    queue.  The collector buffers everything it was not asked for and serves
    later requests from the buffer first; a unit's own results stay in the
    order it queued them.
    """

    def __init__(
        self, result_queue, processes: Dict[int, Any], timeout_s: float
    ) -> None:
        self._queue = result_queue
        self._processes = processes
        self._timeout_s = timeout_s
        self._buffered: List[Tuple[int, str, int, Any]] = []

    def collect(self, kind: str, round_index: int, uids) -> Dict[int, Any]:
        """One ``kind`` payload per unit in ``uids`` for ``round_index``."""
        expected = set(uids)
        collected: Dict[int, Any] = {}
        kept: List[Tuple[int, str, int, Any]] = []
        for item in self._buffered:
            uid, got_kind, got_round, payload = item
            if (
                got_kind == kind
                and got_round == round_index
                and uid in expected
                and uid not in collected
            ):
                collected[uid] = payload
            else:
                kept.append(item)
        self._buffered = kept
        deadline = time.perf_counter() + self._timeout_s
        while len(collected) < len(expected):
            try:
                uid, got_kind, got_round, payload = self._queue.get(timeout=1.0)
            except Empty:
                dead = [
                    process.name
                    for process in self._processes.values()
                    if not process.is_alive()
                    and process.exitcode not in (0, None)
                ]
                if dead:
                    raise ParallelExecutionError(
                        f"worker(s) {', '.join(dead)} died without reporting "
                        f"(waiting for {kind!r} of round {round_index})"
                    ) from None
                if time.perf_counter() >= deadline:
                    raise ParallelExecutionError(
                        f"timed out waiting for {kind!r} results of round "
                        f"{round_index} ({len(collected)}/{len(expected)} "
                        "units reported)"
                    ) from None
                continue
            if got_kind == "error":
                raise ParallelExecutionError(
                    f"worker for unit {uid} failed:\n{payload}"
                )
            if got_kind == kind and got_round == round_index and uid in expected:
                if uid in collected:
                    raise ParallelExecutionError(
                        f"unit {uid} reported {kind!r} twice for round "
                        f"{round_index}"
                    )
                collected[uid] = payload
            else:
                self._buffered.append((uid, got_kind, got_round, payload))
        return collected


class PrecomputedDispatch(DispatchStrategy):
    """A dispatch strategy that replays selection results computed elsewhere.

    The coordinator's replica of the specification is structurally accurate
    (module tree, attributes, connections) but behaviourally stale — it never
    fires transitions.  Feeding this strategy to the ordinary
    :meth:`Scheduler.plan_round` walk therefore combines the workers'
    authoritative per-module results under exactly the precedence rules the
    in-process executor applies, with zero duplicated logic.
    """

    name = "precomputed"

    def __init__(self) -> None:
        super().__init__(scan_cost=0.0, overhead=0.0)
        self.results: Dict[str, DispatchResult] = {}

    def select(self, module) -> DispatchResult:
        try:
            return self.results[module.path]
        except KeyError as exc:
            raise ParallelExecutionError(
                f"no worker reported a selection result for module {module.path!r}"
            ) from exc


class _RoundPlanner:
    """Combines worker selection summaries into the global round plan.

    ``incremental=True`` (the ``"planner"`` dispatch) switches both halves of
    the fold to the fused planner architecture: workers send summary *deltas*
    (only their dirty modules), which update a per-module result cache here,
    and the precedence fold runs through the generated whole-specification
    walk of :func:`repro.runtime.planner.compile_plan_program` instead of the
    interpreted ``Scheduler.plan_round`` recursion.
    """

    def __init__(
        self,
        specification: Specification,
        scheduler: Scheduler,
        incremental: bool = False,
    ) -> None:
        self.specification = specification
        self.scheduler = scheduler
        self.incremental = incremental
        self.dispatch = PrecomputedDispatch()
        self._transition_cache: Dict[Tuple[type, str], Any] = {}
        self._shape_changed = False
        self._masked_roots: frozenset = frozenset()
        if incremental:
            # Walk-only: the result slots are refreshed from worker
            # summaries, so no selectors are compiled coordinator-side.
            self._program = compile_plan_program(specification, with_evaluators=False)
            self._index_by_path = {
                module.path: index
                for index, module in enumerate(self._program.modules)
            }
            self._results: List[Optional[DispatchResult]] = [None] * len(
                self._program.modules
            )
            self._pending: List[int] = [0] * len(self._program.modules)
            self._unfilled = len(self._program.modules)

    def mask_roots(self, root_paths) -> None:
        """Exclude relaxed units' system subtrees from the coordinator fold.

        A masked root is wholly owned by one relaxed execution unit, which
        plans it locally (its restricted precedence walk equals the global
        plan's projection — precedence never crosses system subtrees).  The
        coordinator fold then covers only the barrier units' roots: the
        interpreted walk skips masked subtrees outright, while the fused
        incremental program keeps their result slots pinned to a non-firing
        placeholder so the whole-specification walk stays well-formed
        without any worker ever reporting for them.
        """
        self._masked_roots = frozenset(root_paths)
        if self.incremental:
            self._mask_incremental_slots()

    def _mask_incremental_slots(self) -> None:
        placeholder = DispatchResult(
            transition=None, examined=0, cost=0.0, external=False
        )
        for index, module in enumerate(self._program.modules):
            root = "/".join(module.path.split("/", 2)[:2])
            if root in self._masked_roots and self._results[index] is None:
                self._results[index] = placeholder
                self._pending[index] = 0
                self._unfilled -= 1

    def _active_roots(self):
        """The system roots the coordinator fold covers (None = all)."""
        if not self._masked_roots:
            return None
        return [
            root
            for root in self.specification.system_modules()
            if root.path not in self._masked_roots
        ]

    def note_structure_change(self) -> None:
        """A replayed init/release changed the coordinator replica's tree.

        The interpreted (non-incremental) fold walks the live tree every
        round, so only the incremental mode has cached shape to invalidate:
        the fused walk program and the flat result arrays are rebuilt lazily
        at the next :meth:`plan` call, carrying cached per-module results
        over by path (the structure epoch's coordinator-side counterpart).
        """
        if self.incremental:
            self._shape_changed = True

    def _rebuild_program(self) -> None:
        cached = {
            module.path: (self._results[index], self._pending[index])
            for index, module in enumerate(self._program.modules)
        }
        self._program = compile_plan_program(self.specification, with_evaluators=False)
        self._index_by_path = {
            module.path: index for index, module in enumerate(self._program.modules)
        }
        self._results = []
        self._pending = []
        for module in self._program.modules:
            result, pending = cached.get(module.path, (None, 0))
            self._results.append(result)
            self._pending.append(pending)
        # Slots for newly created modules start unfilled; the worker owning
        # them observed the same structure-epoch bump and re-reports its
        # full shard, so they are filled by this round's deltas.
        self._unfilled = sum(1 for result in self._results if result is None)
        self._shape_changed = False
        if self._masked_roots:
            # Masked slots carried over by path above; pin any the rebuild
            # introduced (a masked root's subtree never changes coordinator-
            # side, so this is a no-op in practice — kept for safety).
            self._mask_incremental_slots()

    def _resolve_transition(self, module, name: str):
        key = (type(module), name)
        transition = self._transition_cache.get(key)
        if transition is None:
            try:
                transition = type(module)._transition_declarations[name]
            except KeyError as exc:
                raise ParallelExecutionError(
                    f"worker selected unknown transition {name!r} "
                    f"for module {module.path!r}"
                ) from exc
            self._transition_cache[key] = transition
        return transition

    def plan(self, summaries: Dict[str, SelectionSummary]) -> RoundPlan:
        if self.incremental:
            return self._plan_incremental(summaries)
        roots = self._active_roots()
        modules = (
            self.specification.modules()
            if roots is None
            else (module for root in roots for module in root.walk())
        )
        results: Dict[str, DispatchResult] = {}
        for module in modules:
            path = module.path
            try:
                _, transition_name, external, examined, cost, _pending = summaries[path]
            except KeyError as exc:
                raise ParallelExecutionError(
                    f"no selection summary for module {path!r}"
                ) from exc
            transition = (
                self._resolve_transition(module, transition_name)
                if transition_name is not None
                else None
            )
            results[path] = DispatchResult(
                transition=transition, examined=examined, cost=cost, external=external
            )
        self.dispatch.results = results
        return self.scheduler.plan_round(
            self.specification, self.dispatch, roots=roots
        )

    def _plan_incremental(self, deltas: Dict[str, SelectionSummary]) -> RoundPlan:
        """Apply summary deltas to the result cache, then run the fused walk."""
        if self._shape_changed:
            self._rebuild_program()
        results = self._results
        plan = RoundPlan()
        for path, summary in deltas.items():
            _, transition_name, external, examined, cost, pending = summary
            try:
                index = self._index_by_path[path]
            except KeyError as exc:
                raise ParallelExecutionError(
                    f"worker reported a selection for unknown module {path!r}"
                ) from exc
            module = self._program.modules[index]
            transition = (
                self._resolve_transition(module, transition_name)
                if transition_name is not None
                else None
            )
            if results[index] is None:
                self._unfilled -= 1
            results[index] = DispatchResult(
                transition=transition, examined=examined, cost=cost, external=external
            )
            self._pending[index] = pending
            plan.examined_costs[path] = cost
        plan.examined_modules = len(deltas)
        if self._unfilled:
            missing = [
                module.path
                for index, module in enumerate(self._program.modules)
                if results[index] is None
            ]
            raise ParallelExecutionError(
                f"no selection summary for module(s) {missing}; the first "
                "planner round (and the first round after a topology change) "
                "must cover every module of the owning worker's shard"
            )
        self._program.walk(results, plan.firings)
        return plan

    def has_pending(self) -> bool:
        """Whether any module reported queued interactions (deadlock check).

        Only meaningful in incremental mode, where the per-module pending
        counts are cached between rounds (a clean module's count cannot have
        changed — queue mutations mark it dirty).
        """
        return any(self._pending)


@register_backend
class MultiprocessBackend(ExecutionBackend):
    """Run a specification with one worker process per execution unit.

    ``scheduler`` is accepted for interface symmetry but only its precedence
    walk is used — this backend *is* the decentralised scheduler made real,
    so per-unit selection cost is paid in actual wall-clock on actual
    processes rather than charged to a simulated unit.

    ``start_method`` defaults to ``"spawn"``: it is the one start method that
    behaves identically across Linux/macOS/Windows and never inherits
    threads, at the price of each worker re-importing the package and
    rebuilding the specification from its :class:`SpecSource` (which is the
    point — workers must be able to reconstruct everything from picklable
    recipes).

    ``transport`` picks the wire the batch mesh runs over (see
    :mod:`repro.runtime.parallel.transport`): ``"mp-queue"`` (default, the
    original multiprocessing queues) or ``"tcp"`` (length-prefixed socket
    streams with an address-based peer table).  ``transport_options`` are
    forwarded to the transport's constructor (e.g. ``host``/``base_port``
    for tcp).  The control plane — command/result queues and the round
    barrier — stays on multiprocessing primitives for every transport;
    only the data plane is transport-pluggable.

    ``relax_barrier`` enables decentralised conservative time management:
    execution units that wholly own their system subtrees and declare no
    delay transitions run windows of ``lookahead_rounds`` rounds locally —
    no global round barrier, no per-round coordinator fold — streaming
    per-round summaries the coordinator folds asynchronously, in
    (round, declaration) order, into the very same canonical trace the
    strict protocol produces.  Units that share a system subtree or carry
    delay timers keep the barrier protocol (over a masked fold), and
    supervised or fault-injected runs disable relaxation entirely — crash
    recovery reasons in whole global rounds.
    """

    name = "multiprocess"

    def __init__(
        self,
        start_method: str = "spawn",
        round_timeout_s: float = 120.0,
        transport: str = "mp-queue",
        transport_options: Optional[Dict[str, Any]] = None,
        relax_barrier: bool = False,
        lookahead_rounds: int = 16,
    ):
        if lookahead_rounds < 1:
            raise ValueError(
                f"lookahead_rounds must be >= 1, got {lookahead_rounds}"
            )
        self.start_method = start_method
        self.round_timeout_s = round_timeout_s
        self.transport = transport
        self.transport_options = dict(transport_options or {})
        self.relax_barrier = relax_barrier
        self.lookahead_rounds = lookahead_rounds

    # -- orchestration -------------------------------------------------------------

    def execute(
        self,
        source: SpecSource,
        cluster: Cluster,
        *,
        mapping: Optional[MappingStrategy] = None,
        scheduler: Optional[Scheduler] = None,
        dispatch: str = "table-driven",
        dispatch_kwargs: Optional[Dict[str, Any]] = None,
        max_rounds: int = 10_000,
        busy_work_us_per_cost: float = 0.0,
        obs: Optional[Observability] = None,
        fault_plan: Optional[Any] = None,
        supervise: Optional[bool] = None,
    ) -> BackendResult:
        """Run ``source`` across one worker process per execution unit.

        ``fault_plan`` (a :class:`repro.faults.FaultPlan`) injects
        deterministic failures — worker crashes at round boundaries and
        wall-clock channel delays.  ``supervise`` enables round-boundary
        shard checkpointing plus crash recovery (respawn-from-checkpoint);
        it defaults to on exactly when a fault plan is present, and to off
        otherwise, so the unsupervised fast path is byte-for-byte the
        pre-resilience protocol.
        """
        obs = obs if obs is not None else NULL_OBS
        supervised = supervise if supervise is not None else fault_plan is not None
        specification = source.build()
        specification.validate()
        external = [m.path for m in specification.modules() if m.EXTERNAL]
        if external:
            raise SchedulingError(
                "the multiprocess backend supports transition-based modules "
                f"only; hand-coded (EXTERNAL) bodies {external} may exchange "
                "state through shared in-process objects that cannot be "
                "replicated across workers — run them on the in-process backend"
            )
        mapping_strategy = mapping or ThreadPerModuleMapping()
        system_mapping: SystemMapping = mapping_strategy.compute(specification, cluster)
        units = tuple(
            UnitDescriptor(
                uid=unit.uid,
                machine=unit.machine,
                processor_index=unit.processor_index,
                module_paths=tuple(unit.module_paths),
                label=unit.label,
            )
            for unit in system_mapping.units
        )
        if not units:
            raise SchedulingError("the mapping produced no execution units")
        unit_by_uid = {unit.uid: unit for unit in units}
        owner_of = {
            path: unit.uid for unit in units for path in unit.module_paths
        }
        cost_scale = cluster.machines()[0].cost_model.transition_cost_scale

        # Conservative lookahead eligibility (decided statically, before
        # spawn): supervision and fault injection keep the strict barrier
        # protocol — crash recovery reasons in whole global rounds.
        relax_active = (
            self.relax_barrier and not supervised and fault_plan is None
        )
        relaxed_uids = (
            _relaxable_units(specification, units, owner_of)
            if relax_active
            else frozenset()
        )
        barrier_units = tuple(
            unit for unit in units if unit.uid not in relaxed_uids
        )

        # Only unit pairs whose modules are actually connected need channels;
        # connectivity is read off the live IP peers (not just spec.connect)
        # so links wired by module initialisers are included.  A connection
        # created later at runtime is caught by the worker-side routing guard.
        pairs = set()
        for module in specification.modules():
            source_uid = owner_of.get(module.path)
            for point in module.ips.values():
                peer_owner = getattr(point.peer, "owner", None)
                target_uid = (
                    owner_of.get(peer_owner.path) if peer_owner is not None else None
                )
                if (
                    source_uid is not None
                    and target_uid is not None
                    and source_uid != target_uid
                ):
                    pairs.add((source_uid, target_uid))

        ctx = multiprocessing.get_context(self.start_method)
        transport = transport_by_name(self.transport, **self.transport_options)
        transport.open(ctx, [unit.uid for unit in units], pairs=pairs)
        # Only barrier units meet at the round barrier; relaxed units are
        # paced per-link by the mesh's round tags instead.
        barrier = ctx.Barrier(max(1, len(barrier_units)))
        result_queue = ctx.Queue()
        command_queues: Dict[int, Any] = {}
        processes: Dict[int, Any] = {}
        configs: Dict[int, WorkerConfig] = {}
        for unit in units:
            endpoint = transport.endpoint_for(unit.uid)
            command_queue = ctx.Queue()
            command_queues[unit.uid] = command_queue
            config = WorkerConfig(
                source=source,
                unit_uid=unit.uid,
                units=units,
                dispatch_name=dispatch,
                dispatch_kwargs=tuple(sorted((dispatch_kwargs or {}).items())),
                transition_cost_scale=cost_scale,
                busy_work_us_per_cost=busy_work_us_per_cost,
                channel_timeout_s=self.round_timeout_s,
                crash_rounds=(
                    tuple(sorted(fault_plan.crash_rounds_for(unit.uid)))
                    if fault_plan is not None
                    else ()
                ),
                send_delays=(
                    fault_plan.send_delays_for(unit.uid)
                    if fault_plan is not None
                    else ()
                ),
                checkpoint=supervised,
                relaxed=unit.uid in relaxed_uids,
            )
            configs[unit.uid] = config
            process = ctx.Process(
                target=worker_main,
                args=(config, command_queue, result_queue, endpoint, barrier),
                daemon=True,
                name=f"estelle-unit-{unit.uid}",
            )
            processes[unit.uid] = process
        supervisor = (
            _Supervisor(
                ctx,
                transport,
                barrier,
                result_queue,
                command_queues,
                processes,
                configs,
                obs,
            )
            if supervised
            else None
        )

        planner = _RoundPlanner(
            specification,
            scheduler or DecentralisedScheduler(),
            incremental=dispatch == PLANNER_DISPATCH_NAME,
        )
        if relaxed_uids:
            planner.mask_roots(
                root.path
                for root in specification.system_modules()
                if {
                    owner_of[m.path]
                    for m in root.walk()
                    if m.path in owner_of
                }
                <= relaxed_uids
            )
        # The delay clock's single authority: the coordinator owns the time,
        # broadcasts it with every "select", and advances it by the busiest
        # unit's firing-cost sum per round — the identical derivation the
        # in-process executor uses, so FiringEvent.time stays byte-equal.
        clock = SimulatedClock()
        trace = ExecutionTrace(enabled=True)

        # Coordinator-side folds of the workers' per-round obs deltas.  All
        # pure wall-clock measurement: the deltas never touch the plan, the
        # costs or the simulated clock.
        registry = obs.registry
        m_rounds = registry.counter(
            "repro_parallel_rounds_total",
            "Computation rounds completed by the multiprocess backend.",
        )
        m_busy = registry.counter(
            "repro_parallel_unit_busy_seconds_total",
            "Wall-clock seconds each unit's worker spent firing + flushing.",
            labelnames=("unit",),
        )
        m_sync = registry.counter(
            "repro_parallel_unit_sync_seconds_total",
            "Wall-clock seconds each unit's worker waited at the round barrier.",
            labelnames=("unit",),
        )
        m_messages = registry.counter(
            "repro_parallel_messages_total",
            "Cross-unit interactions routed through the channel mesh.",
        )
        h_batch = registry.histogram(
            "repro_parallel_batch_size",
            "Messages per per-peer channel batch (one batch per peer per round).",
            buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128, 256),
        )
        m_barrier_rounds = registry.counter(
            "repro_parallel_barrier_rounds_total",
            "Unit-rounds that synchronised at the global round barrier.",
        )
        m_lookahead_rounds = registry.counter(
            "repro_parallel_lookahead_rounds_total",
            "Unit-rounds run locally under conservative lookahead "
            "(relaxed barrier).",
        )
        registry.gauge(
            "repro_parallel_workers", "Worker processes of the last run."
        ).set(len(units))
        metrics = {
            "rounds": m_rounds,
            "busy": m_busy,
            "sync": m_sync,
            "messages": m_messages,
            "batch": h_batch,
            "barrier_rounds": m_barrier_rounds,
            "lookahead_rounds": m_lookahead_rounds,
        }

        try:
            for process in processes.values():
                process.start()
            self._gather(result_queue, "ready", 0, len(units), processes)
            for unit in units:
                obs.events.emit(
                    "worker_spawn",
                    unit=unit.uid,
                    machine=unit.machine,
                    modules=len(unit.module_paths),
                )
            loop_started = time.perf_counter()
            if relaxed_uids:
                rounds, transitions_fired, deadlocked, stop_reason = (
                    self._run_relaxed_loop(
                        specification=specification,
                        owner_of=owner_of,
                        unit_by_uid=unit_by_uid,
                        barrier_units=barrier_units,
                        relaxed_uids=relaxed_uids,
                        command_queues=command_queues,
                        result_queue=result_queue,
                        processes=processes,
                        planner=planner,
                        clock=clock,
                        trace=trace,
                        max_rounds=max_rounds,
                        metrics=metrics,
                    )
                )
            else:
                rounds, transitions_fired, deadlocked, stop_reason = (
                    self._run_barrier_loop(
                        specification=specification,
                        owner_of=owner_of,
                        unit_by_uid=unit_by_uid,
                        units=units,
                        command_queues=command_queues,
                        result_queue=result_queue,
                        processes=processes,
                        planner=planner,
                        clock=clock,
                        trace=trace,
                        max_rounds=max_rounds,
                        metrics=metrics,
                        supervisor=supervisor,
                    )
                )
            wall = time.perf_counter() - loop_started
        finally:
            self._shutdown(command_queues, processes, transport)

        return BackendResult(
            backend=self.name,
            trace=trace,
            rounds=rounds,
            transitions_fired=transitions_fired,
            wall_seconds=wall,
            deadlocked=deadlocked,
            workers=len(units),
            metrics=None,
            simulated_time=clock.now,
            stop_reason=stop_reason,
            transport=transport.name,
        )

    # -- the two coordinator loops -------------------------------------------------

    def _run_barrier_loop(
        self,
        *,
        specification: Specification,
        owner_of: Dict[str, int],
        unit_by_uid: Dict[int, UnitDescriptor],
        units,
        command_queues: Dict[int, Any],
        result_queue,
        processes: Dict[int, Any],
        planner: _RoundPlanner,
        clock: SimulatedClock,
        trace: ExecutionTrace,
        max_rounds: int,
        metrics: Dict[str, Any],
        supervisor: Optional[_Supervisor],
    ) -> Tuple[int, int, bool, str]:
        """The strict protocol: every unit synchronises every round."""
        rounds = 0
        transitions_fired = 0
        deadlocked = False
        stop_reason = "budget"
        all_uids = frozenset(unit.uid for unit in units)
        for round_index in range(1, max_rounds + 1):
            summaries, deadlines = self._select_round(
                command_queues,
                result_queue,
                processes,
                units,
                round_index,
                clock,
                supervisor=supervisor,
            )
            plan = planner.plan(summaries)
            # An empty plan with delay timers still running means time is
            # the missing enabler: jump the clock to the earliest worker-
            # reported deadline and re-select (same round index — a jump
            # is not a computation round).  Each jump strictly advances
            # the clock, so the loop terminates.
            resume_at = clock.now
            while plan.empty and deadlines:
                next_deadline = min(deadlines)
                if next_deadline <= clock.now:
                    break
                clock.now = next_deadline
                # Fresh summaries cover both modes: incremental workers
                # report deltas (the planner's cache holds the rest),
                # non-incremental workers re-report their full shard.
                summaries, deadlines = self._select_round(
                    command_queues,
                    result_queue,
                    processes,
                    units,
                    round_index,
                    clock,
                    supervisor=supervisor,
                )
                plan = planner.plan(summaries)
            if plan.empty:
                # Quiescent: rewind jumps taken chasing stale deadline
                # entries, mirroring the in-process executor, so the
                # final simulated_time matches across dispatches.
                clock.now = resume_at
                deadlocked = (
                    planner.has_pending()
                    if planner.incremental
                    else any(summary[5] > 0 for summary in summaries.values())
                )
                stop_reason = "quiescent"
                break

            assignments = self._build_assignments(
                plan, owner_of, [unit.uid for unit in units]
            )
            round_started = time.perf_counter()
            for uid, command_queue in command_queues.items():
                command_queue.put(("fire", round_index, tuple(assignments[uid])))
            report_sets = self._gather(
                result_queue, "fired", round_index, len(units), processes
            )
            round_wall = time.perf_counter() - round_started

            ordered: List[Tuple[int, FiringReport]] = []
            for uid, payload in report_sets.items():
                reports, delta = payload[0], payload[1]
                if supervisor is not None and len(payload) > 2:
                    supervisor.store_checkpoint(uid, payload[2])
                self._fold_delta(metrics, uid, delta)
                ordered.extend((uid, report) for report in reports)
            ordered.sort(key=lambda item: item[1][0])  # by plan index

            trace.start_round(round_index)
            unit_firing_costs = self._record_reports(
                trace,
                round_index,
                ordered,
                unit_by_uid,
                clock,
                specification,
                owner_of,
                planner,
                replay_uids=all_uids,
            )
            trace.finish_round(makespan=round_wall, serial_overhead=0.0)
            clock.advance(firing_advance(unit_firing_costs))
            rounds += 1
            transitions_fired += len(ordered)
            metrics["rounds"].inc()
            metrics["barrier_rounds"].inc(len(units))
        return rounds, transitions_fired, deadlocked, stop_reason

    def _run_relaxed_loop(
        self,
        *,
        specification: Specification,
        owner_of: Dict[str, int],
        unit_by_uid: Dict[int, UnitDescriptor],
        barrier_units,
        relaxed_uids: frozenset,
        command_queues: Dict[int, Any],
        result_queue,
        processes: Dict[int, Any],
        planner: _RoundPlanner,
        clock: SimulatedClock,
        trace: ExecutionTrace,
        max_rounds: int,
        metrics: Dict[str, Any],
    ) -> Tuple[int, int, bool, str]:
        """The coordinator loop with the round barrier relaxed.

        Barrier units keep the strict select/plan/fire protocol, folded
        over the masked specification (their roots only).  Relaxed units
        receive *windows* of rounds (``run_rounds``) and stream back one
        ``lround`` summary per round; this loop folds each global round's
        barrier reports and relaxed summaries — bucketed per system root,
        concatenated in declaration order — into the same canonical trace
        the strict protocol produces.  Pacing is delegated to the mesh's
        per-link round tags: a relaxed unit runs at most one round ahead
        of any peer it shares a link with, and arbitrarily far ahead of
        units it never exchanges interactions with.
        """
        rounds = 0
        transitions_fired = 0
        deadlocked = False
        stop_reason = "budget"
        barrier_uids = [unit.uid for unit in barrier_units]
        relaxed_order = sorted(relaxed_uids)
        collector = _ResultCollector(
            result_queue, processes, self.round_timeout_s
        )
        system_roots = [root.path for root in specification.system_modules()]
        window_end = 0

        def root_of(path: str) -> str:
            # System module paths are "<spec>/<root>"; every descendant
            # path extends one, so its first two segments name its root.
            return "/".join(path.split("/", 2)[:2])

        for round_index in range(1, max_rounds + 1):
            if round_index > window_end:
                window_end = min(
                    round_index + self.lookahead_rounds - 1, max_rounds
                )
                for uid in relaxed_order:
                    command_queues[uid].put(
                        ("run_rounds", round_index, window_end)
                    )
            summaries, deadlines = self._select_subset(
                command_queues, collector, barrier_uids, round_index, clock
            )
            plan = planner.plan(summaries)
            lrounds = collector.collect("lround", round_index, relaxed_order)
            relaxed_planned = sum(payload[0] for payload in lrounds.values())
            # The deadline-jump loop involves the barrier units only: a
            # relaxed unit is delay-free, so its (already executed) local
            # plan for this round is invariant under clock jumps.
            resume_at = clock.now
            while plan.empty and relaxed_planned == 0 and deadlines:
                next_deadline = min(deadlines)
                if next_deadline <= clock.now:
                    break
                clock.now = next_deadline
                summaries, deadlines = self._select_subset(
                    command_queues, collector, barrier_uids, round_index, clock
                )
                plan = planner.plan(summaries)
            if plan.empty and relaxed_planned == 0:
                clock.now = resume_at
                deadlocked = (
                    planner.has_pending()
                    if planner.incremental
                    else any(summary[5] > 0 for summary in summaries.values())
                ) or any(payload[3] > 0 for payload in lrounds.values())
                stop_reason = "quiescent"
                for uid, payload in lrounds.items():
                    self._fold_delta(metrics, uid, payload[2])
                self._drain_windows(
                    command_queues,
                    collector,
                    barrier_uids,
                    relaxed_order,
                    round_index,
                    window_end,
                    metrics,
                )
                break

            assignments = self._build_assignments(plan, owner_of, barrier_uids)
            round_started = time.perf_counter()
            for uid in barrier_uids:
                # Every barrier unit fires every round — an empty assignment
                # still flushes empty batches, pacing relaxed downstreams.
                command_queues[uid].put(
                    ("fire", round_index, tuple(assignments[uid]))
                )
            report_sets = collector.collect("fired", round_index, barrier_uids)
            round_wall = time.perf_counter() - round_started

            barrier_reports: List[Tuple[int, FiringReport]] = []
            for uid, payload in report_sets.items():
                reports, delta = payload[0], payload[1]
                self._fold_delta(metrics, uid, delta)
                barrier_reports.extend((uid, report) for report in reports)
            barrier_reports.sort(key=lambda item: item[1][0])  # masked plan order

            # Reassemble the global round order without global plan indices:
            # the in-process plan walks system roots in declaration order,
            # and each root's firings come from exactly one source — the
            # masked coordinator plan (barrier roots, already in plan order)
            # or one relaxed unit's local plan (in its report order).
            buckets: Dict[str, List[Tuple[int, FiringReport]]] = {}
            for uid, report in barrier_reports:
                buckets.setdefault(root_of(report[1]), []).append((uid, report))
            for uid in relaxed_order:
                _planned, reports, delta, _pending = lrounds[uid]
                self._fold_delta(metrics, uid, delta)
                for report in reports:
                    buckets.setdefault(root_of(report[1]), []).append(
                        (uid, report)
                    )
            ordered = [
                item for root in system_roots for item in buckets.get(root, [])
            ]

            trace.start_round(round_index)
            unit_firing_costs = self._record_reports(
                trace,
                round_index,
                ordered,
                unit_by_uid,
                clock,
                specification,
                owner_of,
                planner,
                # A relaxed unit's subtree is masked out of the fold, so its
                # topology events never replay on the coordinator replica.
                replay_uids=frozenset(barrier_uids),
            )
            trace.finish_round(makespan=round_wall, serial_overhead=0.0)
            clock.advance(firing_advance(unit_firing_costs))
            rounds += 1
            transitions_fired += len(ordered)
            metrics["rounds"].inc()
            metrics["barrier_rounds"].inc(len(barrier_uids))
            metrics["lookahead_rounds"].inc(len(relaxed_uids))
        return rounds, transitions_fired, deadlocked, stop_reason

    def _drain_windows(
        self,
        command_queues: Dict[int, Any],
        collector: _ResultCollector,
        barrier_uids: List[int],
        relaxed_order: List[int],
        round_index: int,
        window_end: int,
        metrics: Dict[str, Any],
    ) -> None:
        """Run the already-issued lookahead windows out on empty rounds.

        At quiescence the relaxed units still hold windows reaching
        ``window_end``; each is blocked (or about to block) on its barrier
        in-peers' next batch.  Firing the barrier units with empty
        assignments keeps the per-link round tags flowing, so every relaxed
        unit finishes its window with provably empty rounds — a non-empty
        drained round is a soundness violation and fails loud — and every
        queue drains clean before shutdown.
        """
        for drain_round in range(round_index, window_end):
            for uid in barrier_uids:
                command_queues[uid].put(("fire", drain_round, ()))
            fired = collector.collect("fired", drain_round, barrier_uids)
            for uid, payload in fired.items():
                self._fold_delta(metrics, uid, payload[1])
        for drain_round in range(round_index + 1, window_end + 1):
            lrounds = collector.collect("lround", drain_round, relaxed_order)
            for uid, (planned, _reports, delta, _pending) in lrounds.items():
                self._fold_delta(metrics, uid, delta)
                if planned:
                    raise ParallelExecutionError(
                        f"unit {uid} planned {planned} firing(s) in round "
                        f"{drain_round}, after the specification quiesced "
                        f"in round {round_index}; conservative lookahead "
                        "drained a non-empty round"
                    )
        collector.collect("window_done", window_end, relaxed_order)

    @staticmethod
    def _select_subset(
        command_queues: Dict[int, Any],
        collector: _ResultCollector,
        barrier_uids: List[int],
        round_index: int,
        clock: SimulatedClock,
    ) -> Tuple[Dict[str, SelectionSummary], List[float]]:
        """Select over the barrier units only (relaxed units plan locally)."""
        if not barrier_uids:
            return {}, []
        for uid in barrier_uids:
            command_queues[uid].put(("select", round_index, clock.now))
        summary_sets = collector.collect("summaries", round_index, barrier_uids)
        summaries: Dict[str, SelectionSummary] = {}
        deadlines: List[float] = []
        for per_unit, unit_deadline in summary_sets.values():
            for summary in per_unit:
                summaries[summary[0]] = summary
            if unit_deadline is not None:
                deadlines.append(unit_deadline)
        return summaries, deadlines

    @staticmethod
    def _build_assignments(
        plan: RoundPlan, owner_of: Dict[str, int], unit_uids
    ) -> Dict[int, List[AssignedFiring]]:
        """Split the plan's firings into per-unit assignment lists."""
        assignments: Dict[int, List[AssignedFiring]] = {
            uid: [] for uid in unit_uids
        }
        for plan_index, firing in enumerate(plan.firings):
            path = firing.module.path
            try:
                target_uid = owner_of[path]
            except KeyError as exc:
                raise SchedulingError(
                    f"module {path!r} has no execution unit; statically "
                    "mapped modules must be covered by the mapping, and "
                    "dynamically created ones inherit their parent's "
                    "unit through the topology replay"
                ) from exc
            if target_uid not in assignments:
                raise ParallelExecutionError(
                    f"the round plan assigned {path!r} to unit {target_uid}, "
                    "which is not part of this fold (a relaxed unit's module "
                    "leaked into the masked coordinator plan?)"
                )
            assignments[target_uid].append(
                (
                    plan_index,
                    path,
                    firing.result.transition.name
                    if firing.result.transition
                    else None,
                    firing.is_external,
                )
            )
        return assignments

    def _record_reports(
        self,
        trace: ExecutionTrace,
        round_index: int,
        ordered: List[Tuple[int, FiringReport]],
        unit_by_uid: Dict[int, UnitDescriptor],
        clock: SimulatedClock,
        specification: Specification,
        owner_of: Dict[str, int],
        planner: _RoundPlanner,
        replay_uids: frozenset,
    ) -> Dict[int, float]:
        """Record one round's merged firing reports on the canonical trace.

        ``replay_uids`` limits whose topology events replay on the
        coordinator replica: barrier units' events must (the precedence
        fold needs the tree), a relaxed unit's must not (its subtree is
        masked out of the fold and stays frozen coordinator-side).
        """
        unit_firing_costs: Dict[int, float] = {}
        for uid, report in ordered:
            (
                _,
                path,
                name,
                state_before,
                state_after,
                interaction,
                cost,
                topology,
            ) = report
            unit = unit_by_uid[uid]
            unit_firing_costs[uid] = unit_firing_costs.get(uid, 0.0) + cost
            trace.record_firing(
                FiringEvent(
                    round_index=round_index,
                    module_path=path,
                    transition_name=name,
                    state_before=state_before,
                    state_after=state_after,
                    interaction_name=interaction,
                    cost=cost,
                    unit_id=unit.uid,
                    machine=unit.machine,
                    time=clock.now,
                )
            )
            if topology and uid in replay_uids:
                # Replay worker-side init/release on the coordinator
                # replica, in global plan order, so the precedence
                # fold sees the same tree as the in-process executor.
                self._replay_topology(specification, owner_of, planner, topology)
        return unit_firing_costs

    @staticmethod
    def _fold_delta(metrics: Dict[str, Any], uid: int, delta) -> None:
        """Fold one worker round's obs delta into the coordinator counters."""
        busy_seconds, sync_seconds, messages, batch_sizes = delta
        metrics["busy"].labels(unit=str(uid)).inc(busy_seconds)
        metrics["sync"].labels(unit=str(uid)).inc(sync_seconds)
        if messages:
            metrics["messages"].inc(messages)
        for size in batch_sizes:
            metrics["batch"].observe(size)

    # -- protocol helpers ----------------------------------------------------------

    @staticmethod
    def _replay_topology(
        specification: Specification,
        owner_of: Dict[str, int],
        planner: _RoundPlanner,
        events,
    ) -> None:
        """Mirror worker-reported tree-shape changes on the coordinator.

        A dynamically created child is placed on its parent's execution unit
        (``owner_of`` inherits the parent's uid for the whole new subtree);
        a released child's subtree is retired from the ownership map so it
        can never be assigned a firing again.  ``init`` replays are
        idempotent: a child already present (created by a replica-side
        ``initialise`` cascade of an earlier event this round) is kept.
        """
        for event in events:
            if event[0] == "init":
                _, parent_path, child_name, class_name, variables = event
                parent = specification.find(parent_path)
                child = parent.children.get(child_name)
                if child is None:
                    module_class = specification.body_classes.get(class_name)
                    if module_class is None:
                        raise SchedulingError(
                            f"cannot replay dynamic init of "
                            f"{parent_path}/{child_name}: module class "
                            f"{class_name!r} is not registered on the "
                            "specification; register it with "
                            "Specification.register_body_class"
                        )
                    child = parent.create_child(
                        module_class, child_name, **dict(variables)
                    )
                try:
                    unit_uid = owner_of[parent_path]
                except KeyError as exc:
                    raise SchedulingError(
                        f"dynamic init under {parent_path!r}, which has no "
                        "execution unit"
                    ) from exc
                for descendant in child.walk():
                    owner_of[descendant.path] = unit_uid
            else:  # release
                _, parent_path, child_name = event
                parent = specification.find(parent_path)
                child = parent.children.get(child_name)
                if child is not None:
                    for descendant in child.walk():
                        owner_of.pop(descendant.path, None)
                    parent.release_child(child_name)
            planner.note_structure_change()

    def _select_round(
        self,
        command_queues: Dict[int, Any],
        result_queue,
        processes: Dict[int, Any],
        units,
        round_index: int,
        clock: SimulatedClock,
        supervisor: Optional[_Supervisor] = None,
    ) -> Tuple[Dict[str, SelectionSummary], List[float]]:
        """Broadcast one select at the clock's current time; fold the replies.

        Returns the merged per-module summaries plus every worker-reported
        future delay deadline (empty when no timers are running anywhere).
        With a supervisor, a worker found dead mid-gather is respawned from
        its last shard checkpoint and its select re-issued, transparently.
        """
        self._broadcast(command_queues, ("select", round_index, clock.now))
        if supervisor is None:
            summary_sets = self._gather(
                result_queue, "summaries", round_index, len(units), processes
            )
        else:
            summary_sets = self._gather_supervised(
                result_queue, round_index, len(units), processes, supervisor, clock
            )
        summaries: Dict[str, SelectionSummary] = {}
        deadlines: List[float] = []
        for per_unit, unit_deadline in summary_sets.values():
            for summary in per_unit:
                summaries[summary[0]] = summary
            if unit_deadline is not None:
                deadlines.append(unit_deadline)
        return summaries, deadlines

    @staticmethod
    def _broadcast(command_queues: Dict[int, Any], command: Tuple) -> None:
        for command_queue in command_queues.values():
            command_queue.put(command)

    def _gather_supervised(
        self,
        result_queue,
        round_index: int,
        expected: int,
        processes: Dict[int, Any],
        supervisor: _Supervisor,
        clock: SimulatedClock,
    ) -> Dict[int, Any]:
        """The select gather with crash recovery.

        Differences from :meth:`_gather`: a dead worker triggers a respawn
        (restore-from-checkpoint + re-issued select) instead of an abort,
        the gather deadline restarts after each recovery, and stray
        ``"ready"`` boot messages from replacements are skipped (each
        replacement's ready always precedes its summaries on the queue, so
        none can leak past this gather).
        """
        collected: Dict[int, Any] = {}
        deadline = time.perf_counter() + self.round_timeout_s
        while len(collected) < expected:
            try:
                uid, got_kind, got_round, payload = result_queue.get(timeout=1.0)
            except Empty:
                dead = [
                    uid
                    for uid, process in processes.items()
                    if not process.is_alive() and process.exitcode not in (0, None)
                ]
                if dead:
                    for dead_uid in sorted(dead):
                        supervisor.respawn(dead_uid, round_index, clock.now)
                    deadline = time.perf_counter() + self.round_timeout_s
                    continue
                if time.perf_counter() >= deadline:
                    raise ParallelExecutionError(
                        f"timed out waiting for 'summaries' results of round "
                        f"{round_index} ({len(collected)}/{expected} workers reported)"
                    ) from None
                continue
            if got_kind == "ready":
                continue  # a respawned replacement booting
            if got_kind == "error":
                raise ParallelExecutionError(
                    f"worker for unit {uid} failed:\n{payload}"
                )
            if got_kind != "summaries" or got_round != round_index:
                raise ParallelExecutionError(
                    f"protocol violation: expected 'summaries' for round "
                    f"{round_index}, unit {uid} sent {got_kind!r} for round {got_round}"
                )
            if uid in collected:
                raise ParallelExecutionError(
                    f"unit {uid} reported 'summaries' twice for round {round_index}"
                )
            collected[uid] = payload
        return collected

    def _gather(
        self,
        result_queue,
        kind: str,
        round_index: int,
        expected: int,
        processes: Dict[int, Any],
    ) -> Dict[int, Any]:
        """Collect exactly one ``kind`` result per worker for ``round_index``.

        An ``error`` result from any worker aborts the run with that worker's
        traceback.  The queue is polled in short slices so a worker that died
        *without* reporting (killed, or its spawned interpreter failed before
        ``worker_main`` ran — e.g. an unimportable ``__main__``) is diagnosed
        within seconds rather than after the full round timeout.
        """
        collected: Dict[int, Any] = {}
        deadline = time.perf_counter() + self.round_timeout_s
        while len(collected) < expected:
            try:
                uid, got_kind, got_round, payload = result_queue.get(timeout=1.0)
            except Empty:
                dead = [
                    process.name
                    for process in processes.values()
                    if not process.is_alive() and process.exitcode not in (0, None)
                ]
                if dead:
                    raise ParallelExecutionError(
                        f"worker(s) {', '.join(dead)} died without reporting "
                        f"(waiting for {kind!r} of round {round_index}); when "
                        "using the spawn start method the driving script must "
                        "be importable (a real file with an "
                        "'if __name__ == \"__main__\"' guard, not stdin)"
                    ) from None
                if time.perf_counter() >= deadline:
                    raise ParallelExecutionError(
                        f"timed out waiting for {kind!r} results of round "
                        f"{round_index} ({len(collected)}/{expected} workers reported)"
                    ) from None
                continue
            if got_kind == "error":
                raise ParallelExecutionError(
                    f"worker for unit {uid} failed:\n{payload}"
                )
            if got_kind != kind or got_round != round_index:
                raise ParallelExecutionError(
                    f"protocol violation: expected {kind!r} for round "
                    f"{round_index}, unit {uid} sent {got_kind!r} for round {got_round}"
                )
            if uid in collected:
                raise ParallelExecutionError(
                    f"unit {uid} reported {kind!r} twice for round {round_index}"
                )
            collected[uid] = payload
        return collected

    @staticmethod
    def _shutdown(
        command_queues: Dict[int, Any], processes: Dict[int, Any], transport
    ) -> None:
        for command_queue in command_queues.values():
            try:
                command_queue.put(("stop",))
            except (ValueError, OSError):  # queue already closed
                pass
        for process in processes.values():
            if process.is_alive():
                process.join(timeout=5.0)
        for process in processes.values():
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        # Escalate: a worker wedged in uninterruptible I/O can shrug off
        # SIGTERM; SIGKILL cannot be ignored, so teardown can never hang on
        # a stuck worker.
        for process in processes.values():
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)
        try:
            transport.close()
        except (ValueError, OSError):  # pragma: no cover - best-effort cleanup
            pass
