"""Canonical firing traces: the equivalence currency of the backends.

The multiprocess backend is only trustworthy if it is *behaviourally
invisible*: running a specification sharded over OS processes must fire
exactly the same transitions, in the same rounds, in the same order, with the
same state changes and consumed interactions, as the in-process executor.
This module defines the canonical byte encoding both backends are compared
under — a JSON document of per-round firing tuples with a fixed field order —
plus a human-oriented diff helper for when a regression does slip in.

Per-round timing fields (makespan, serial overhead) are deliberately *not*
part of the canonical form: the in-process executor records modelled
simulated time there while the multiprocess backend records measured
wall-clock, and neither invalidates the other.
"""

from __future__ import annotations

import json
from typing import List, Optional, Tuple

from ..tracing import ExecutionTrace, FiringEvent

#: The FiringEvent fields that define behavioural equivalence, in canonical
#: order.  ``cost`` is included: both backends compute it as the transition's
#: declared cost times the same scale factor, so a mismatch means the wrong
#: transition (or the wrong cost model) fired.  ``time`` is the simulated
#: time at the start of the firing's round: the shared clock advances by the
#: busiest unit's firing-cost sum per round (and jumps to the next delay
#: deadline when only timers are pending), which is derived from the same
#: declared costs and unit placement on both backends — so a ``time``
#: mismatch means delay semantics (or the clock derivation) diverged.
CANONICAL_FIELDS: Tuple[str, ...] = (
    "round_index",
    "module_path",
    "transition_name",
    "state_before",
    "state_after",
    "interaction_name",
    "cost",
    "unit_id",
    "machine",
    "time",
)


def firing_tuple(event: FiringEvent) -> Tuple:
    """One firing event as its canonical tuple."""
    return tuple(getattr(event, name) for name in CANONICAL_FIELDS)


def canonical_rounds(trace: ExecutionTrace) -> List[List[Tuple]]:
    """The trace as a list of rounds, each a list of canonical firing tuples."""
    return [[firing_tuple(event) for event in record.firings] for record in trace.rounds]


def canonical_trace_bytes(trace: ExecutionTrace) -> bytes:
    """The canonical byte encoding of a trace.

    JSON with sorted-free positional tuples (field order is fixed by
    :data:`CANONICAL_FIELDS`), compact separators and no float rounding —
    equivalence is *byte* equality, not approximate equality.  Both backends
    derive every float through the same arithmetic on the same inputs, so
    bit-identical floats are the expectation, not an accident.
    """
    return json.dumps(
        {"fields": CANONICAL_FIELDS, "rounds": canonical_rounds(trace)},
        separators=(",", ":"),
    ).encode("utf-8")


def traces_equal(a: ExecutionTrace, b: ExecutionTrace) -> bool:
    """Whether two traces are byte-identical under the canonical encoding."""
    return canonical_trace_bytes(a) == canonical_trace_bytes(b)


def trace_diff(a: ExecutionTrace, b: ExecutionTrace) -> Optional[str]:
    """Human-readable description of the first divergence (None when equal).

    Used by the equivalence tests and the smoke CLI so a failure names the
    exact round and firing instead of dumping two opaque byte strings.
    """
    rounds_a, rounds_b = canonical_rounds(a), canonical_rounds(b)
    for index in range(max(len(rounds_a), len(rounds_b))):
        if index >= len(rounds_a):
            return f"round {index + 1}: first trace ended, second has {rounds_b[index]}"
        if index >= len(rounds_b):
            return f"round {index + 1}: second trace ended, first has {rounds_a[index]}"
        round_a, round_b = rounds_a[index], rounds_b[index]
        for position in range(max(len(round_a), len(round_b))):
            left = round_a[position] if position < len(round_a) else "<missing>"
            right = round_b[position] if position < len(round_b) else "<missing>"
            if left != right:
                return (
                    f"round {index + 1}, firing {position}: "
                    f"{left!r} != {right!r}"
                )
    return None
