"""Mapping of Estelle modules onto execution units, threads and processors.

Section 5.2 of the paper: the generated runtime initially created *one thread
per Estelle module* ("the maximum degree of parallelism allowed by Estelle
semantics"), which loses when the number of modules exceeds the number of
processors because of synchronisation and context-switch overhead.  The
paper's remedy is to *group* modules into as many units as there are
processors.  Section 3 adds that *connection-per-processor* beats
*layer-per-processor*.

A mapping assigns every module instance to exactly one :class:`ExecutionUnit`
(the unit is what a thread executes: all modules in a unit run sequentially),
and every unit to a processor of the machine the module's system module was
placed on.  Interactions between modules of the same unit are cheap; crossing
units costs synchronisation; crossing machines costs a remote message.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..estelle.module import Module
from ..estelle.specification import Specification
from ..sim.machine import Cluster, Machine


@dataclass
class ExecutionUnit:
    """A group of modules executed sequentially by one (simulated) thread."""

    uid: int
    machine: str
    processor_index: int
    module_paths: List[str] = field(default_factory=list)
    label: str = ""

    @property
    def size(self) -> int:
        return len(self.module_paths)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ExecutionUnit(#{self.uid} {self.label or ''} on "
            f"{self.machine}/cpu{self.processor_index}, modules={self.size})"
        )


class SystemMapping:
    """The complete assignment of modules to units and units to processors."""

    def __init__(self, units: Sequence[ExecutionUnit]):
        self.units: List[ExecutionUnit] = list(units)
        self._unit_of: Dict[str, ExecutionUnit] = {}
        for unit in self.units:
            for path in unit.module_paths:
                if path in self._unit_of:
                    raise ValueError(f"module {path!r} assigned to two units")
                self._unit_of[path] = unit

    def unit_of(self, module_path: str) -> ExecutionUnit:
        try:
            return self._unit_of[module_path]
        except KeyError as exc:
            raise KeyError(
                f"module {module_path!r} has no execution unit; "
                "was it created after the mapping was computed?"
            ) from exc

    def knows(self, module_path: str) -> bool:
        return module_path in self._unit_of

    def units_on(self, machine: str) -> List[ExecutionUnit]:
        return [u for u in self.units if u.machine == machine]

    def processors_used(self, machine: str) -> int:
        return len({u.processor_index for u in self.units_on(machine)})

    def describe(self) -> str:
        lines = []
        for unit in self.units:
            members = ", ".join(unit.module_paths)
            lines.append(
                f"unit#{unit.uid} [{unit.label}] {unit.machine}/cpu{unit.processor_index}: {members}"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------


class MappingStrategy:
    """Interface: derive a :class:`SystemMapping` from a specification."""

    name = "abstract"

    def compute(self, specification: Specification, cluster: Cluster) -> SystemMapping:
        raise NotImplementedError

    # -- shared helpers -------------------------------------------------------------

    @staticmethod
    def _modules_by_machine(
        specification: Specification, cluster: Cluster
    ) -> Dict[str, List[Module]]:
        grouped: Dict[str, List[Module]] = defaultdict(list)
        default_machine = cluster.machines()[0].name if cluster.machines() else None
        for module in specification.modules():
            location = specification.location_of(module)
            if location not in cluster:
                if location == "local" and default_machine is not None:
                    # "local" is the specification default, meaning "no explicit
                    # placement comment": run on the cluster's first machine.
                    location = default_machine
                else:
                    raise KeyError(
                        f"module {module.path} is placed on {location!r}, which is not "
                        "a machine of the cluster"
                    )
            grouped[location].append(module)
        return grouped

    @staticmethod
    def _build_units(
        groups_per_machine: Dict[str, List[Tuple[str, List[Module]]]],
        cluster: Cluster,
    ) -> SystemMapping:
        """Turn per-machine (label, modules) groups into processor-assigned units."""
        units: List[ExecutionUnit] = []
        uid_counter = itertools.count(1)
        for machine_name, groups in groups_per_machine.items():
            machine = cluster.get(machine_name)
            for index, (label, members) in enumerate(groups):
                if not members:
                    continue
                units.append(
                    ExecutionUnit(
                        uid=next(uid_counter),
                        machine=machine_name,
                        processor_index=index % machine.processor_count,
                        module_paths=[m.path for m in members],
                        label=label,
                    )
                )
        return SystemMapping(units)


class ThreadPerModuleMapping(MappingStrategy):
    """One unit (thread) per module — the generator's default, maximum parallelism."""

    name = "thread-per-module"

    def compute(self, specification: Specification, cluster: Cluster) -> SystemMapping:
        by_machine = self._modules_by_machine(specification, cluster)
        groups = {
            machine: [(module.path, [module]) for module in modules]
            for machine, modules in by_machine.items()
        }
        return self._build_units(groups, cluster)


class SequentialMapping(MappingStrategy):
    """All modules of a machine in a single unit: the sequential baseline."""

    name = "sequential"

    def compute(self, specification: Specification, cluster: Cluster) -> SystemMapping:
        by_machine = self._modules_by_machine(specification, cluster)
        groups = {
            machine: [("all", modules)] for machine, modules in by_machine.items()
        }
        return self._build_units(groups, cluster)


class GroupedMapping(MappingStrategy):
    """The paper's grouping scheme: as many units as processors.

    Modules of a machine are distributed over ``min(processors, modules)``
    units.  Whole subtrees of the system module are kept together when
    possible (a connection handler and its children stay in one unit), which
    is what avoids the synchronisation losses the paper describes.
    """

    name = "grouped"

    def __init__(self, max_units: Optional[int] = None):
        self.max_units = max_units

    def compute(self, specification: Specification, cluster: Cluster) -> SystemMapping:
        by_machine = self._modules_by_machine(specification, cluster)
        groups: Dict[str, List[Tuple[str, List[Module]]]] = {}
        for machine_name, modules in by_machine.items():
            machine = cluster.get(machine_name)
            unit_count = min(
                machine.processor_count if self.max_units is None else self.max_units,
                len(modules),
            )
            unit_count = max(1, unit_count)
            buckets: List[List[Module]] = [[] for _ in range(unit_count)]
            # Keep subtrees together: assign each top-level subtree (system
            # module child) to the currently least-loaded bucket; the system
            # modules themselves go to bucket 0.
            subtree_of: Dict[str, int] = {}
            for module in modules:
                anchor = self._subtree_anchor(module)
                if anchor in subtree_of:
                    buckets[subtree_of[anchor]].append(module)
                else:
                    target = min(range(unit_count), key=lambda i: len(buckets[i]))
                    subtree_of[anchor] = target
                    buckets[target].append(module)
            groups[machine_name] = [
                (f"group-{i}", bucket) for i, bucket in enumerate(buckets) if bucket
            ]
        return self._build_units(groups, cluster)

    @staticmethod
    def _subtree_anchor(module: Module) -> str:
        """Path of the module's ancestor directly below its system module."""
        system = module.system_module()
        if system is None or module is system:
            return module.path
        node = module
        while node.parent is not None and node.parent is not system:
            node = node.parent
        return node.path


class ConnectionPerProcessorMapping(MappingStrategy):
    """Group by connection: every connection-handler subtree is one unit.

    The key function defaults to "the subtree rooted directly below the system
    module", which in the MCAM and OSI specifications corresponds to one
    protocol-entity instance per connection.  Modules with no such ancestor
    (the system modules themselves) form a per-machine control unit.
    """

    name = "connection-per-processor"

    def __init__(self, key: Optional[Callable[[Module], str]] = None):
        self._key = key or GroupedMapping._subtree_anchor

    def compute(self, specification: Specification, cluster: Cluster) -> SystemMapping:
        by_machine = self._modules_by_machine(specification, cluster)
        groups: Dict[str, List[Tuple[str, List[Module]]]] = {}
        for machine_name, modules in by_machine.items():
            keyed: Dict[str, List[Module]] = defaultdict(list)
            for module in modules:
                keyed[self._key(module)].append(module)
            groups[machine_name] = [
                (key, members) for key, members in sorted(keyed.items())
            ]
        return self._build_units(groups, cluster)


class LayerPerProcessorMapping(MappingStrategy):
    """Group by protocol layer: all instances of one layer share a unit.

    Modules advertise their layer through a ``LAYER`` class attribute (the
    OSI and MCAM modules in this repository all set it); modules without one
    are grouped by their class name.  The paper reports this mapping to be
    inferior to connection-per-processor because every end-to-end interaction
    crosses a unit boundary at each layer.
    """

    name = "layer-per-processor"

    def compute(self, specification: Specification, cluster: Cluster) -> SystemMapping:
        by_machine = self._modules_by_machine(specification, cluster)
        groups: Dict[str, List[Tuple[str, List[Module]]]] = {}
        for machine_name, modules in by_machine.items():
            keyed: Dict[str, List[Module]] = defaultdict(list)
            for module in modules:
                layer = getattr(type(module), "LAYER", type(module).__name__)
                keyed[str(layer)].append(module)
            groups[machine_name] = [
                (key, members) for key, members in sorted(keyed.items())
            ]
        return self._build_units(groups, cluster)


def mapping_by_name(name: str, **kwargs) -> MappingStrategy:
    """Factory used by benchmarks and examples."""
    strategies = {
        ThreadPerModuleMapping.name: ThreadPerModuleMapping,
        SequentialMapping.name: SequentialMapping,
        GroupedMapping.name: GroupedMapping,
        ConnectionPerProcessorMapping.name: ConnectionPerProcessorMapping,
        LayerPerProcessorMapping.name: LayerPerProcessorMapping,
    }
    try:
        return strategies[name](**kwargs)
    except KeyError as exc:
        raise ValueError(
            f"unknown mapping strategy {name!r}; choose from {sorted(strategies)}"
        ) from exc
