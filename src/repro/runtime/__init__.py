"""The parallel Estelle runtime (what the paper's code generator emits).

Pieces:

* dispatch strategies (hard-coded scan, table-driven selection, and the
  code generator's specialized selection functions),
* the optimizing code generator (:mod:`repro.runtime.codegen`) emitting
  per-(state, interaction) flattened dispatch with precompiled guards,
* schedulers (centralised vs decentralised),
* mapping strategies (thread-per-module, grouping, connection-per-processor,
  layer-per-processor, sequential baseline),
* the executor that runs a specification on a simulated cluster and produces
  :class:`repro.sim.metrics.ExecutionMetrics`,
* execution traces.
"""

from .codegen import (
    CompiledModuleDispatch,
    GeneratedDispatchStrategy,
    GeneratedProgram,
    compile_module_class,
    compile_specification,
    generated_source,
)
from .dispatch import (
    DispatchResult,
    DispatchStrategy,
    HardCodedDispatch,
    TableDrivenDispatch,
    dispatch_by_name,
    register_strategy,
)
from .executor import SpecificationExecutor, run_specification
from .mapping import (
    ConnectionPerProcessorMapping,
    ExecutionUnit,
    GroupedMapping,
    LayerPerProcessorMapping,
    MappingStrategy,
    SequentialMapping,
    SystemMapping,
    ThreadPerModuleMapping,
    mapping_by_name,
)
from .scheduler import (
    CentralisedScheduler,
    DecentralisedScheduler,
    PlannedFiring,
    RoundPlan,
    Scheduler,
    scheduler_by_name,
)
from .tracing import ExecutionTrace, FiringEvent, RoundRecord

__all__ = [
    "CentralisedScheduler",
    "CompiledModuleDispatch",
    "ConnectionPerProcessorMapping",
    "DecentralisedScheduler",
    "DispatchResult",
    "DispatchStrategy",
    "ExecutionTrace",
    "ExecutionUnit",
    "FiringEvent",
    "GeneratedDispatchStrategy",
    "GeneratedProgram",
    "GroupedMapping",
    "HardCodedDispatch",
    "LayerPerProcessorMapping",
    "MappingStrategy",
    "PlannedFiring",
    "RoundPlan",
    "RoundRecord",
    "Scheduler",
    "SequentialMapping",
    "SpecificationExecutor",
    "SystemMapping",
    "TableDrivenDispatch",
    "ThreadPerModuleMapping",
    "compile_module_class",
    "compile_specification",
    "dispatch_by_name",
    "generated_source",
    "mapping_by_name",
    "register_strategy",
    "run_specification",
    "scheduler_by_name",
]
