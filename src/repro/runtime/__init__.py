"""The parallel Estelle runtime (what the paper's code generator emits).

Pieces:

* dispatch strategies (hard-coded scan, table-driven selection, and the
  code generator's specialized selection functions),
* the optimizing code generator (:mod:`repro.runtime.codegen`) emitting
  per-(state, interaction) flattened dispatch with precompiled guards,
* schedulers (centralised vs decentralised),
* the incremental fused round planner (:mod:`repro.runtime.planner`):
  dirty-set driven selection caching plus a generated whole-specification
  planner function, selected through the ``"planner"`` dispatch name,
* the simulated clock (:mod:`repro.runtime.clock`) driving Estelle ``delay``
  semantics identically on both execution backends,
* mapping strategies (thread-per-module, grouping, connection-per-processor,
  layer-per-processor, sequential baseline),
* the executor that runs a specification on a simulated cluster and produces
  :class:`repro.sim.metrics.ExecutionMetrics`,
* the execution-backend abstraction: :class:`InProcessBackend` (the modelled
  runtime) and :class:`repro.runtime.parallel.MultiprocessBackend` (real OS
  processes per execution unit), both reachable via :func:`backend_by_name`
  and required to produce byte-identical canonical firing traces,
* execution traces.
"""

from .clock import SimulatedClock, firing_advance, next_delay_deadline
from .codegen import (
    CompiledModuleDispatch,
    GeneratedDispatchStrategy,
    GeneratedProgram,
    compile_module_class,
    compile_specification,
    generated_source,
    load_dumped_selector,
)
from .dispatch import (
    DispatchResult,
    DispatchStrategy,
    HardCodedDispatch,
    TableDrivenDispatch,
    dispatch_by_name,
    register_strategy,
)
from .executor import (
    BackendResult,
    ExecutionBackend,
    InProcessBackend,
    SpecSource,
    SpecificationExecutor,
    backend_by_name,
    busy_work_for,
    register_backend,
    run_specification,
)
from .planner import (
    FusedPlanProgram,
    IncrementalRoundPlanner,
    PlannerDispatch,
    PlannerStats,
    compile_plan_program,
)
from .mapping import (
    ConnectionPerProcessorMapping,
    ExecutionUnit,
    GroupedMapping,
    LayerPerProcessorMapping,
    MappingStrategy,
    SequentialMapping,
    SystemMapping,
    ThreadPerModuleMapping,
    mapping_by_name,
)
from .scheduler import (
    CentralisedScheduler,
    DecentralisedScheduler,
    PlannedFiring,
    RoundPlan,
    Scheduler,
    scheduler_by_name,
)
from .tracing import ExecutionTrace, FiringEvent, RoundRecord

# Importing the parallel package registers the "multiprocess" backend with
# backend_by_name (mirroring how codegen registers the "generated" dispatch).
from .parallel import MultiprocessBackend

__all__ = [
    "BackendResult",
    "CentralisedScheduler",
    "CompiledModuleDispatch",
    "ConnectionPerProcessorMapping",
    "DecentralisedScheduler",
    "DispatchResult",
    "DispatchStrategy",
    "ExecutionBackend",
    "ExecutionTrace",
    "ExecutionUnit",
    "FiringEvent",
    "FusedPlanProgram",
    "IncrementalRoundPlanner",
    "PlannerDispatch",
    "PlannerStats",
    "GeneratedDispatchStrategy",
    "GeneratedProgram",
    "GroupedMapping",
    "HardCodedDispatch",
    "InProcessBackend",
    "LayerPerProcessorMapping",
    "MappingStrategy",
    "MultiprocessBackend",
    "PlannedFiring",
    "RoundPlan",
    "RoundRecord",
    "Scheduler",
    "SequentialMapping",
    "SimulatedClock",
    "SpecSource",
    "SpecificationExecutor",
    "SystemMapping",
    "TableDrivenDispatch",
    "ThreadPerModuleMapping",
    "backend_by_name",
    "busy_work_for",
    "compile_module_class",
    "compile_plan_program",
    "compile_specification",
    "dispatch_by_name",
    "firing_advance",
    "generated_source",
    "load_dumped_selector",
    "mapping_by_name",
    "next_delay_deadline",
    "register_backend",
    "register_strategy",
    "run_specification",
    "scheduler_by_name",
]
