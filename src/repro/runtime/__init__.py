"""The parallel Estelle runtime (what the paper's code generator emits).

Pieces:

* dispatch strategies (hard-coded scan vs table-driven selection),
* schedulers (centralised vs decentralised),
* mapping strategies (thread-per-module, grouping, connection-per-processor,
  layer-per-processor, sequential baseline),
* the executor that runs a specification on a simulated cluster and produces
  :class:`repro.sim.metrics.ExecutionMetrics`,
* execution traces.
"""

from .dispatch import (
    DispatchResult,
    DispatchStrategy,
    HardCodedDispatch,
    TableDrivenDispatch,
    dispatch_by_name,
)
from .executor import SpecificationExecutor, run_specification
from .mapping import (
    ConnectionPerProcessorMapping,
    ExecutionUnit,
    GroupedMapping,
    LayerPerProcessorMapping,
    MappingStrategy,
    SequentialMapping,
    SystemMapping,
    ThreadPerModuleMapping,
    mapping_by_name,
)
from .scheduler import (
    CentralisedScheduler,
    DecentralisedScheduler,
    PlannedFiring,
    RoundPlan,
    Scheduler,
    scheduler_by_name,
)
from .tracing import ExecutionTrace, FiringEvent, RoundRecord

__all__ = [
    "CentralisedScheduler",
    "ConnectionPerProcessorMapping",
    "DecentralisedScheduler",
    "DispatchResult",
    "DispatchStrategy",
    "ExecutionTrace",
    "ExecutionUnit",
    "FiringEvent",
    "GroupedMapping",
    "HardCodedDispatch",
    "LayerPerProcessorMapping",
    "MappingStrategy",
    "PlannedFiring",
    "RoundPlan",
    "RoundRecord",
    "Scheduler",
    "SequentialMapping",
    "SpecificationExecutor",
    "SystemMapping",
    "TableDrivenDispatch",
    "ThreadPerModuleMapping",
    "dispatch_by_name",
    "mapping_by_name",
    "run_specification",
    "scheduler_by_name",
]
