"""Optimizing code generator: specialized transition-selection functions.

Section 5.2 of the paper contrasts hard-coded selection functions with
table-driven selection and concludes the table wins beyond ~4 transitions.
This module goes one step further — it is the piece of the paper's compiler
back-end that *emits* the selection code instead of interpreting declaration
metadata at runtime:

* per-(state, interaction) **flattened transition tables**: for every state
  the candidate transitions are specialized into straight-line Python code,
  and ``when`` clauses become head-of-queue comparisons against interned
  interaction names, so transitions whose input is absent are skipped by the
  generated indexing instead of being examined one by one;
* **precompiled guard closures**: guards written in the Estelle text language
  (which the front-end evaluates by walking the expression AST) are compiled
  to real Python functions; hand-written Python guards are bound directly
  into the generated function's namespace;
* a :class:`GeneratedDispatchStrategy` that plugs the generated selectors
  into the existing runtime, registered with
  :func:`repro.runtime.dispatch.dispatch_by_name` under ``"generated"``.

The generated selector produces exactly the same choice as
:class:`~repro.runtime.dispatch.TableDrivenDispatch` (same priority order,
same row contents) while examining at most as many candidates, so its
modelled selection cost — ``generated_overhead + scan_cost * examined`` — is
never worse than the table-driven strategy's.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Type, Union

from ..estelle.frontend.lower import quantifier_range
from ..estelle.module import Module
from ..estelle.specification import Specification
from ..estelle.transition import ANY_STATE, Transition
from .dispatch import (
    DispatchResult,
    DispatchStrategy,
    priority_ordered_transitions,
    register_strategy,
    state_rows,
)

#: A generated selector: ``(module) -> (chosen transition or None, examined)``.
SelectorFn = Callable[[Module], Tuple[Optional[Transition], int]]


@dataclass
class CompiledModuleDispatch:
    """The code-generation artifact for one module class."""

    module_class: Type[Module]
    #: generated Python source of the selection function (for inspection,
    #: tests and the ``compile_and_run`` example).
    source: str
    #: the flattened per-state rows (priority order), including the
    #: wildcard row under :data:`ANY_STATE`.
    rows: Dict[Optional[str], Tuple[Transition, ...]]
    #: the compiled selector.
    select: SelectorFn

    def row_for(self, state: Optional[str]) -> Tuple[Transition, ...]:
        if state in self.rows:
            return self.rows[state]
        return self.rows[ANY_STATE]


def _emit_row(
    lines: List[str],
    row_name: str,
    state: Optional[str],
    row: Tuple[Transition, ...],
    transition_index: Dict[int, int],
    guard_names: Dict[int, Optional[str]],
) -> None:
    state_label = "<wildcard>" if state is ANY_STATE else repr(state)
    lines.append(f"def {row_name}(module):  # state {state_label}")
    if not row:
        lines.append("    return None, 0")
        lines.append("")
        return
    lines.append("    ips = module.ips")
    lines.append("    examined = 0")

    # The reachable prefix ends at the first unconditionally-enabled
    # transition (spontaneous, no guard, no delay): nothing after it can be
    # chosen.  A delay clause makes a transition conditional — its timer may
    # not have expired — so it never terminates the prefix.
    reachable: List[Transition] = []
    for candidate in row:
        reachable.append(candidate)
        if candidate.when is None and candidate.provided is None and candidate.delay <= 0:
            break

    # Fetch each referenced interaction point's queue head exactly once.
    head_vars: Dict[str, str] = {}
    for candidate in reachable:
        if candidate.when is not None and candidate.when[0] not in head_vars:
            ip_name = candidate.when[0]
            var = f"_h{len(head_vars)}"
            head_vars[ip_name] = var
            lines.append(f"    _ip = ips.get({ip_name!r})")
            lines.append(
                f"    {var} = _ip.queue[0] if _ip is not None and _ip.queue else None"
            )

    for candidate in reachable:
        idx = transition_index[id(candidate)]
        guard = guard_names[id(candidate)]
        # A delay clause adds a timer check after the guard, mirroring the
        # order of Transition.enabled (timers are refreshed by the shared
        # module-level pass before any row runs).
        delay_check = (
            f"module.delay_expired(_T[{idx}])" if candidate.delay > 0 else None
        )
        if candidate.when is not None:
            ip_name, interaction_name = candidate.when
            head = head_vars[ip_name]
            note = f"when {ip_name}.{interaction_name}"
            if candidate.delay > 0:
                note += f", delay {candidate.delay!r}"
            lines.append(f"    # {candidate.name!r}: {note}")
            lines.append(
                f"    if {head} is not None and {head}.name == {interaction_name!r}:"
            )
            lines.append("        examined += 1")
            conditions = [
                c
                for c in (
                    f"{guard}(module, {head})" if guard is not None else None,
                    delay_check,
                )
                if c is not None
            ]
            if not conditions:
                lines.append(f"        return _T[{idx}], examined")
            else:
                lines.append(f"        if {' and '.join(conditions)}:")
                lines.append(f"            return _T[{idx}], examined")
        else:
            note = "spontaneous"
            if candidate.delay > 0:
                note += f", delay {candidate.delay!r}"
            lines.append(f"    # {candidate.name!r}: {note}")
            lines.append("    examined += 1")
            conditions = [
                c
                for c in (
                    f"{guard}(module)" if guard is not None else None,
                    delay_check,
                )
                if c is not None
            ]
            if not conditions:
                lines.append(f"    return _T[{idx}], examined")
            else:
                lines.append(f"    if {' and '.join(conditions)}:")
                lines.append(f"        return _T[{idx}], examined")
    last = reachable[-1]
    if last.when is not None or last.provided is not None or last.delay > 0:
        lines.append("    return None, examined")
    lines.append("")


def compile_module_class(module_class: Type[Module]) -> CompiledModuleDispatch:
    """Generate, compile and return the specialized selector for a class."""
    # Rows and ordering come from the same helpers the table-driven strategy
    # uses, so the two strategies select from identical candidate lists.
    rows = state_rows(module_class)
    transitions = priority_ordered_transitions(module_class)
    transition_index = {id(t): i for i, t in enumerate(transitions)}

    lines: List[str] = [
        f"# Generated transition dispatch for module class "
        f"{module_class.__name__!r}.",
        "# Rows are flattened per (state, interaction); candidates appear in",
        "# priority order; guards are precompiled closures.",
        "",
    ]

    # Guard bindings: compile Estelle-sourced guards from their translated
    # Python expression; bind hand-written Python guards straight in.
    raw_guards: List[Callable[..., bool]] = []
    guard_names: Dict[int, Optional[str]] = {}
    for index, candidate in enumerate(transitions):
        guard = candidate.provided
        if guard is None:
            guard_names[id(candidate)] = None
            continue
        name = f"_g{index}"
        guard_names[id(candidate)] = name
        python_source = getattr(guard, "_python_source", None)
        if python_source is not None:
            # On KeyError (undefined variable) or TypeError (non-integer
            # quantifier bound feeding range()) re-evaluate through the
            # interpreted guard, which raises the source-located diagnostic —
            # the strategies must stay interchangeable on error paths too.
            lines.append(f"def {name}(module, _i=None):  # guard of {candidate.name!r}")
            lines.append("    _v = module.variables")
            lines.append("    try:")
            lines.append(f"        return bool({python_source})")
            lines.append("    except (KeyError, TypeError):")
            lines.append(f"        return bool(_RAW[{len(raw_guards)}](module, _i))")
            lines.append("")
            raw_guards.append(guard)
        else:
            lines.append(
                f"{name} = _RAW[{len(raw_guards)}]  # hand-written guard of "
                f"{candidate.name!r}"
            )
            raw_guards.append(guard)

    row_names: Dict[Optional[str], str] = {}
    for index, state in enumerate(rows):
        row_name = "_row_any" if state is ANY_STATE else f"_row_{index}"
        row_names[state] = row_name
        _emit_row(lines, row_name, state, rows[state], transition_index, guard_names)

    entries = ", ".join(
        f"{state!r}: {row_names[state]}" for state in rows if state is not ANY_STATE
    )
    lines.append(f"_ROWS = {{{entries}}}")
    lines.append("")
    lines.append("def _select(module):")
    if module_class._delayed_transitions:
        # Timer maintenance is a module-level pass shared with the
        # interpreted strategies; the rows then consult delay_expired.
        lines.append("    module.refresh_delay_timers()")
    lines.append("    state = module.state")
    lines.append("    row = _ROWS.get(state, _row_any)")
    lines.append("    return row(module)")
    source = "\n".join(lines)

    # _qrange backs quantified guard sources; it raises TypeError on
    # non-integer bounds so the fallback re-routes through the interpreted
    # guard exactly where the interpreter itself would diagnose them.
    namespace: Dict[str, Any] = {
        "_T": transitions,
        "_RAW": raw_guards,
        "_qrange": quantifier_range,
    }
    exec(compile(source, f"<generated dispatch {module_class.__name__}>", "exec"), namespace)
    return CompiledModuleDispatch(
        module_class=module_class,
        source=source,
        rows=rows,
        select=namespace["_select"],
    )


def generated_source(module_class: Type[Module]) -> str:
    """The generated selection source for a module class (for inspection)."""
    return compile_module_class(module_class).source


def _guard_bindings(transitions: Tuple[Transition, ...]) -> List[Callable[..., bool]]:
    """The ``_RAW`` guard list in generation order (transitions with a guard,
    priority order) — shared by :func:`compile_module_class` and the AOT
    loader so dumped sources rebind against identical namespaces."""
    return [t.provided for t in transitions if t.provided is not None]


def load_dumped_selector(
    path: Union[str, Path], module_class: Type[Module]
) -> CompiledModuleDispatch:
    """AOT-import a selector source written by :meth:`GeneratedProgram.dump_sources`.

    The dumped file contains only the generated functions; the transition
    objects (``_T``) and raw guard closures (``_RAW``) are rebound here from
    ``module_class``'s declarations, which produce the same ordering the
    generator used.  The returned artifact is interchangeable with a freshly
    generated one (hand it to :meth:`GeneratedDispatchStrategy.adopt`).
    """
    path = Path(path)
    source = path.read_text()
    transitions = priority_ordered_transitions(module_class)
    namespace: Dict[str, Any] = {
        "_T": transitions,
        "_RAW": _guard_bindings(transitions),
        "_qrange": quantifier_range,
    }
    exec(compile(source, str(path), "exec"), namespace)
    if "_select" not in namespace:
        raise ValueError(f"{path} does not define a generated '_select' function")
    return CompiledModuleDispatch(
        module_class=module_class,
        source=source,
        rows=state_rows(module_class),
        select=namespace["_select"],
    )


@register_strategy
class GeneratedDispatchStrategy(DispatchStrategy):
    """Transition selection through generated, specialized code.

    Costs mirror the other strategies: a fixed ``generated_overhead`` per
    call (smaller than the table-driven indexing overhead because the state
    row and the ``when`` matching are specialized into the function itself)
    plus ``scan_cost`` per candidate whose enabling actually had to be
    evaluated.  Candidates whose ``when`` interaction is not at the head of
    its queue are skipped by the generated indexing and never examined.
    """

    name = "generated"

    def __init__(self, scan_cost: float = 0.08, generated_overhead: float = 0.15):
        super().__init__(scan_cost=scan_cost, overhead=generated_overhead)
        self._compiled: Dict[type, CompiledModuleDispatch] = {}

    def compiled_for(self, module_class: Type[Module]) -> CompiledModuleDispatch:
        compiled = self._compiled.get(module_class)
        if compiled is None:
            compiled = compile_module_class(module_class)
            self._compiled[module_class] = compiled
        return compiled

    def adopt(self, compiled: CompiledModuleDispatch) -> None:
        """Install a pre-built artifact (e.g. one AOT-loaded from disk by
        :func:`load_dumped_selector`) so no generation happens at runtime."""
        self._compiled[compiled.module_class] = compiled

    def candidates(self, module: Module) -> List[Transition]:
        return list(self.compiled_for(type(module)).row_for(module.state))

    def select(self, module: Module) -> DispatchResult:
        if module.EXTERNAL:
            return self._external_result(module)
        chosen, examined = self.compiled_for(type(module)).select(module)
        return DispatchResult(
            transition=chosen,
            examined=examined,
            cost=self.overhead + self.scan_cost * examined,
        )


@dataclass
class GeneratedProgram:
    """The code generator's output for a whole specification."""

    specification: Specification
    strategy: GeneratedDispatchStrategy
    artifacts: Dict[str, CompiledModuleDispatch] = field(default_factory=dict)

    def source(self) -> str:
        """All generated selection functions, concatenated."""
        return "\n\n".join(
            artifact.source for artifact in self.artifacts.values()
        )

    def artifact_for(self, module_class: Type[Module]) -> CompiledModuleDispatch:
        return self.artifacts[module_class.__name__]

    def dump_sources(self, directory: Union[str, Path]) -> List[Path]:
        """Write every generated selection function to ``directory``.

        One ``<ClassName>_dispatch.py`` per module class plus a
        ``MANIFEST.json`` mapping class names to files.  The dumped sources
        serve two purposes: inspection (what exactly does the optimizer emit
        for this specification?) and AOT import — :func:`load_dumped_selector`
        rebinds a dumped file against its module class without re-running the
        generator, which is how a worker-side reconstruction can be compared
        against the sources the coordinator saw.  Returns the written paths
        (manifest last).
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written: List[Path] = []
        manifest: Dict[str, str] = {}
        for class_name in sorted(self.artifacts):
            artifact = self.artifacts[class_name]
            file_name = f"{class_name}_dispatch.py"
            path = directory / file_name
            header = (
                f'"""Generated transition-selection code for module class '
                f'{class_name!r}\nof specification {self.specification.name!r}.\n\n'
                "Rebind with repro.runtime.codegen.load_dumped_selector(path, "
                "module_class);\nthe '_T' / '_RAW' namespaces are reconstructed "
                'from the class declarations.\n"""\n\n'
            )
            path.write_text(header + artifact.source + "\n")
            manifest[class_name] = file_name
            written.append(path)
        manifest_path = directory / "MANIFEST.json"
        manifest_path.write_text(
            json.dumps(
                {"specification": self.specification.name, "artifacts": manifest},
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        written.append(manifest_path)
        return written


def compile_specification(
    specification: Specification,
    scan_cost: float = 0.08,
    generated_overhead: float = 0.15,
) -> GeneratedProgram:
    """Generate dispatch code for every module class used by ``specification``.

    The returned program's ``strategy`` is ready to hand to
    :class:`repro.runtime.executor.SpecificationExecutor` (its compile cache
    is pre-populated, so no generation happens on the hot path).
    """
    strategy = GeneratedDispatchStrategy(
        scan_cost=scan_cost, generated_overhead=generated_overhead
    )
    program = GeneratedProgram(specification=specification, strategy=strategy)
    for module in specification.modules():
        module_class = type(module)
        if module_class.__name__ not in program.artifacts:
            artifact = strategy.compiled_for(module_class)
            program.artifacts[module_class.__name__] = artifact
    return program
