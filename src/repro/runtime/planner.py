"""The incremental fused round planner: the hot path of the round loop.

``Scheduler.plan_round`` re-walks the whole module tree and re-evaluates
transition selection for *every* module, every round — even for modules whose
state and queues have not changed since the previous round.  The paper's
decentralised scheduler wins by overlapping that per-module work across
processors; this module removes most of it outright:

* **Dirty tracking** (:mod:`repro.estelle.dirty`) — the specification's
  mutation points report which modules changed; only those (a tiny set on
  sparse workloads) are re-evaluated, and the previous round's per-module
  :class:`~repro.runtime.dispatch.DispatchResult` is reused for the rest.
  Estelle guarantees this is sound: a transition's enabling depends only on
  the module's own state, variables and queue heads, all of which are
  covered by the tracked mutation points.
* **Fusion** (:func:`compile_plan_program`) — the scheduler walk and the
  per-module dispatch are compiled into one generated function per
  specification: the module tree is flattened into arrays, the parent/child
  precedence walk (parent precedence, process parallelism, activity
  exclusivity) is unrolled into straight-line code, and transition selection
  calls the per-(state, interaction) specialized selectors that
  :mod:`repro.runtime.codegen` emits — no interpreted ``_select_subtree``
  recursion, no strategy dispatch, no per-class cache lookups.

The planner produces :class:`~repro.runtime.scheduler.RoundPlan` objects with
the *same firing list* (same modules, transitions and order) as a from-scratch
``plan_round`` rescan — that is the equivalence contract, property-tested by
``tests/test_scheduler_property.py``.  The plan's *examined* accounting
differs by design: it reports only the modules actually re-evaluated this
round, which is the planner's honest (and much smaller) selection cost.

Both execution backends consume the planner through the dispatch name
``"planner"``: the in-process :class:`~repro.runtime.executor.
SpecificationExecutor` swaps its scheduler walk for
:meth:`IncrementalRoundPlanner.plan_round`, and the multiprocess backend has
each worker re-evaluate only the dirty part of its shard (reporting per-round
summary *deltas*) while the coordinator folds them through the same fused
walk (see :mod:`repro.runtime.parallel`).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

from ..estelle.dirty import DirtyTracker
from ..estelle.module import Module
from ..estelle.specification import Specification
from ..obs import NULL_OBS, Observability
from .clock import SimulatedClock
from .codegen import GeneratedDispatchStrategy, compile_module_class
from .dispatch import DispatchResult, DispatchStrategy, register_strategy
from .scheduler import PlannedFiring, RoundPlan

PLANNER_DISPATCH_NAME = "planner"


@register_strategy
class PlannerDispatch(GeneratedDispatchStrategy):
    """The ``"planner"`` dispatch name: generated selectors + fused planning.

    As a plain :class:`~repro.runtime.dispatch.DispatchStrategy` it behaves
    exactly like ``"generated"`` (same selectors, same costs) — that is what
    a multiprocess worker uses to re-evaluate its dirty shard.  Its *name* is
    the switch: the executor and the multiprocess coordinator recognise it
    and route round planning through :class:`IncrementalRoundPlanner` /
    the fused coordinator walk instead of ``Scheduler.plan_round``.
    """

    name = PLANNER_DISPATCH_NAME


@dataclass
class PlannerStats:
    """Evaluation-reuse counters (the planner's before/after story).

    ``rounds`` counts :meth:`IncrementalRoundPlanner.plan_round` invocations,
    which on delay-bearing specifications includes the empty re-plans the
    executor performs while jumping the clock over delay deadlines — so it
    can exceed the executor's computation-round count there.
    """

    rounds: int = 0
    #: per-module selections actually re-evaluated.
    evaluated: int = 0
    #: per-module selections served from the previous round's cache.
    reused: int = 0
    #: whole-program rebuilds forced by module tree changes.
    rebuilds: int = 0

    @property
    def reuse_ratio(self) -> float:
        total = self.evaluated + self.reused
        return self.reused / total if total else 0.0


@dataclass
class FusedPlanProgram:
    """The generated whole-specification planner for one (static) tree shape.

    ``modules`` is the flattened pre-order module array (system modules in
    declaration order, each followed by its subtree); ``evaluate`` refreshes
    the results slots of the given flat indices through the inlined per-class
    selectors; ``walk`` replays the Estelle precedence rules over the results
    array as unrolled straight-line code, appending
    :class:`~repro.runtime.scheduler.PlannedFiring` objects in exactly the
    order ``Scheduler.plan_round`` would.
    """

    specification: Specification
    source: str
    modules: Tuple[Module, ...]
    index_of: Dict[Module, int]
    #: None for walk-only programs (compile_plan_program(with_evaluators=False)).
    evaluate: Optional[Callable[[Sequence[int], List[Optional[DispatchResult]]], None]]
    walk: Callable[[List[Optional[DispatchResult]], List[PlannedFiring]], None]


def _flatten(specification: Specification) -> Tuple[Module, ...]:
    """Pre-order module array: the scheduler walk's visit order, flattened."""
    modules: List[Module] = []
    for system in specification.system_modules():
        modules.extend(system.walk())
    return tuple(modules)


def _emit_eval(
    lines: List[str],
    index: int,
    module: Module,
    selector_symbol: Optional[str],
    scan_cost: float,
    overhead: float,
) -> None:
    lines.append(f"def _eval_{index}(R):  # {module.path}")
    lines.append(f"    _m = _M[{index}]")
    if module.EXTERNAL:
        # Hand-coded bodies bypass transition scanning (their readiness is
        # their queue state), exactly like DispatchStrategy._external_result.
        lines.append(f"    R[{index}] = _DR(None, 0, {overhead!r}, _m.external_ready())")
    else:
        lines.append(f"    _t, _x = {selector_symbol}(_m)")
        lines.append(f"    R[{index}] = _DR(_t, _x, {overhead!r} + {scan_cost!r} * _x)")
    lines.append("")


def _emit_walk_subtree(
    lines: List[str],
    module: Module,
    index_of: Dict[Module, int],
    depth: int,
    marker_counter: List[int],
) -> None:
    """Unroll one subtree of the precedence walk into straight-line code."""
    pad = "    " * depth
    index = index_of[module]
    lines.append(f"{pad}r = R[{index}]  # {module.path}")
    lines.append(f"{pad}if r.transition is not None or r.external:")
    lines.append(f"{pad}    _a(_PF(_M[{index}], r))")
    children = list(module.children.values())
    if not children:
        return
    lines.append(f"{pad}else:")
    if module.attribute.children_parallel:
        for child in children:
            _emit_walk_subtree(lines, child, index_of, depth + 1, marker_counter)
    else:
        # activity / systemactivity parent: the first child subtree that
        # contributes a firing suppresses its remaining siblings.
        marker = f"_n{marker_counter[0]}"
        marker_counter[0] += 1
        lines.append(f"{pad}    {marker} = len(out)")
        _emit_walk_subtree(lines, children[0], index_of, depth + 1, marker_counter)
        for child in children[1:]:
            lines.append(f"{pad}    if len(out) == {marker}:")
            _emit_walk_subtree(lines, child, index_of, depth + 2, marker_counter)


#: Generated-source -> compiled code object, shared process-wide.  Two
#: instances of the same specification source have identical tree shapes, so
#: they generate byte-identical planner source; caching the ``compile()``
#: step makes the N-th instance's program build O(exec) instead of
#: O(compile) — the property a multi-session service
#: (:mod:`repro.serve`) relies on for cheap session spawn.  The cache is a
#: bounded FIFO: dynamic topology embeds child serial numbers in the source
#: (``s1#1`` vs ``s1#2`` walk different module paths), so an immortal
#: churning session would otherwise grow it without bound.
_PLAN_CODE_CACHE: "OrderedDict[str, object]" = OrderedDict()
_PLAN_CODE_CACHE_LIMIT = 256
_PLAN_CODE_CACHE_HITS = 0
_PLAN_CODE_CACHE_MISSES = 0


def _compiled_code_for(source: str, spec_name: str):
    global _PLAN_CODE_CACHE_HITS, _PLAN_CODE_CACHE_MISSES
    code = _PLAN_CODE_CACHE.get(source)
    if code is None:
        _PLAN_CODE_CACHE_MISSES += 1
        code = compile(source, f"<generated planner {spec_name}>", "exec")
        _PLAN_CODE_CACHE[source] = code
        while len(_PLAN_CODE_CACHE) > _PLAN_CODE_CACHE_LIMIT:
            _PLAN_CODE_CACHE.popitem(last=False)
    else:
        _PLAN_CODE_CACHE_HITS += 1
    return code


def plan_code_cache_info() -> Dict[str, int]:
    """Size and hit/miss history of the shared compile cache.

    ``hits``/``misses`` are process-lifetime totals (the cache itself is
    process-wide); ``repro.serve`` surfaces them via ``/stats`` and the
    ``repro_planner_code_cache_*`` gauges on ``/metrics``.
    """
    return {
        "entries": len(_PLAN_CODE_CACHE),
        "limit": _PLAN_CODE_CACHE_LIMIT,
        "hits": _PLAN_CODE_CACHE_HITS,
        "misses": _PLAN_CODE_CACHE_MISSES,
    }


def compile_plan_program(
    specification: Specification,
    scan_cost: float = 0.08,
    overhead: float = 0.15,
    dispatch: Optional[GeneratedDispatchStrategy] = None,
    with_evaluators: bool = True,
) -> FusedPlanProgram:
    """Generate and compile the fused planner for the current tree shape.

    ``scan_cost`` / ``overhead`` are baked into the generated evaluation code
    as constants (the modelled selection cost mirrors the generated dispatch
    strategy's).  Passing an existing ``dispatch`` strategy reuses its
    per-class selector cache — the multiprocess worker and the in-process
    executor then share one set of compiled selectors per process.

    ``with_evaluators=False`` emits the fused walk only (``evaluate`` is
    ``None``) and skips per-class selector compilation entirely — for
    consumers that refresh the result slots themselves: the interpreted
    (non-fused) planner and the multiprocess coordinator, whose results come
    from the workers.
    """
    if dispatch is not None:
        scan_cost = dispatch.scan_cost
        overhead = dispatch.overhead
    modules = _flatten(specification)
    index_of = {module: i for i, module in enumerate(modules)}

    # One specialized selector per module *class*, bound as _sel_<j> (classes
    # are keyed by identity: test suites reuse class names across specs).
    selector_symbols: Dict[Type[Module], str] = {}
    namespace: Dict[str, object] = {
        "_M": modules,
        "_DR": DispatchResult,
        "_PF": PlannedFiring,
    }
    if with_evaluators:
        for module in modules:
            cls = type(module)
            if module.EXTERNAL or cls in selector_symbols:
                continue
            symbol = f"_sel_{len(selector_symbols)}"
            selector_symbols[cls] = symbol
            compiled = (
                dispatch.compiled_for(cls)
                if dispatch is not None
                else compile_module_class(cls)
            )
            namespace[symbol] = compiled.select

    lines: List[str] = [
        f"# Generated whole-specification round planner for {specification.name!r}.",
        "# _M is the flattened pre-order module array; R the per-module result",
        "# slots.  _eval_<i> refreshes slot i through the inlined per-class",
        "# selector; _walk unrolls the Estelle precedence rules over R.",
        "",
    ]
    if with_evaluators:
        for index, module in enumerate(modules):
            _emit_eval(
                lines,
                index,
                module,
                selector_symbols.get(type(module)),
                scan_cost,
                overhead,
            )
        lines.append(
            "_EVAL = ("
            + ", ".join(f"_eval_{i}" for i in range(len(modules)))
            + ("," if modules else "")
            + ")"
        )
        lines.append("")
        lines.append("def _evaluate(indices, R):")
        lines.append("    for _i in indices:")
        lines.append("        _EVAL[_i](R)")
        lines.append("")
    lines.append("def _walk(R, out):")
    if modules:
        lines.append("    _a = out.append")
        marker_counter = [0]
        for system in specification.system_modules():
            _emit_walk_subtree(lines, system, index_of, 1, marker_counter)
    else:
        lines.append("    pass")
    lines.append("")

    source = "\n".join(lines)
    exec(  # noqa: S102 - same trusted-codegen pattern as repro.runtime.codegen
        _compiled_code_for(source, specification.name),
        namespace,
    )
    return FusedPlanProgram(
        specification=specification,
        source=source,
        modules=modules,
        index_of=index_of,
        evaluate=namespace["_evaluate"] if with_evaluators else None,  # type: ignore[arg-type]
        walk=namespace["_walk"],  # type: ignore[arg-type]
    )


#: Rounds between registry syncs of the planner's tallies.  The batch keeps
#: counter locks off the planning hot path; an empty plan or the executor's
#: end-of-run flush closes the gap, so at-rest scrapes are always exact.
_METRICS_FLUSH_INTERVAL = 64


def _register_planner_metrics(obs: Observability) -> None:
    """Register the planner's derived/live gauges on ``obs``'s registry.

    The counters themselves are get-or-create (N planners sharing one
    registry aggregate into one series); the gauges here are scrape-time
    callbacks over that shared state — ``reuse_ratio`` derives from the
    registry's own evaluated/reused totals so it stays correct when many
    sessions share one registry, and the code-cache gauges read the
    process-wide compile cache.
    """
    registry = obs.registry
    if not registry.enabled:
        return
    evaluated = registry.counter(
        "repro_planner_evaluated_total",
        "Per-module selections re-evaluated (dirty set).",
    )
    reused = registry.counter(
        "repro_planner_reused_total",
        "Per-module selections served from the previous round's cache.",
    )

    def _reuse_ratio() -> float:
        evaluated_total = evaluated.value
        reused_total = reused.value
        total = evaluated_total + reused_total
        return reused_total / total if total else 0.0

    registry.gauge(
        "repro_planner_reuse_ratio",
        "Fraction of per-module selections served from cache (live).",
        callback=_reuse_ratio,
    )
    registry.gauge(
        "repro_planner_code_cache_entries",
        "Entries in the process-wide generated-planner compile cache.",
        callback=lambda: plan_code_cache_info()["entries"],
    )
    registry.gauge(
        "repro_planner_code_cache_hits",
        "Process-lifetime hits in the generated-planner compile cache.",
        callback=lambda: plan_code_cache_info()["hits"],
    )
    registry.gauge(
        "repro_planner_code_cache_misses",
        "Process-lifetime misses in the generated-planner compile cache.",
        callback=lambda: plan_code_cache_info()["misses"],
    )


class IncrementalRoundPlanner:
    """Dirty-set driven round planning with cached per-module selections.

    Drop-in producer of :class:`~repro.runtime.scheduler.RoundPlan` objects::

        planner = IncrementalRoundPlanner(specification)
        plan = planner.plan_round()        # instead of scheduler.plan_round()

    ``fused=True`` (default) evaluates dirty modules through the generated
    whole-spec program (:func:`compile_plan_program`); ``fused=False`` keeps
    the walk fused but re-evaluates through the given interpreted ``dispatch``
    strategy — useful to isolate the two optimisations and for property
    tests.  Module tree changes (``init``/``release``) are detected through
    the tracker's structure epoch and force a program rebuild plus a full
    re-evaluation.

    Out-of-band mutations (poking ``module.variables`` between rounds without
    firing a transition) are outside the dirty-tracking contract — call
    :meth:`invalidate` (everything) or :meth:`mark_dirty` (one module) first.
    """

    def __init__(
        self,
        specification: Specification,
        dispatch: Optional[DispatchStrategy] = None,
        fused: bool = True,
        clock: Optional[SimulatedClock] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.specification = specification
        self.dispatch = dispatch if dispatch is not None else PlannerDispatch()
        self.fused = fused
        self.tracker = DirtyTracker.attach(specification)
        #: the simulated clock driving delay semantics.  When set (the
        #: executor shares its own), :meth:`plan_round` first wakes every
        #: module whose delay deadline has passed — time passing can enable
        #: a transition with no data mutation, which the dirty hooks alone
        #: cannot see.  When None, delay clauses are inert (legacy paths).
        self.clock = clock
        self.stats = PlannerStats()
        self._program: Optional[FusedPlanProgram] = None
        self._results: List[Optional[DispatchResult]] = []
        self._built_epoch = -1
        self._all_dirty = True
        self.obs = obs if obs is not None else NULL_OBS
        _register_planner_metrics(self.obs)
        registry = self.obs.registry
        self._m_rounds = registry.counter(
            "repro_planner_rounds_total", "plan_round invocations."
        )
        self._m_evaluated = registry.counter(
            "repro_planner_evaluated_total",
            "Per-module selections re-evaluated (dirty set).",
        )
        self._m_reused = registry.counter(
            "repro_planner_reused_total",
            "Per-module selections served from the previous round's cache.",
        )
        self._m_rebuilds = registry.counter(
            "repro_planner_rebuilds_total",
            "Whole-program rebuilds forced by module tree changes.",
        )
        # The per-round tallies already live in ``self.stats`` (plain ints,
        # no locks); the registry is synced from them in batches so the hot
        # path never pays counter locks (the obs_overhead gate).  High-water
        # marks of what has been flushed so far:
        self._flushed_rounds = 0
        self._flushed_evaluated = 0
        self._flushed_reused = 0

    # -- cache control ---------------------------------------------------------------

    def invalidate(self) -> None:
        """Drop every cached selection (next round re-evaluates everything)."""
        self._all_dirty = True

    def mark_dirty(self, module: Module) -> None:
        """Explicitly schedule one module for re-evaluation."""
        self.tracker.mark(module)

    # -- planning --------------------------------------------------------------------

    def _rebuild(self) -> None:
        generated_dispatch = (
            self.dispatch if isinstance(self.dispatch, GeneratedDispatchStrategy) else None
        )
        if self.fused and generated_dispatch is not None:
            self._program = compile_plan_program(
                self.specification, dispatch=generated_dispatch
            )
        else:
            # Interpreted re-evaluation (dispatch.select per dirty module):
            # only the fused walk is generated, no selectors are compiled.
            self._program = compile_plan_program(
                self.specification, with_evaluators=False
            )
        self._results = [None] * len(self._program.modules)
        self._built_epoch = self.tracker.structure_epoch
        self._all_dirty = True
        self.stats.rebuilds += 1
        self._m_rebuilds.inc()
        self.obs.events.emit(
            "structure_epoch",
            specification=self.specification.name,
            epoch=self._built_epoch,
            modules=len(self._program.modules),
        )

    @property
    def program(self) -> FusedPlanProgram:
        """The generated program (built on demand; for inspection and tests)."""
        if self._program is None or self.tracker.structure_epoch != self._built_epoch:
            self._rebuild()
        return self._program  # type: ignore[return-value]

    def next_deadline(self) -> Optional[float]:
        """Earliest future delay deadline in the tracker's index (or None).

        After a :meth:`plan_round` at time ``now`` every remaining indexed
        deadline is strictly later than ``now``; an empty plan with a pending
        deadline means the round loop should jump the clock here and re-plan.
        """
        return self.tracker.next_deadline()

    def plan_round(self) -> RoundPlan:
        """Produce the next round's plan, re-evaluating only dirty modules."""
        program = self.program  # rebuilds on structure changes
        results = self._results
        if self.clock is not None:
            # The time dimension of the dirty contract: wake modules whose
            # delay deadlines have passed, so their cached "nothing enabled"
            # selections are re-evaluated instead of trusted.
            self.tracker.wake_due(self.clock.now)
        if self._all_dirty:
            self.tracker.drain()
            indices: Sequence[int] = range(len(program.modules))
            self._all_dirty = False
        else:
            index_of = program.index_of
            dirty = self.tracker.drain()
            indices = sorted(
                index_of[module] for module in dirty if module in index_of
            )

        if program.evaluate is not None:
            program.evaluate(indices, results)
        else:
            select = self.dispatch.select
            for i in indices:
                results[i] = select(program.modules[i])

        plan = RoundPlan()
        examined_costs = plan.examined_costs
        for i in indices:
            examined_costs[program.modules[i].path] = results[i].cost  # type: ignore[union-attr]
        plan.examined_modules = len(indices)
        program.walk(results, plan.firings)

        self.stats.rounds += 1
        self.stats.evaluated += len(indices)
        self.stats.reused += len(program.modules) - len(indices)
        # Flush on an empty plan (end of run / delay-waiting round) or when
        # the interval fills — one int compare per round, nothing else.
        if (
            not plan.firings
            or self.stats.rounds - self._flushed_rounds >= _METRICS_FLUSH_INTERVAL
        ):
            self.flush_metrics()
        return plan

    def flush_metrics(self) -> None:
        """Sync the registry counters from :attr:`stats`.

        Counters may lag the stats by up to :data:`_METRICS_FLUSH_INTERVAL`
        rounds mid-run; the executor flushes at the end of every ``run()``,
        so scraped values are exact whenever the planner is at rest.
        """
        stats = self.stats
        if stats.rounds > self._flushed_rounds:
            self._m_rounds.inc(stats.rounds - self._flushed_rounds)
            self._flushed_rounds = stats.rounds
        if stats.evaluated > self._flushed_evaluated:
            self._m_evaluated.inc(stats.evaluated - self._flushed_evaluated)
            self._flushed_evaluated = stats.evaluated
        if stats.reused > self._flushed_reused:
            self._m_reused.inc(stats.reused - self._flushed_reused)
            self._flushed_reused = stats.reused
