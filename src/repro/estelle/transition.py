"""Transition declarations for Estelle modules.

A transition in Estelle has the clauses::

    from <state>  to <state>
    when <interaction point> . <interaction>
    provided <boolean expression>
    priority <n>
    delay (<min>, <max>)
    begin <action block> end

This module provides the :func:`transition` decorator used inside module-class
bodies, the :class:`Transition` descriptor that stores the clauses, and the
:class:`FiringContext` handed to the action block when the transition fires.

The paper's performance discussion (Section 5.2) distinguishes *hard-coded*
transition selection (a linear scan over the full transition list) from a
*table-driven* selection (indexing by the current state).  Both strategies are
implemented in :mod:`repro.runtime.dispatch` on top of the metadata captured
here; the declaration layer stays strategy-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence, Tuple, Union

from .errors import TransitionError
from .interaction import Interaction

#: Sentinel state name meaning "any state" (Estelle allows transitions without
#: a ``from`` clause, and ``from`` clauses listing several states).
ANY_STATE = "*"

GuardFn = Callable[..., bool]
ActionFn = Callable[..., None]


@dataclass
class Transition:
    """A declared Estelle transition.

    Instances are created by the :func:`transition` decorator and attached to
    the module class; they are shared by all instances of that module class
    (the per-instance data lives on the module instance itself).
    """

    action: ActionFn
    from_states: Tuple[str, ...]
    to_state: Optional[str]
    when: Optional[Tuple[str, str]]  # (interaction point name, interaction name)
    provided: Optional[GuardFn]
    priority: int = 0
    #: the delay *lower bound*: the transition becomes fireable only after
    #: being continuously enabled for this long (simulated time).  The
    #: Estelle ``delay(min, max)`` window is resolved deterministically to
    #: the lower bound — the runtime fires at the earliest permitted instant
    #: so canonical traces stay byte-identical across backends/strategies.
    delay: float = 0.0
    #: the declared upper bound of the ``delay(min, max)`` pair (None for the
    #: scalar form); validated >= ``delay``, kept for introspection.
    delay_max: Optional[float] = None
    cost: float = 1.0
    name: str = ""
    spontaneous: bool = field(init=False)

    def __post_init__(self) -> None:
        self.spontaneous = self.when is None
        if not self.name:
            self.name = self.action.__name__

    # -- enabling ---------------------------------------------------------------

    def applies_to_state(self, state: Optional[str]) -> bool:
        """Whether the ``from`` clause admits ``state``."""
        if ANY_STATE in self.from_states:
            return True
        return state in self.from_states

    def enabled_untimed(self, module: Any) -> bool:
        """Enabling check *without* the ``delay`` clause.

        True when the module is in one of the ``from`` states, the ``when``
        clause (if any) matches the head of the named interaction point's
        queue, and the ``provided`` guard (if any) holds.  This is the
        condition whose continuous truth runs the delay timer
        (:meth:`repro.estelle.module.Module.refresh_delay_timers`).
        """
        if not self.applies_to_state(module.state):
            return False
        interaction = None
        if self.when is not None:
            ip_name, interaction_name = self.when
            ip = module.ips.get(ip_name)
            if ip is None:
                return False
            interaction = ip.head()
            if interaction is None or interaction.name != interaction_name:
                return False
        if self.provided is not None:
            if self.when is not None:
                return bool(self.provided(module, interaction))
            return bool(self.provided(module))
        return True

    def enabled(self, module: Any) -> bool:
        """Full enabling check against a module instance.

        On top of :meth:`enabled_untimed`, a transition with a ``delay``
        clause is enabled only once it has been continuously enabled for its
        delay on the module's simulated clock.  Delay checks are inert when
        no clock is attached to the module tree (hand-driven tests, direct
        ``fire`` calls) — see :meth:`repro.estelle.module.Module.delay_expired`.
        """
        if not self.enabled_untimed(module):
            return False
        if self.delay > 0:
            return module.delay_expired(self)
        return True

    def fire(self, module: Any) -> "FiringRecord":
        """Execute the action block against ``module``.

        The matched interaction (if any) is consumed from the IP queue, the
        action is run, and the ``to`` state change is applied afterwards
        unless the action already changed the state explicitly.
        """
        if not self.enabled(module):
            raise TransitionError(
                f"transition {self.name!r} of {module.path} is not enabled"
            )
        interaction: Optional[Interaction] = None
        if self.when is not None:
            ip_name, _ = self.when
            interaction = module.ips[ip_name].consume()
        state_before = module.state
        if interaction is not None:
            self.action(module, interaction)
        else:
            self.action(module)
        if self.to_state is not None and module.state == state_before:
            module.state = self.to_state
        if self.delay > 0:
            # The firing consumed this enabling: the delay timer restarts
            # from the next instant the transition is (again) enabled.
            module._delay_since.pop(self.name, None)
        hook = getattr(module, "_dirty_hook", None)
        if hook is not None:
            # The firing changed the module's state, variables or queues.
            hook(module)
        return FiringRecord(
            transition=self,
            module_path=module.path,
            state_before=state_before,
            state_after=module.state,
            interaction=interaction,
            cost=self.cost,
        )

    def __repr__(self) -> str:  # pragma: no cover
        clause = f"when={self.when}" if self.when else "spontaneous"
        return (
            f"Transition({self.name!r}, from={self.from_states}, "
            f"to={self.to_state!r}, {clause}, priority={self.priority})"
        )


@dataclass(frozen=True)
class FiringRecord:
    """Immutable record of a single transition firing (for traces and metrics)."""

    transition: Transition
    module_path: str
    state_before: Optional[str]
    state_after: Optional[str]
    interaction: Optional[Interaction]
    cost: float


def _normalise_states(value: Union[str, Iterable[str], None]) -> Tuple[str, ...]:
    if value is None:
        return (ANY_STATE,)
    if isinstance(value, str):
        return (value,)
    states = tuple(value)
    if not states:
        raise TransitionError("the from_state clause may not be an empty sequence")
    return states


def transition(
    from_state: Union[str, Sequence[str], None] = None,
    to_state: Optional[str] = None,
    when: Optional[Tuple[str, str]] = None,
    provided: Optional[GuardFn] = None,
    priority: int = 0,
    delay: float = 0.0,
    delay_max: Optional[float] = None,
    cost: float = 1.0,
    name: str = "",
):
    """Declare a transition on a module-class method.

    Parameters mirror the Estelle clauses.  ``when`` is a pair of
    ``(interaction point name, interaction name)``; omitting it declares a
    spontaneous transition.  ``cost`` is the simulated execution cost of the
    action block in abstract time units, consumed by the multiprocessor
    simulator (:mod:`repro.sim`) when the generated system runs in parallel.
    ``priority`` follows Estelle: *lower* numbers are higher priority.

    ``delay`` / ``delay_max`` mirror Estelle's ``delay(min, max)``: the
    transition becomes fireable only after being continuously enabled for
    ``delay`` units of simulated time.  The nondeterministic firing window
    up to ``delay_max`` is resolved deterministically to the lower bound
    (the runtime fires at the earliest permitted instant), so the upper
    bound is validated and recorded but does not change the schedule.
    """

    if delay < 0:
        raise TransitionError("delay must be non-negative")
    if delay_max is not None and delay_max < delay:
        raise TransitionError(
            f"delay upper bound ({delay_max}) must be >= the lower bound ({delay})"
        )
    if cost < 0:
        raise TransitionError("cost must be non-negative")

    def decorator(func: ActionFn) -> Transition:
        return Transition(
            action=func,
            from_states=_normalise_states(from_state),
            to_state=to_state,
            when=when,
            provided=provided,
            priority=priority,
            delay=delay,
            delay_max=delay_max,
            cost=cost,
            name=name or func.__name__,
        )

    return decorator
