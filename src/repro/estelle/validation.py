"""Static semantic validation of Estelle module trees.

Implements the attribute rules quoted in Section 4 of the paper:

1. Every active module must have one of the four attributes.
2. A system module cannot be contained in another attributed module.
3. Each ``process`` and each ``activity`` module must be contained (perhaps
   indirectly) in a system module.
4. A ``process`` or ``systemprocess`` module may contain ``process`` or
   ``activity`` children.
5. An ``activity`` or ``systemactivity`` module may only contain ``activity``
   children.
6. In each root-to-leaf path of *active* modules there is exactly one system
   module; a module containing a system module must itself be inactive.

Violations raise :class:`repro.estelle.errors.SpecificationError` with a
message naming the offending module, which is what an Estelle compiler's
static-semantics pass would report.
"""

from __future__ import annotations

from typing import List

from .errors import SpecificationError
from .module import Module, ModuleAttribute


def validate_tree(root: Module) -> None:
    """Validate the full tree rooted at ``root`` (the specification root)."""
    _validate_node(root)
    _validate_system_module_paths(root)
    _validate_transition_states(root)


def _validate_node(module: Module) -> None:
    for child in module.children.values():
        if not module.attribute.may_contain(child.attribute):
            raise SpecificationError(
                f"{module.path} ({module.attribute.value}) may not contain "
                f"{child.path} ({child.attribute.value})"
            )
        _validate_node(child)

    if module.attribute in (ModuleAttribute.PROCESS, ModuleAttribute.ACTIVITY):
        if module.system_module() is None:
            raise SpecificationError(
                f"{module.path} has attribute {module.attribute.value!r} but is "
                "not contained in any system module"
            )

    if module.attribute.is_system:
        for ancestor in module.ancestors():
            if ancestor.attribute.is_active:
                raise SpecificationError(
                    f"system module {module.path} is contained in attributed "
                    f"module {ancestor.path} ({ancestor.attribute.value})"
                )


def _validate_system_module_paths(root: Module) -> None:
    """Rule 6: exactly one system module on each path to an *active* leaf."""
    for module in root.walk():
        if not module.attribute.is_active:
            continue
        system_count = sum(
            1
            for node in [module, *module.ancestors()]
            if node.attribute.is_system
        )
        if system_count != 1:
            raise SpecificationError(
                f"the path from the root to {module.path} contains "
                f"{system_count} system modules (exactly one is required)"
            )


def _validate_transition_states(root: Module) -> None:
    """Every transition's from/to states must exist in the module's state set.

    Modules with an empty state set (pure external bodies) are skipped, as are
    wildcard ``from`` clauses.
    """
    for module in root.walk():
        if not module.STATES:
            continue
        state_set = set(module.STATES)
        for tr in module.declared_transitions():
            for state in tr.from_states:
                if state != "*" and state not in state_set:
                    raise SpecificationError(
                        f"{module.path}: transition {tr.name!r} refers to unknown "
                        f"from-state {state!r} (states: {sorted(state_set)})"
                    )
            if tr.to_state is not None and tr.to_state not in state_set:
                raise SpecificationError(
                    f"{module.path}: transition {tr.name!r} refers to unknown "
                    f"to-state {tr.to_state!r} (states: {sorted(state_set)})"
                )


def collect_violations(root: Module) -> List[str]:
    """Non-raising variant used by tooling: returns a list of messages."""
    violations: List[str] = []
    try:
        validate_tree(root)
    except SpecificationError as exc:
        violations.append(str(exc))
    return violations
