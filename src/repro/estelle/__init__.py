"""Estelle (ISO 9074) formal-description framework.

This package reproduces the specification layer of the paper's methodology:
communicating finite-state-machine modules arranged in a tree, typed channels
between interaction points, the four module attributes controlling parallelism
and the static semantic rules an Estelle compiler enforces.

Public surface:

* :class:`Channel`, :class:`Interaction`, :class:`InteractionPoint` — typed
  message exchange.
* :class:`Module`, :class:`ModuleAttribute`, :func:`ip` — module bodies.
* :func:`transition`, :class:`Transition` — transition declarations.
* :class:`Specification` — the root of a module tree, placement and wiring.
* :func:`validate_tree` — the static semantics.

The textual front-end lives in :mod:`repro.estelle.frontend`: it compiles
``.estelle`` source files (see the grammar documented there) into the same
:class:`Specification` objects, reusing this package's validation.
"""

from .dirty import DirtyTracker
from .errors import (
    ChannelError,
    EstelleError,
    ModuleError,
    SchedulingError,
    SpecificationError,
    TransitionError,
)
from .interaction import Channel, Interaction, InteractionPoint, IPDeclaration
from .module import Module, ModuleAttribute, SpecificationRoot, ip
from .specification import Placement, Specification
from .transition import ANY_STATE, FiringRecord, Transition, transition
from .validation import collect_violations, validate_tree

__all__ = [
    "ANY_STATE",
    "Channel",
    "ChannelError",
    "DirtyTracker",
    "EstelleError",
    "FiringRecord",
    "Interaction",
    "InteractionPoint",
    "IPDeclaration",
    "Module",
    "ModuleAttribute",
    "ModuleError",
    "Placement",
    "SchedulingError",
    "Specification",
    "SpecificationError",
    "SpecificationRoot",
    "Transition",
    "TransitionError",
    "collect_violations",
    "ip",
    "transition",
    "validate_tree",
]
