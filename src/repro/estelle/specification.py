"""Specifications: the root of an Estelle module tree plus its wiring.

A :class:`Specification` owns the root module, offers helpers to declare the
static part of the system (system modules, their placement on machines, and
channel connections) and performs the static semantic validation that an
Estelle compiler would do before generating code.

The paper (Section 4.1) describes exactly this structure: *"for the server and
for each client, we generate an Estelle systemprocess module.  In comments, we
declare the location (i.e. a machine name) where the module will be placed in
the implementation."*  Placement comments are modelled by the ``location``
argument of :meth:`Specification.add_system_module`, which the runtime's
mapping layer later uses to decide which simulated machine executes which
system module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Type

from .errors import SpecificationError
from .interaction import InteractionPoint
from .module import Module, ModuleAttribute, SpecificationRoot
from .validation import validate_tree


@dataclass
class Placement:
    """Where a system module is intended to run (the paper's location comment)."""

    module_path: str
    location: str


class Specification:
    """An executable Estelle specification.

    Typical construction::

        spec = Specification("mcam-demo")
        server = spec.add_system_module(McamServerSystem, "server", location="ksr1")
        client = spec.add_system_module(McamClientSystem, "client-1", location="sun-1")
        spec.connect(client.ip_named("transport"), server.ip_named("transport"))
        spec.validate()

    The specification object is purely structural; execution is delegated to
    :class:`repro.runtime.executor.SpecificationExecutor`.
    """

    def __init__(self, name: str):
        self.name = name
        self.root = SpecificationRoot(name)
        self.placements: List[Placement] = []
        self._connections: List[Tuple[InteractionPoint, InteractionPoint]] = []
        #: body-class registry for dynamic topology: class name -> module
        #: class.  The Estelle front-end registers every lowered body here;
        #: hand-built specifications whose transitions ``create_child`` at
        #: runtime must register those classes too
        #: (:meth:`register_body_class`) so the multiprocess coordinator can
        #: replay worker-reported ``init`` events on its own replica.
        self.body_classes: Dict[str, Type[Module]] = {}

    # -- construction -----------------------------------------------------------

    def register_body_class(self, module_class: Type[Module]) -> Type[Module]:
        """Make a module class replayable by name (dynamic ``init`` support)."""
        self.body_classes[module_class.__name__] = module_class
        return module_class

    def add_system_module(
        self,
        module_class: Type[Module],
        name: str,
        location: str = "local",
        **variables,
    ) -> Module:
        """Create a system-module instance directly under the root.

        ``location`` names the (simulated) machine the module is placed on;
        it mirrors the placement comments in the paper's Estelle sources.
        """
        if not module_class.ATTRIBUTE.is_system:
            raise SpecificationError(
                f"{module_class.__name__} has attribute "
                f"{module_class.ATTRIBUTE.value!r}; only system modules may be "
                "instantiated directly under the specification root"
            )
        instance = self.root.create_child(module_class, name, **variables)
        self.placements.append(Placement(module_path=instance.path, location=location))
        self.register_body_class(module_class)
        return instance

    def connect(self, a: InteractionPoint, b: InteractionPoint) -> None:
        """Connect two interaction points and remember the link."""
        a.connect_to(b)
        self._connections.append((a, b))

    # -- lookup -----------------------------------------------------------------

    def modules(self) -> Iterator[Module]:
        """All module instances in the tree, excluding the root."""
        for module in self.root.walk():
            if module is not self.root:
                yield module

    def system_modules(self) -> List[Module]:
        return [m for m in self.root.children.values() if m.attribute.is_system]

    def find(self, path: str) -> Module:
        """Resolve a slash-separated module path relative to the root."""
        node: Module = self.root
        parts = path.split("/")
        if parts and parts[0] == self.root.name:
            parts = parts[1:]
        for part in parts:
            try:
                node = node.children[part]
            except KeyError as exc:
                raise SpecificationError(
                    f"no module at path {path!r} (failed at {part!r})"
                ) from exc
        return node

    def location_of(self, module: Module) -> str:
        """The placement location of the system module owning ``module``."""
        system = module.system_module()
        if system is None:
            return "local"
        for placement in self.placements:
            if placement.module_path == system.path:
                return placement.location
        return "local"

    def connections(self) -> List[Tuple[InteractionPoint, InteractionPoint]]:
        return list(self._connections)

    # -- statistics used in reports and tests ------------------------------------

    def module_count(self) -> int:
        return sum(1 for _ in self.modules())

    def interaction_point_count(self) -> int:
        return sum(len(m.ips) for m in self.modules())

    def pending_interactions(self) -> int:
        return sum(m.pending_interactions() for m in self.modules())

    # -- validation ---------------------------------------------------------------

    def validate(self) -> None:
        """Run the static semantic checks; raises SpecificationError on failure."""
        validate_tree(self.root)

    def describe(self) -> str:
        """A human-readable summary of the module tree (used by examples)."""
        lines = [f"specification {self.name}"]
        for module in self.root.walk():
            if module is self.root:
                continue
            indent = "  " * module.depth()
            ip_names = ", ".join(sorted(module.ips)) or "-"
            lines.append(
                f"{indent}{module.name} [{module.attribute.value}] "
                f"state={module.state!r} ips=({ip_names})"
            )
        return "\n".join(lines)
