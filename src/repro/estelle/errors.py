"""Exception hierarchy for the Estelle specification framework.

The errors mirror the failure classes of the ISO 9074 (Estelle) static and
dynamic semantics as the paper relies on them: attribute-rule violations are
detected when a specification is validated, channel-role mismatches when
interaction points are connected, and dynamic errors (firing a transition that
is not enabled, outputting an interaction that the channel role does not
permit) during execution.
"""

from __future__ import annotations


class EstelleError(Exception):
    """Base class for every error raised by :mod:`repro.estelle`."""


class SpecificationError(EstelleError):
    """A specification violates the static Estelle rules.

    Examples: a system module nested inside an attributed module, an
    ``activity`` module containing a ``process`` child, an active module
    without an attribute, or a path from root to leaf containing zero or more
    than one system module.
    """


class ChannelError(EstelleError):
    """A channel definition or connection is inconsistent.

    Raised when an interaction point is connected twice, when the two ends of
    a connection do not use complementary roles of the same channel, or when
    an interaction is output that the sender's role does not permit.
    """


class TransitionError(EstelleError):
    """A transition declaration or firing is invalid."""


class ModuleError(EstelleError):
    """A dynamic module operation is invalid.

    Examples: creating a child whose attribute is incompatible with the
    parent's attribute, releasing a child that does not exist, or accessing an
    interaction point the module does not declare.
    """


class SchedulingError(EstelleError):
    """The runtime detected an inconsistency while selecting transitions."""
