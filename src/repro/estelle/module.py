"""Estelle modules: attributes, class-level declarations and instances.

The Estelle model (ISO 9074) that the paper relies on:

* A specification is a tree of *module instances*.
* Every active module carries exactly one of four attributes:
  ``systemprocess``, ``systemactivity``, ``process`` or ``activity``.
* A system module (``systemprocess``/``systemactivity``) cannot be nested in
  another attributed module; each ``process``/``activity`` module must be
  (transitively) contained in a system module.
* ``process`` parents allow their children to run in parallel; ``activity``
  parents make their children mutually exclusive.
* A parent always takes precedence over its children: a child may only fire
  when no ancestor has an enabled transition.
* Module instances are created and destroyed dynamically, but only by their
  parent, and only at the position the specification allows.

Module *classes* (subclasses of :class:`Module`) correspond to Estelle module
headers + bodies; declaring interaction points with :func:`ip` and transitions
with :func:`repro.estelle.transition.transition` inside the class body mirrors
the textual Estelle declarations.  Instantiation happens through the parent
(:meth:`Module.create_child`) or the specification root.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Dict, Iterator, List, Optional, Tuple, Type

from .errors import ModuleError, SpecificationError
from .interaction import Channel, IPDeclaration, Interaction, InteractionPoint
from .transition import Transition

_instance_counter = itertools.count(1)


class ModuleAttribute(enum.Enum):
    """The four Estelle module attributes plus ``UNATTRIBUTED`` for inactive
    container modules (such as the specification root)."""

    SYSTEMPROCESS = "systemprocess"
    SYSTEMACTIVITY = "systemactivity"
    PROCESS = "process"
    ACTIVITY = "activity"
    UNATTRIBUTED = "unattributed"

    @property
    def is_system(self) -> bool:
        return self in (ModuleAttribute.SYSTEMPROCESS, ModuleAttribute.SYSTEMACTIVITY)

    @property
    def is_active(self) -> bool:
        return self is not ModuleAttribute.UNATTRIBUTED

    @property
    def children_parallel(self) -> bool:
        """Whether children of a module with this attribute may run in parallel."""
        return self in (ModuleAttribute.SYSTEMPROCESS, ModuleAttribute.PROCESS)

    def may_contain(self, child: "ModuleAttribute") -> bool:
        """Static containment rule between parent and child attributes."""
        if child.is_system:
            # A system module cannot be contained in another *attributed* module.
            return self is ModuleAttribute.UNATTRIBUTED
        if child is ModuleAttribute.UNATTRIBUTED:
            # Inactive modules may appear anywhere above the system level.
            return self is ModuleAttribute.UNATTRIBUTED
        if self in (ModuleAttribute.PROCESS, ModuleAttribute.SYSTEMPROCESS):
            return child in (ModuleAttribute.PROCESS, ModuleAttribute.ACTIVITY)
        if self in (ModuleAttribute.ACTIVITY, ModuleAttribute.SYSTEMACTIVITY):
            return child is ModuleAttribute.ACTIVITY
        # Unattributed parents may not contain plain process/activity children
        # (those must live under a system module).
        return False


def ip(name: str, channel: Channel, role: str, array: bool = False) -> IPDeclaration:
    """Declare an interaction point in a module-class body."""
    return IPDeclaration(name=name, channel=channel, role=role, array=array)


class ModuleMeta(type):
    """Collects IP declarations and transitions from the class body.

    Declarations from base classes are inherited; a subclass redeclaring a
    transition or IP with the same name overrides the inherited one (this is
    how specialised protocol bodies refine a generic header, matching the
    paper's split between Estelle headers and external bodies).
    """

    def __new__(mcls, name, bases, namespace, **kwargs):
        cls = super().__new__(mcls, name, bases, dict(namespace), **kwargs)

        ip_decls: Dict[str, IPDeclaration] = {}
        transitions: Dict[str, Transition] = {}
        for base in reversed(cls.__mro__[1:]):
            ip_decls.update(getattr(base, "_ip_declarations", {}))
            transitions.update(getattr(base, "_transition_declarations", {}))

        for attr_name, value in namespace.items():
            if isinstance(value, IPDeclaration):
                ip_decls[value.name] = value
            elif isinstance(value, Transition):
                transitions[value.name] = value

        cls._ip_declarations = dict(ip_decls)
        cls._transition_declarations = dict(transitions)
        # Precomputed per class so the delay-timer refresh is a cheap no-op
        # for the (vast majority of) classes without timed transitions.
        cls._delayed_transitions = tuple(
            t for t in transitions.values() if t.delay > 0
        )
        return cls


class Module(metaclass=ModuleMeta):
    """Base class for Estelle module bodies.

    Subclasses set the class attributes:

    ``ATTRIBUTE``
        one of :class:`ModuleAttribute` (default ``PROCESS``),
    ``STATES``
        the state set of the module's FSM (may be empty for stateless
        "external body" modules),
    ``INITIAL_STATE``
        the initial state (defaults to the first entry of ``STATES``),
    ``EXTERNAL``
        ``True`` when the body is hand-coded rather than expressed as
        transitions (the paper's DUA / SUA / EUA and the ISODE interface
        module); external modules are driven through :meth:`external_step`.

    and declare interaction points / transitions in the class body.
    """

    ATTRIBUTE: ModuleAttribute = ModuleAttribute.PROCESS
    STATES: Tuple[str, ...] = ()
    INITIAL_STATE: Optional[str] = None
    EXTERNAL: bool = False

    _ip_declarations: Dict[str, IPDeclaration] = {}
    _transition_declarations: Dict[str, Transition] = {}
    _delayed_transitions: Tuple[Transition, ...] = ()

    # Dirty-tracking hooks (see repro.estelle.dirty): installed by a
    # DirtyTracker, inherited by dynamically created children, None when no
    # incremental planner observes this tree.
    _dirty_hook = None
    _structure_hook = None
    # Installed by DirtyTracker.attach alongside the dirty hooks: called with
    # (module, deadline) when a delay timer arms, feeding the tracker's
    # next-deadline index so time passing can wake a sleeping module.
    _deadline_hook = None
    # Observer of tree-shape changes with full detail: called with
    # ("init", parent_path, child_name, child_class_name, variables) after a
    # child is created (before its initialise runs) and ("release",
    # parent_path, child_name) after one is released.  Unlike
    # ``_structure_hook`` (which only bumps the dirty tracker's epoch) this
    # carries enough information to *replay* the change on another replica
    # of the tree — the multiprocess coordinator uses it to mirror
    # worker-side ``init`` / ``release`` onto its own module tree, resolving
    # the class name through ``Specification.body_classes``.  The variables
    # are shipped as a sorted tuple of pairs so the whole event is picklable
    # and value-comparable.
    _topology_hook = None
    # The shared simulated clock (repro.runtime.clock.SimulatedClock.attach);
    # delay clauses are inert while it is None.
    _sim_clock = None

    def __init__(self, name: str, parent: Optional["Module"] = None, **variables: Any):
        self.name = name
        self.parent = parent
        self.uid = next(_instance_counter)
        self.children: Dict[str, Module] = {}
        self.variables: Dict[str, Any] = dict(variables)
        self.state: Optional[str] = self.INITIAL_STATE or (
            self.STATES[0] if self.STATES else None
        )
        self.ips: Dict[str, InteractionPoint] = {
            decl.name: decl.instantiate(self)
            for decl in self._ip_declarations.values()
            if not decl.array
        }
        self._array_counters: Dict[str, int] = {
            decl.name: 0 for decl in self._ip_declarations.values() if decl.array
        }
        #: simulated time at which each currently-armed delay timer started
        #: (transition name -> arming time); maintained by
        #: :meth:`refresh_delay_timers`, cleared per transition on firing.
        self._delay_since: Dict[str, float] = {}
        #: per-variable serial counters behind the Estelle ``init`` statement's
        #: deterministic child naming (``<var>#<serial>``); see
        #: :mod:`repro.estelle.frontend.lower`.
        self._init_serial: Dict[str, int] = {}
        self.fired_count = 0
        self.initialised = False
        #: set (for the whole subtree) by :meth:`release_child`.  A released
        #: module must never fire again — the round executors check this flag
        #: so a module released mid-round while present in the already-built
        #: plan is skipped instead of fired.
        self.released = False

    # -- identity ---------------------------------------------------------------

    @property
    def attribute(self) -> ModuleAttribute:
        return self.ATTRIBUTE

    @property
    def path(self) -> str:
        """Slash-separated path from the specification root to this instance."""
        if self.parent is None:
            return self.name
        return f"{self.parent.path}/{self.name}"

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}({self.path!r}, state={self.state!r})"

    # -- lifecycle --------------------------------------------------------------

    def initialise(self) -> None:
        """Estelle ``initialize`` part.

        Called exactly once by the runtime (or parent) after the instance has
        been created and its static IPs exist.  Override to set variables or
        create initial children.
        """
        self.initialised = True

    def create_child(
        self,
        module_class: Type["Module"],
        name: str,
        **variables: Any,
    ) -> "Module":
        """Dynamically create a child module instance (Estelle ``init``).

        Enforces the attribute containment rules and name uniqueness among the
        module's children.
        """
        if name in self.children:
            raise ModuleError(f"{self.path}: child {name!r} already exists")
        child_attr = module_class.ATTRIBUTE
        if not self.attribute.may_contain(child_attr):
            raise ModuleError(
                f"{self.path} ({self.attribute.value}) may not contain a child "
                f"with attribute {child_attr.value}"
            )
        child = module_class(name, parent=self, **variables)
        # Hooks propagate before initialise(): the initializer may already
        # fire outputs or create grandchildren that must be tracked.
        child._dirty_hook = self._dirty_hook
        child._structure_hook = self._structure_hook
        child._deadline_hook = self._deadline_hook
        child._topology_hook = self._topology_hook
        child._sim_clock = self._sim_clock
        self.children[name] = child
        if self._structure_hook is not None:
            self._structure_hook(self)
        if self._topology_hook is not None:
            # Reported before initialise so a grandchild created inside the
            # initializer appears *after* its parent in the event stream.
            self._topology_hook(
                (
                    "init",
                    self.path,
                    name,
                    module_class.__name__,
                    tuple(sorted(variables.items())),
                )
            )
        child.initialise()
        return child

    def release_child(self, name: str) -> None:
        """Destroy a child instance (Estelle ``release``).

        All the child's (and its descendants') interaction points are
        disconnected first, so dangling peers never observe a released module.
        """
        child = self.children.pop(name, None)
        if child is None:
            raise ModuleError(f"{self.path}: no child named {name!r} to release")
        for descendant in child.walk():
            descendant.released = True
            for point in descendant.ips.values():
                point.disconnect()
        if self._structure_hook is not None:
            self._structure_hook(self)
        if self._topology_hook is not None:
            self._topology_hook(("release", self.path, name))

    def walk(self) -> Iterator["Module"]:
        """Yield this module and every descendant, depth-first, pre-order."""
        yield self
        for child in list(self.children.values()):
            yield from child.walk()

    def ancestors(self) -> Iterator["Module"]:
        """Yield the chain of ancestors from the direct parent to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def system_module(self) -> Optional["Module"]:
        """The system module this module belongs to (itself when it is one)."""
        if self.attribute.is_system:
            return self
        for ancestor in self.ancestors():
            if ancestor.attribute.is_system:
                return ancestor
        return None

    def depth(self) -> int:
        """Distance from the specification root (root has depth 0)."""
        return sum(1 for _ in self.ancestors())

    # -- interaction points -----------------------------------------------------

    def add_array_ip(self, declared_name: str) -> InteractionPoint:
        """Instantiate the next element of an IP array (e.g. per connection)."""
        decl = self._ip_declarations.get(declared_name)
        if decl is None or not decl.array:
            raise ModuleError(
                f"{self.path}: {declared_name!r} is not a declared interaction point array"
            )
        index = self._array_counters[declared_name]
        self._array_counters[declared_name] = index + 1
        point = decl.instantiate(self, index=index)
        self.ips[point.name] = point
        return point

    def ip_named(self, name: str) -> InteractionPoint:
        """Look up an interaction point (raising a precise error when missing)."""
        try:
            return self.ips[name]
        except KeyError as exc:
            raise ModuleError(
                f"{self.path} has no interaction point {name!r}; "
                f"declared: {sorted(self.ips)}"
            ) from exc

    def output(self, ip_name: str, interaction_name: str, **params: Any) -> None:
        """Send an interaction through one of this module's IPs."""
        self.ip_named(ip_name).output(Interaction(interaction_name, params))

    def pending_interactions(self) -> int:
        """Total interactions queued across all of this module's IPs."""
        return sum(point.pending() for point in self.ips.values())

    # -- transitions ------------------------------------------------------------

    @classmethod
    def declared_transitions(cls) -> List[Transition]:
        """All transitions declared on this module class (stable order)."""
        return list(cls._transition_declarations.values())

    def refresh_delay_timers(self) -> None:
        """Re-evaluate the arming state of every ``delay``-bearing transition.

        The delay timer of a transition runs while its *untimed* enabling
        condition holds continuously: the timer arms (recording the current
        simulated time, and reporting the expiry to the deadline hook) the
        first refresh that finds the condition true, and disarms the first
        refresh that finds it false.  Every dispatch strategy runs this same
        module-level pass before candidate scanning — timer maintenance must
        not depend on *which* candidates a particular strategy happens to
        examine, or the strategies would diverge behaviourally.

        A no-op while no simulated clock is attached (delay clauses inert).
        """
        clock = self._sim_clock
        if clock is None:
            return
        now = clock.now
        since = self._delay_since
        for t in self._delayed_transitions:
            if t.enabled_untimed(self):
                if t.name not in since:
                    since[t.name] = now
                    if self._deadline_hook is not None:
                        self._deadline_hook(self, now + t.delay)
            else:
                since.pop(t.name, None)

    def delay_expired(self, transition: Transition) -> bool:
        """Whether ``transition``'s delay timer is armed and has run down.

        True (inert) when no clock is attached; otherwise the transition must
        have been continuously enabled since ``now - delay`` or earlier.
        """
        clock = self._sim_clock
        if clock is None:
            return True
        since = self._delay_since.get(transition.name)
        return since is not None and clock.now >= since + transition.delay

    def enabled_transitions(self) -> List[Transition]:
        """Transitions currently enabled on this instance, best priority first.

        External modules report an enabled pseudo-transition when
        :meth:`external_ready` says so; the runtime then calls
        :meth:`external_step` instead of firing a declared transition.
        """
        if self._delayed_transitions:
            self.refresh_delay_timers()
        enabled = [t for t in self.declared_transitions() if t.enabled(self)]
        enabled.sort(key=lambda t: t.priority)
        return enabled

    def has_enabled_transition(self) -> bool:
        if self.EXTERNAL and self.external_ready():
            return True
        if self._delayed_transitions:
            self.refresh_delay_timers()
        return any(t.enabled(self) for t in self.declared_transitions())

    # -- external (hand-coded) bodies -------------------------------------------

    def external_ready(self) -> bool:
        """Whether a hand-coded body has work to do.

        The default mirrors the ISODE interface loop from Section 4.3 of the
        paper: the module is ready whenever any of its IP queues is non-empty.
        """
        return self.pending_interactions() > 0

    def external_step(self) -> float:
        """Run one step of a hand-coded body; returns its simulated cost.

        Subclasses with ``EXTERNAL = True`` override this.  The default raises
        so that forgetting the override is an immediate, clear failure.
        """
        raise ModuleError(
            f"{self.path}: EXTERNAL module must override external_step()"
        )

    # -- bookkeeping used by the runtime ----------------------------------------

    def note_fired(self) -> None:
        self.fired_count += 1
        if self._dirty_hook is not None:
            # Firing may have changed state, variables and own queue heads.
            self._dirty_hook(self)


class SpecificationRoot(Module):
    """The unattributed root module of a specification.

    Only system modules (and other unattributed containers) may be its
    children; it never fires transitions itself.
    """

    ATTRIBUTE = ModuleAttribute.UNATTRIBUTED

    def has_enabled_transition(self) -> bool:  # the root is always passive
        return False
