"""Dirty tracking: which modules changed since the last computation round.

The incremental round planner (:mod:`repro.runtime.planner`) only re-evaluates
transition selection for modules whose observable state may have changed since
their last evaluation.  Estelle makes that a *local* property: a transition's
enabling depends only on the module's own control state, its own variables and
the heads of its own interaction-point queues (ISO 9074 transitions cannot
read another module's variables).  The mutation points that can change any of
those are therefore exactly:

* a transition (or ``external_step``) firing on the module —
  :meth:`repro.estelle.module.Module.note_fired` marks it;
* an interaction arriving in, or being consumed from, one of the module's IP
  queues — :meth:`repro.estelle.interaction.InteractionPoint.enqueue` /
  :meth:`~repro.estelle.interaction.InteractionPoint.consume` mark the owner;
* the module tree changing shape (``init`` / ``release``) —
  :meth:`~repro.estelle.module.Module.create_child` /
  :meth:`~repro.estelle.module.Module.release_child` bump the *structure
  epoch*, which invalidates every cached selection.

Code that mutates a module's variables *outside* a firing (test fixtures,
hand-driven examples) is outside this contract; such callers must invalidate
the planner explicitly (:meth:`repro.runtime.planner.IncrementalRoundPlanner.
invalidate`).

The hooks are two nullable callables on :class:`~repro.estelle.module.Module`
(``_dirty_hook`` / ``_structure_hook``); when no tracker is attached they stay
``None`` and the mutation points pay one attribute load per event.  One
tracker owns a specification at a time — attaching a second one replaces the
first tracker's hooks.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, FrozenSet, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from .module import Module
    from .specification import Specification


class DirtyTracker:
    """Accumulates the set of module instances with changed state or queues.

    ``drain()`` hands the current dirty set to the planner and resets it; the
    *structure epoch* counts tree-shape changes (module creation/release) so a
    planner can detect that its flattened module arrays are stale and must be
    rebuilt (a full re-evaluation).

    The dirty contract also has a *time* dimension: the passage of simulated
    time can enable a ``delay``-bearing transition without any data mutation,
    so a cached "nothing enabled" selection for an otherwise-clean module can
    go stale.  The tracker therefore keeps a **next-deadline index** — a heap
    of ``(deadline, module)`` entries fed by the module-level delay-timer
    refresh (``Module._deadline_hook``) whenever a timer arms.  Before each
    round the planner calls :meth:`wake_due` with the current simulated time,
    which marks every module whose deadline has passed as dirty (waking the
    sleeper for re-evaluation) instead of falling back to a full rescan.
    Entries are not removed when a timer disarms; a stale entry merely wakes
    a module whose re-evaluation confirms nothing changed, which is cheap and
    keeps the index append-only.
    """

    def __init__(self) -> None:
        self._dirty: Set["Module"] = set()
        self.structure_epoch = 0
        #: total mark events observed (hook invocations; stats/tests only).
        self.total_marks = 0
        #: the next-deadline index: (deadline, tiebreak, module) min-heap.
        self._deadlines: List[Tuple[float, int, "Module"]] = []
        self._deadline_sequence = itertools.count()

    # -- the hooks installed on modules ------------------------------------------

    def mark(self, module: "Module") -> None:
        self._dirty.add(module)
        self.total_marks += 1

    def note_structure_change(self, module: "Module") -> None:
        self.structure_epoch += 1
        self._dirty.add(module)
        self.total_marks += 1

    def note_deadline(self, module: "Module", deadline: float) -> None:
        """A delay timer armed on ``module``, expiring at ``deadline``."""
        heapq.heappush(
            self._deadlines, (deadline, next(self._deadline_sequence), module)
        )

    # -- consumption by the planner ------------------------------------------------

    def drain(self) -> Set["Module"]:
        """Return the modules marked since the last drain and reset the set."""
        dirty, self._dirty = self._dirty, set()
        return dirty

    def peek(self) -> FrozenSet["Module"]:
        return frozenset(self._dirty)

    def wake_due(self, now: float) -> int:
        """Mark every module whose recorded deadline is at or before ``now``.

        Returns the number of woken entries.  Call before :meth:`drain` so
        modules enabled purely by time passing are re-evaluated this round.
        """
        woken = 0
        deadlines = self._deadlines
        while deadlines and deadlines[0][0] <= now:
            _, _, module = heapq.heappop(deadlines)
            self._dirty.add(module)
            woken += 1
        return woken

    def next_deadline(self) -> Optional[float]:
        """The earliest recorded future deadline (None when the index is empty).

        After :meth:`wake_due` ``(now)`` every remaining entry is strictly
        later than ``now``; the round loop jumps the simulated clock here
        when a plan comes up empty but timers are still running.
        """
        return self._deadlines[0][0] if self._deadlines else None

    # -- installation ---------------------------------------------------------------

    @classmethod
    def attach(cls, specification: "Specification") -> "DirtyTracker":
        """Install a fresh tracker's hooks on every module of a specification.

        Dynamically created children inherit the hooks from their parent at
        ``create_child`` time, so the tracker keeps seeing mutations after the
        tree grows.
        """
        tracker = cls()
        for module in specification.root.walk():
            module._dirty_hook = tracker.mark
            module._structure_hook = tracker.note_structure_change
            module._deadline_hook = tracker.note_deadline
        return tracker
