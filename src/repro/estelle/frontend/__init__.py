"""Estelle text front-end: tokenizer, parser and semantic lowering.

This package closes the loop of the paper's methodology — *"from a Formal
Description to a Working Multimedia System"* — by compiling a textual Estelle
(ISO 9074) specification into the executable :class:`repro.estelle`
object model.  The produced :class:`~repro.estelle.specification.Specification`
is indistinguishable from a hand-built one: it passes the same static
validation (:mod:`repro.estelle.validation`), runs on the same simulated
multiprocessor runtime (:mod:`repro.runtime`), and can be fed to the
optimizing code generator (:mod:`repro.runtime.codegen`).

Usage::

    from repro.estelle.frontend import compile_file

    spec = compile_file("examples/specs/mcam_core.estelle")
    spec.describe()          # already validated

Errors are source-located: :class:`EstelleSyntaxError` for grammar
violations, :class:`EstelleSemanticError` for static-semantic ones; both
expose ``line`` and ``column``.

Supported Estelle subset (EBNF)
-------------------------------

The front-end accepts a pragmatic subset of ISO 9074 sufficient for the
paper's protocol specifications.  Keywords are case-insensitive; comments are
``{ ... }`` or ``(* ... *)``; strings use single or double quotes.

.. code-block:: ebnf

    specification  = "specification" IDENT ";"
                     { channel | module | body | modvar | connect }
                     "end" "." ;

    channel        = "channel" IDENT "(" IDENT "," IDENT ")" ";"
                     { "by" IDENT ":" IDENT { "," IDENT } ";" }
                     "end" ";" ;

    module         = "module" IDENT attribute ";"
                     { "ip" IDENT ":" [ "array" "[" INTEGER ".." INTEGER "]"
                                        "of" ] IDENT "(" IDENT ")" ";" }
                     "end" ";" ;
    attribute      = "systemprocess" | "systemactivity"
                   | "process" | "activity" ;

    body           = "body" IDENT "for" IDENT ";"
                     [ "state" IDENT { "," IDENT } ";" ]
                     [ "initialize" [ "to" IDENT ] block ";" ]
                     { trans }
                     "end" ";" ;

    trans          = "trans" { clause } block ";" ;
    clause         = "from" ( "any" | IDENT { "," IDENT } )
                   | "to" IDENT
                   | "when" ipref "." IDENT
                   | "provided" expr
                   | "priority" [ "-" ] INTEGER
                   | "delay" ( NUMBER | "(" NUMBER "," NUMBER ")" )
                   | "cost" NUMBER
                   | "name" IDENT ;

    modvar         = "modvar" IDENT ":" IDENT "at" STRING
                     [ "with" IDENT ":=" expr { "," IDENT ":=" expr } ] ";" ;
    connect        = "connect" IDENT "." ipref "to" IDENT "." ipref ";" ;
    ipref          = IDENT [ "[" INTEGER "]" ] ;

    block          = "begin" [ stmt { ";" [ stmt ] } ] "end" ;
    stmt           = IDENT ":=" expr
                   | "output" ipref "." IDENT
                         [ "(" [ IDENT ":=" expr { "," IDENT ":=" expr } ] ")" ]
                   | "if" expr "then" { stmt } [ "else" { stmt } ] "end"
                   | "init" IDENT "with" IDENT
                         [ "(" [ IDENT ":=" expr { "," IDENT ":=" expr } ] ")" ]
                   | "release" IDENT ;

    expr           = or ;  (* Pascal-style operators *)
    or             = and { "or" and } ;
    and            = not { "and" not } ;
    not            = "not" not | quantified | comparison ;
    quantified     = ( "exist" | "forall" ) IDENT ":" additive ".." additive
                     "suchthat" expr ;
    comparison     = additive [ ( "=" | "<>" | "<" | "<=" | ">" | ">=" ) additive ] ;
    additive       = term { ( "+" | "-" ) term } ;
    term           = factor { ( "*" | "/" | "div" | "mod" ) factor } ;
    factor         = "-" factor | primary ;
    primary        = NUMBER | STRING | "true" | "false" | "(" expr ")"
                   | IDENT | "msg" "." IDENT ;

Semantics notes
---------------

* ``from any`` (or omitting ``from``) declares a wildcard transition
  (:data:`repro.estelle.transition.ANY_STATE`).
* ``when ip.Interaction`` matches the head of that interaction point's FIFO
  queue; inside the guard and action block, ``msg.<param>`` reads the matched
  interaction's parameters.  ``msg`` is invalid in spontaneous transitions.
* Assignments read and write the module's variable dict.  At the top level of
  ``initialize`` blocks, assignments act as *defaults* so a ``modvar``'s
  ``with`` clause can override them (the ``setdefault`` idiom of the
  hand-written bodies).
* ``modvar`` instantiates a system module under the specification root; the
  ``at`` string is the paper's placement comment (machine name) consumed by
  the runtime's mapping layer.
* ``priority`` follows Estelle: lower numbers are higher priority.  ``cost``
  is the simulated execution cost of the action block in abstract work units.
* ``delay n`` / ``delay (min, max)`` makes the transition fireable only after
  it has been continuously enabled for ``n`` (resp. ``min``) units of
  simulated time on the runtime's shared clock
  (:mod:`repro.runtime.clock`).  The nondeterministic window up to ``max``
  is resolved deterministically to the lower bound — the runtime fires at
  the earliest permitted instant — so canonical firing traces stay
  byte-identical across backends and dispatch strategies; ``max < min`` is
  a located semantic error.  Number literals accept a Pascal-style exponent
  (``delay 1e-3``).
* ``exist i : low .. high suchthat P`` / ``forall i : low .. high suchthat P``
  quantify ``P`` over the inclusive integer interval ``low .. high`` (an empty
  interval makes ``exist`` false and ``forall`` true).  The bound variable
  shadows a module variable of the same name inside ``P``; the bounds must
  evaluate to integers (a located diagnostic is raised otherwise).
* ``ip name : array [low..high] of Channel(role)`` declares an
  *interaction-point array*: one individual interaction point per index of
  the inclusive integer range, referenced as ``name[i]`` in ``when`` /
  ``output`` clauses and ``connect`` statements.  The elements lower to
  ordinary :class:`~repro.estelle.interaction.InteractionPoint` instances
  *named with the same* ``name[i]`` *spelling* — the deterministic naming
  rule that keeps canonical trace fields stable across backends and dispatch
  strategies.  Out-of-range indices, indexing a scalar, and referencing an
  array without an index are located semantic errors.
* ``init var with Body [(v := expr, ...)]`` (Estelle dynamic module
  creation) creates a child instance of ``Body`` under the executing module
  at runtime (:meth:`repro.estelle.module.Module.create_child`), stores the
  instance in module variable ``var``, and names the child
  ``<var>#<serial>`` with a per-(instance, var) serial starting at 1 — so a
  released-then-re-inited variable yields a fresh, distinguishable, yet
  deterministic ``module_path``.  The optional parameter list seeds the
  child's variables before its ``initialize`` block runs (whose top-level
  assignments act as defaults).  Referencing an undeclared body, or a body
  whose attribute the initing module may not contain, is a located error.
* ``release var`` destroys the child held by ``var``
  (:meth:`~repro.estelle.module.Module.release_child`) and unbinds the
  variable.  Releasing a variable that is never inited anywhere in the body
  is a compile-time located error; releasing one that does not currently
  hold a live child (double release) is a located runtime error.  Both
  statements are legal only inside action blocks (``init``/``release`` at
  the specification's top level is a located syntax error) and both bump the
  dirty tracker's *structure epoch*, forcing the incremental planner to
  rebuild its fused program.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from ..specification import Specification
from . import astnodes
from .astnodes import SpecificationNode
from .errors import (
    EstelleFrontendError,
    EstelleSemanticError,
    EstelleSyntaxError,
    SourceLocation,
)
from .lexer import Token, tokenize
from .lower import (
    SpecificationTemplate,
    expr_to_python,
    lower_bodies,
    lower_specification,
)
from .parser import Parser, parse_source


def compile_source(source: str, filename: str = "<estelle>") -> Specification:
    """Parse and lower Estelle source text to a validated specification."""
    return lower_specification(parse_source(source, filename))


def compile_template(
    source: str, filename: str = "<estelle>"
) -> SpecificationTemplate:
    """Parse and lower once into a reusable :class:`SpecificationTemplate`.

    The template's :meth:`~SpecificationTemplate.instantiate` builds fresh,
    mutually independent specifications that share the lowered module
    classes (and therefore all per-class compiled dispatch artefacts) —
    the cheap-session-spawn path used by :mod:`repro.serve`.
    """
    return SpecificationTemplate(parse_source(source, filename))


def compile_file(path: Union[str, Path]) -> Specification:
    """Parse and lower an ``.estelle`` file to a validated specification."""
    path = Path(path)
    return compile_source(path.read_text(), filename=str(path))


def parse_file(path: Union[str, Path]) -> SpecificationNode:
    """Parse an ``.estelle`` file into its AST (no semantic checks)."""
    path = Path(path)
    return parse_source(path.read_text(), filename=str(path))


__all__ = [
    "EstelleFrontendError",
    "EstelleSemanticError",
    "EstelleSyntaxError",
    "Parser",
    "SourceLocation",
    "SpecificationNode",
    "SpecificationTemplate",
    "Token",
    "astnodes",
    "compile_file",
    "compile_source",
    "compile_template",
    "expr_to_python",
    "lower_bodies",
    "lower_specification",
    "parse_file",
    "parse_source",
    "tokenize",
]
