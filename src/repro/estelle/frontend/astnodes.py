"""Abstract syntax tree for the Estelle text front-end.

Every node carries the :class:`~repro.estelle.frontend.errors.SourceLocation`
of its first token so the semantic pass can attach precise positions to its
diagnostics.  The tree mirrors the grammar documented in
:mod:`repro.estelle.frontend`; it is deliberately plain data — all meaning is
assigned by :mod:`repro.estelle.frontend.lower`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from .errors import SourceLocation

# -- expressions ------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    loc: SourceLocation


@dataclass(frozen=True)
class Literal(Expr):
    """An integer, decimal, string or boolean literal."""

    value: Any


@dataclass(frozen=True)
class Name(Expr):
    """A reference to a module variable."""

    ident: str


@dataclass(frozen=True)
class ParamRef(Expr):
    """``msg.<param>`` — a parameter of the interaction matched by ``when``."""

    param: str


@dataclass(frozen=True)
class Unary(Expr):
    """``-x`` or ``not x``."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    """Binary operator: arithmetic, comparison or boolean connective."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Quantified(Expr):
    """``exist i : low .. high suchthat body`` / ``forall i : ... suchthat body``.

    The bound variable ranges over the inclusive integer interval
    ``low .. high``; inside ``body`` it shadows any module variable of the
    same name.  An empty interval makes ``exist`` false and ``forall`` true.
    """

    kind: str  # "exist" | "forall"
    var: str
    low: Expr
    high: Expr
    body: Expr


# -- statements -------------------------------------------------------------------


@dataclass(frozen=True)
class Stmt:
    loc: SourceLocation


@dataclass(frozen=True)
class Assign(Stmt):
    """``target := expr`` — writes a module variable."""

    target: str
    expr: Expr


@dataclass(frozen=True)
class OutputStmt(Stmt):
    """``output ip.Interaction(param := expr, ...)``."""

    ip: str
    interaction: str
    params: Tuple[Tuple[str, Expr], ...] = ()


@dataclass(frozen=True)
class IfStmt(Stmt):
    """``if expr then stmts [else stmts] end``."""

    condition: Expr
    then_branch: Tuple[Stmt, ...] = ()
    else_branch: Tuple[Stmt, ...] = ()


@dataclass(frozen=True)
class InitStmt(Stmt):
    """``init var with Body [(param := expr, ...)]`` — dynamic child creation.

    ``var`` is a module variable that receives the created child instance
    (Estelle's module variable); the child's runtime name is derived
    deterministically as ``<var>#<serial>`` with a per-(module instance, var)
    serial starting at 1, so canonical trace ``module_path`` fields are
    stable across backends and dispatch strategies.
    """

    var: str
    body: str
    params: Tuple[Tuple[str, Expr], ...] = ()


@dataclass(frozen=True)
class ReleaseStmt(Stmt):
    """``release var`` — destroys the child instance held by ``var``."""

    var: str


# -- declarations -----------------------------------------------------------------


@dataclass(frozen=True)
class RoleNode:
    name: str
    interactions: Tuple[str, ...]
    loc: SourceLocation


@dataclass(frozen=True)
class ChannelNode:
    name: str
    roles: Tuple[RoleNode, RoleNode]
    loc: SourceLocation


@dataclass(frozen=True)
class IPDeclNode:
    """``ip name : Channel(role)`` or the array form
    ``ip name : array [low..high] of Channel(role)``.

    An array declares one interaction point per index of the inclusive
    integer range; the elements are referenced as ``name[i]`` in ``when`` /
    ``output`` clauses and ``connect`` statements, and lower to individual
    :class:`repro.estelle.interaction.InteractionPoint` instances named with
    the same ``name[i]`` spelling (the trace-stability naming rule).
    ``low``/``high`` are ``None`` for scalar declarations.
    """

    name: str
    channel: str
    role: str
    loc: SourceLocation
    low: Optional[int] = None
    high: Optional[int] = None

    @property
    def is_array(self) -> bool:
        return self.low is not None


@dataclass(frozen=True)
class ModuleHeaderNode:
    name: str
    attribute: str  # systemprocess | systemactivity | process | activity
    ips: Tuple[IPDeclNode, ...]
    loc: SourceLocation


@dataclass(frozen=True)
class InitializeNode:
    to_state: Optional[str]
    statements: Tuple[Stmt, ...]
    loc: SourceLocation


@dataclass(frozen=True)
class TransNode:
    """One ``trans`` declaration with its clauses and action block."""

    from_states: Tuple[str, ...]  # empty tuple means "any state"
    to_state: Optional[str]
    when: Optional[Tuple[str, str]]  # (ip name, interaction name)
    provided: Optional[Expr]
    priority: int
    delay: float
    cost: float
    name: Optional[str]
    statements: Tuple[Stmt, ...]
    loc: SourceLocation
    when_loc: Optional[SourceLocation] = None
    #: the upper bound of a ``delay(min, max)`` pair (``delay`` holds the
    #: lower bound); None for the scalar ``delay n`` form.
    delay_max: Optional[float] = None


@dataclass(frozen=True)
class BodyNode:
    name: str
    header: str
    states: Tuple[Tuple[str, SourceLocation], ...]
    initialize: Optional[InitializeNode]
    transitions: Tuple[TransNode, ...]
    loc: SourceLocation


@dataclass(frozen=True)
class InstanceNode:
    """``modvar name : Body at "location" [with var := expr, ...];``"""

    name: str
    body: str
    location: str
    variables: Tuple[Tuple[str, Expr], ...]
    loc: SourceLocation


@dataclass(frozen=True)
class ConnectNode:
    """``connect a.ip to b.ip;``"""

    a: Tuple[str, str]
    b: Tuple[str, str]
    loc: SourceLocation


@dataclass
class SpecificationNode:
    """The root of a parsed ``.estelle`` source."""

    name: str
    loc: SourceLocation
    channels: List[ChannelNode] = field(default_factory=list)
    headers: List[ModuleHeaderNode] = field(default_factory=list)
    bodies: List[BodyNode] = field(default_factory=list)
    instances: List[InstanceNode] = field(default_factory=list)
    connections: List[ConnectNode] = field(default_factory=list)
