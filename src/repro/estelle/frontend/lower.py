"""Semantic pass: lower a parsed Estelle AST onto the executable classes.

The pass performs the static checks an Estelle compiler runs *before* code
generation — duplicate names, undeclared states/interaction points/roles,
interactions a role may not send or receive, ``msg`` used outside a ``when``
transition — raising located :class:`EstelleSemanticError` diagnostics.  It
then builds, per ``body``, a dynamically created subclass of
:class:`repro.estelle.module.Module` whose transitions interpret the action
ASTs, and assembles the instances and connections into a validated
:class:`repro.estelle.specification.Specification`.

Guards additionally carry a ``_python_source`` attribute: the guard
expression translated to a Python expression over ``_v`` (the module's
variable dict) and ``_i`` (the matched interaction).  The optimizing code
generator (:mod:`repro.runtime.codegen`) uses it to replace the interpreted
guard with a compiled closure.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from ..errors import EstelleError, SpecificationError
from ..interaction import Channel, ChannelRole
from ..module import Module, ModuleAttribute, ip
from ..specification import Specification
from ..transition import Transition, transition
from . import astnodes as ast
from .errors import EstelleSemanticError, SourceLocation


def split_ip_reference(name: str) -> Tuple[str, Optional[int]]:
    """Split a composed interaction-point reference into (base, index).

    ``"pts[2]"`` -> ``("pts", 2)``; a scalar reference returns ``(name,
    None)``.  Identifiers cannot contain brackets, so the composed spelling
    the parser produces is unambiguous.
    """
    if name.endswith("]"):
        base, _, index = name[:-1].partition("[")
        return base, int(index)
    return name, None

# -- expression evaluation ---------------------------------------------------------


def _eval(expr: ast.Expr, module: Module, interaction, env: Optional[Dict[str, Any]] = None) -> Any:
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Name):
        if env is not None and expr.ident in env:
            return env[expr.ident]
        try:
            return module.variables[expr.ident]
        except KeyError:
            raise EstelleSemanticError(
                f"undefined variable {expr.ident!r} in module {module.path}",
                expr.loc,
            ) from None
    if isinstance(expr, ast.ParamRef):
        if interaction is None:
            raise EstelleSemanticError(
                f"'msg.{expr.param}' evaluated outside a 'when' transition",
                expr.loc,
            )
        return interaction.param(expr.param)
    if isinstance(expr, ast.Quantified):
        return _eval_quantified(expr, module, interaction, env)
    if isinstance(expr, ast.Unary):
        if expr.op == "not":
            return not _eval(expr.operand, module, interaction, env)
        return -_eval(expr.operand, module, interaction, env)
    if isinstance(expr, ast.Binary):
        if expr.op == "and":
            return bool(_eval(expr.left, module, interaction, env)) and bool(
                _eval(expr.right, module, interaction, env)
            )
        if expr.op == "or":
            return bool(_eval(expr.left, module, interaction, env)) or bool(
                _eval(expr.right, module, interaction, env)
            )
        left = _eval(expr.left, module, interaction, env)
        right = _eval(expr.right, module, interaction, env)
        op = expr.op
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return left / right
        if op == "div":
            return left // right
        if op == "mod":
            return left % right
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    raise EstelleSemanticError(f"unsupported expression node {type(expr).__name__}", expr.loc)


def _quantifier_bound(value: Any, which: str, loc) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise EstelleSemanticError(
            f"quantifier {which} bound must be an integer, got {value!r}", loc
        )
    return value


def quantifier_range(low: Any, high: Any) -> range:
    """The inclusive quantifier domain with the interpreter's bound checks.

    Used by the *generated* guard sources (bound as ``_qrange`` by
    :mod:`repro.runtime.codegen`): bools and non-ints raise TypeError — which
    the generated guard's fallback turns into a re-evaluation through the
    interpreted guard and therefore the same located diagnostic — instead of
    ``range()`` silently accepting ``True`` as 1.
    """
    if (
        isinstance(low, bool)
        or not isinstance(low, int)
        or isinstance(high, bool)
        or not isinstance(high, int)
    ):
        raise TypeError(f"quantifier bounds must be integers, got {low!r} .. {high!r}")
    return range(low, high + 1)


def _eval_quantified(
    expr: ast.Quantified, module: Module, interaction, env: Optional[Dict[str, Any]]
) -> bool:
    low = _quantifier_bound(
        _eval(expr.low, module, interaction, env), "lower", expr.low.loc
    )
    high = _quantifier_bound(
        _eval(expr.high, module, interaction, env), "upper", expr.high.loc
    )
    scope = dict(env) if env else {}
    witnesses = (
        bool(_eval(expr.body, module, interaction, {**scope, expr.var: value}))
        for value in range(low, high + 1)
    )
    return any(witnesses) if expr.kind == "exist" else all(witnesses)


#: Python spellings of the binary operators for the guard-source translation.
_PY_BINOPS = {
    "+": "+",
    "-": "-",
    "*": "*",
    "/": "/",
    "div": "//",
    "mod": "%",
    "=": "==",
    "<>": "!=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
    "and": "and",
    "or": "or",
}


def expr_to_python(expr: ast.Expr, bound: Optional[Dict[str, str]] = None) -> str:
    """Translate an expression AST to Python source over ``_v`` and ``_i``.

    ``_v`` is the module's variable dict, ``_i`` the matched interaction.
    Every subexpression is parenthesised, so operator precedence is inherited
    from the AST rather than re-encoded.  ``bound`` maps quantifier-bound
    Estelle variable names to the Python comprehension variables that carry
    them (quantified bodies shadow module variables of the same name).
    """
    if isinstance(expr, ast.Literal):
        return repr(expr.value)
    if isinstance(expr, ast.Name):
        if bound is not None and expr.ident in bound:
            return bound[expr.ident]
        return f"_v[{expr.ident!r}]"
    if isinstance(expr, ast.ParamRef):
        return f"_i.params.get({expr.param!r})"
    if isinstance(expr, ast.Quantified):
        var = f"_q{len(bound) if bound else 0}_{expr.var}"
        scope = dict(bound) if bound else {}
        scope[expr.var] = var
        low = expr_to_python(expr.low, bound)
        high = expr_to_python(expr.high, bound)
        body = expr_to_python(expr.body, scope)
        reducer = "any" if expr.kind == "exist" else "all"
        return f"{reducer}(({body}) for {var} in _qrange(({low}), ({high})))"
    if isinstance(expr, ast.Unary):
        inner = expr_to_python(expr.operand, bound)
        return f"(not {inner})" if expr.op == "not" else f"(-{inner})"
    if isinstance(expr, ast.Binary):
        left = expr_to_python(expr.left, bound)
        right = expr_to_python(expr.right, bound)
        return f"({left} {_PY_BINOPS[expr.op]} {right})"
    raise EstelleSemanticError(f"unsupported expression node {type(expr).__name__}", expr.loc)


# -- statement execution -----------------------------------------------------------


def _execute(
    statements: Tuple[ast.Stmt, ...],
    module: Module,
    interaction,
    as_defaults: bool = False,
    body_classes: Optional[Dict[str, Type[Module]]] = None,
) -> None:
    """Run an action block.

    ``as_defaults`` is used for the top level of ``initialize`` blocks:
    assignments there only seed a value when the variable was not already set
    by the instance's ``with`` clause (mirroring the ``setdefault`` idiom of
    the hand-written module bodies).

    ``body_classes`` is the specification's body-name -> module-class map,
    captured by the action closures at lowering time; ``init`` statements
    resolve their target body through it at execution time (so bodies may be
    declared after the body whose transition inits them).
    """
    for stmt in statements:
        if isinstance(stmt, ast.Assign):
            value = _eval(stmt.expr, module, interaction)
            if as_defaults:
                module.variables.setdefault(stmt.target, value)
            else:
                module.variables[stmt.target] = value
        elif isinstance(stmt, ast.OutputStmt):
            params = {
                name: _eval(value, module, interaction) for name, value in stmt.params
            }
            module.output(stmt.ip, stmt.interaction, **params)
        elif isinstance(stmt, ast.IfStmt):
            if _eval(stmt.condition, module, interaction):
                _execute(stmt.then_branch, module, interaction, body_classes=body_classes)
            else:
                _execute(stmt.else_branch, module, interaction, body_classes=body_classes)
        elif isinstance(stmt, ast.InitStmt):
            _execute_init(stmt, module, interaction, body_classes)
        elif isinstance(stmt, ast.ReleaseStmt):
            _execute_release(stmt, module)
        else:  # pragma: no cover - the parser only builds these kinds
            raise EstelleSemanticError(
                f"unsupported statement node {type(stmt).__name__}", stmt.loc
            )


def _execute_init(
    stmt: ast.InitStmt,
    module: Module,
    interaction,
    body_classes: Optional[Dict[str, Type[Module]]],
) -> None:
    """Estelle ``init``: create a child instance with a deterministic name.

    The child is named ``<var>#<serial>`` with a per-(instance, var) serial
    starting at 1, so re-initing a released variable yields a fresh,
    distinguishable ``module_path`` that is nevertheless identical across
    backends and dispatch strategies (the trace-stability rule).
    """
    body_class = (body_classes or {}).get(stmt.body)
    if body_class is None:  # statically checked; guards hand-built ASTs
        raise EstelleSemanticError(
            f"'init' refers to unknown body {stmt.body!r}", stmt.loc
        )
    existing = module.variables.get(stmt.var)
    if isinstance(existing, Module) and not existing.released:
        raise EstelleSemanticError(
            f"'init' into module variable {stmt.var!r} of {module.path} which "
            f"already holds the live instance {existing.path!r}; release it "
            "first",
            stmt.loc,
        )
    serial = module._init_serial.get(stmt.var, 0) + 1
    module._init_serial[stmt.var] = serial
    params = {name: _eval(expr, module, interaction) for name, expr in stmt.params}
    try:
        child = module.create_child(body_class, f"{stmt.var}#{serial}", **params)
    except EstelleError as exc:
        raise EstelleSemanticError(str(exc), stmt.loc) from exc
    module.variables[stmt.var] = child


def _execute_release(stmt: ast.ReleaseStmt, module: Module) -> None:
    """Estelle ``release``: destroy the child held by a module variable."""
    child = module.variables.get(stmt.var)
    if not isinstance(child, Module) or child.released or child.parent is not module:
        raise EstelleSemanticError(
            f"'release' of module variable {stmt.var!r} of {module.path} which "
            "does not hold a live child instance (double release, or released "
            "before any 'init'?)",
            stmt.loc,
        )
    try:
        module.release_child(child.name)
    except EstelleError as exc:
        raise EstelleSemanticError(str(exc), stmt.loc) from exc
    module.variables[stmt.var] = None


# -- static walks over action blocks -----------------------------------------------


def _walk_statements(statements: Tuple[ast.Stmt, ...]):
    for stmt in statements:
        yield stmt
        if isinstance(stmt, ast.IfStmt):
            yield from _walk_statements(stmt.then_branch)
            yield from _walk_statements(stmt.else_branch)


def _walk_expressions(statements: Tuple[ast.Stmt, ...]):
    for stmt in _walk_statements(statements):
        if isinstance(stmt, ast.Assign):
            yield stmt.expr
        elif isinstance(stmt, (ast.OutputStmt, ast.InitStmt)):
            for _, expr in stmt.params:
                yield expr
        elif isinstance(stmt, ast.IfStmt):
            yield stmt.condition


def _find_param_ref(expr: ast.Expr) -> Optional[ast.ParamRef]:
    if isinstance(expr, ast.ParamRef):
        return expr
    if isinstance(expr, ast.Unary):
        return _find_param_ref(expr.operand)
    if isinstance(expr, ast.Binary):
        return _find_param_ref(expr.left) or _find_param_ref(expr.right)
    if isinstance(expr, ast.Quantified):
        return (
            _find_param_ref(expr.low)
            or _find_param_ref(expr.high)
            or _find_param_ref(expr.body)
        )
    return None


# -- the lowering pass -------------------------------------------------------------


class _Lowering:
    def __init__(self, node: ast.SpecificationNode):
        self.node = node
        self.channels: Dict[str, Channel] = {}
        self.channel_nodes: Dict[str, ast.ChannelNode] = {}
        self.headers: Dict[str, ast.ModuleHeaderNode] = {}
        self.body_classes: Dict[str, Type[Module]] = {}
        self.body_nodes: Dict[str, ast.BodyNode] = {}
        #: ``init`` statements whose body references are resolved after every
        #: body has been lowered (forward references are legal).
        self._deferred_inits: List[Tuple[ast.InitStmt, str, ModuleAttribute]] = []
        #: per-header (ip_roles, array_bounds) maps, recorded while lowering
        #: bodies so ``connect`` references get the same precise array
        #: diagnostics as ``when``/``output`` clauses.
        self._header_ip_info: Dict[str, Tuple[Dict[str, ChannelRole], Dict[str, Tuple[int, int]]]] = {}

    def run(self) -> Specification:
        for channel_node in self.node.channels:
            self._lower_channel(channel_node)
        for header in self.node.headers:
            self._check_header(header)
        for body in self.node.bodies:
            self._lower_body(body)
        self._check_deferred_inits()
        return self._assemble()

    def _check_deferred_inits(self) -> None:
        """Post-pass over every ``init`` statement: the target body must be
        declared somewhere in the specification, and its module attribute
        must be containable under the initing body's attribute (the same
        rule ``create_child`` enforces at runtime, caught at compile time)."""
        for stmt, body_name, parent_attribute in self._deferred_inits:
            child_class = self.body_classes.get(stmt.body)
            if child_class is None:
                raise EstelleSemanticError(
                    f"'init' in body {body_name!r} refers to undeclared body "
                    f"{stmt.body!r} (declared bodies: {sorted(self.body_classes)})",
                    stmt.loc,
                )
            child_attribute = child_class.ATTRIBUTE
            if not parent_attribute.may_contain(child_attribute):
                raise EstelleSemanticError(
                    f"a {parent_attribute.value} module may not 'init' a child "
                    f"with attribute {child_attribute.value} "
                    f"(body {stmt.body!r})",
                    stmt.loc,
                )

    # -- channels -----------------------------------------------------------------

    def _lower_channel(self, node: ast.ChannelNode) -> None:
        if node.name in self.channels:
            raise EstelleSemanticError(
                f"duplicate channel definition {node.name!r}", node.loc
            )
        roles = {role.name: role.interactions for role in node.roles}
        self.channels[node.name] = Channel(node.name, **roles)
        self.channel_nodes[node.name] = node

    # -- module headers -----------------------------------------------------------

    def _check_header(self, node: ast.ModuleHeaderNode) -> None:
        if node.name in self.headers:
            raise EstelleSemanticError(
                f"duplicate module definition {node.name!r}", node.loc
            )
        seen_ips = set()
        for ip_decl in node.ips:
            if ip_decl.name in seen_ips:
                raise EstelleSemanticError(
                    f"module {node.name!r} declares interaction point "
                    f"{ip_decl.name!r} twice",
                    ip_decl.loc,
                )
            seen_ips.add(ip_decl.name)
            if ip_decl.is_array and ip_decl.high < ip_decl.low:  # type: ignore[operator]
                raise EstelleSemanticError(
                    f"interaction-point array {ip_decl.name!r} of module "
                    f"{node.name!r} declares an empty range "
                    f"[{ip_decl.low}..{ip_decl.high}]",
                    ip_decl.loc,
                )
            channel = self.channels.get(ip_decl.channel)
            if channel is None:
                raise EstelleSemanticError(
                    f"interaction point {ip_decl.name!r} of module {node.name!r} "
                    f"refers to undeclared channel {ip_decl.channel!r}",
                    ip_decl.loc,
                )
            role_names = {role.name for role in self.channel_nodes[ip_decl.channel].roles}
            if ip_decl.role not in role_names:
                raise EstelleSemanticError(
                    f"channel {ip_decl.channel!r} has no role {ip_decl.role!r} "
                    f"(roles: {sorted(role_names)})",
                    ip_decl.loc,
                )
        self.headers[node.name] = node

    # -- bodies -------------------------------------------------------------------

    def _lower_body(self, node: ast.BodyNode) -> None:
        if node.name in self.body_classes:
            raise EstelleSemanticError(
                f"duplicate body definition {node.name!r}", node.loc
            )
        header = self.headers.get(node.header)
        if header is None:
            raise EstelleSemanticError(
                f"body {node.name!r} refers to undeclared module {node.header!r}",
                node.loc,
            )

        states: List[str] = []
        for state, loc in node.states:
            if state in states:
                raise EstelleSemanticError(
                    f"body {node.name!r} declares state {state!r} twice", loc
                )
            states.append(state)
        state_set = set(states)

        # Interaction points: scalars keep their name; an array declaration
        # expands into one InteractionPoint per index of its declared range,
        # named with the same "name[i]" spelling the parser composes for
        # indexed references — the deterministic naming that keeps canonical
        # trace fields (interaction_name is unaffected, module_path and the
        # ips dict keys) stable across backends and dispatch strategies.
        ip_roles: Dict[str, ChannelRole] = {}
        array_bounds: Dict[str, Tuple[int, int]] = {}
        for decl in header.ips:
            role = self.channels[decl.channel].role(decl.role)
            if decl.is_array:
                array_bounds[decl.name] = (decl.low, decl.high)  # type: ignore[assignment]
                for index in range(decl.low, decl.high + 1):  # type: ignore[arg-type]
                    ip_roles[f"{decl.name}[{index}]"] = role
            else:
                ip_roles[decl.name] = role
        self._header_ip_info[header.name] = (ip_roles, array_bounds)

        namespace: Dict[str, Any] = {
            "ATTRIBUTE": ModuleAttribute(header.attribute),
            "STATES": tuple(states),
            "INITIAL_STATE": None,
            "__doc__": f"Compiled from Estelle body {node.name!r} for module "
            f"{header.name!r}.",
            "__module__": __name__ + ".compiled",
        }
        for decl in header.ips:
            if decl.is_array:
                for index in range(decl.low, decl.high + 1):  # type: ignore[arg-type]
                    element = f"{decl.name}[{index}]"
                    namespace[element] = ip(
                        element, self.channels[decl.channel], role=decl.role
                    )
            else:
                namespace[decl.name] = ip(
                    decl.name, self.channels[decl.channel], role=decl.role
                )

        # Static checks for dynamic topology statements: collect the module
        # variables 'init'ed anywhere in this body (initialize block included)
        # so 'release' of a never-inited variable is a compile-time error, and
        # defer the body-name/attribute checks until every body is lowered.
        parent_attribute = ModuleAttribute(header.attribute)
        init_vars = set()
        blocks: List[Tuple[ast.Stmt, ...]] = [t.statements for t in node.transitions]
        if node.initialize is not None:
            blocks.append(node.initialize.statements)
        for block in blocks:
            for stmt in _walk_statements(block):
                if isinstance(stmt, ast.InitStmt):
                    init_vars.add(stmt.var)
                    self._deferred_inits.append((stmt, node.name, parent_attribute))
        for block in blocks:
            for stmt in _walk_statements(block):
                if isinstance(stmt, ast.ReleaseStmt) and stmt.var not in init_vars:
                    raise EstelleSemanticError(
                        f"'release' of module variable {stmt.var!r} which is "
                        f"never 'init'ed anywhere in body {node.name!r}",
                        stmt.loc,
                    )

        if node.initialize is not None:
            init = node.initialize
            if init.to_state is not None and init.to_state not in state_set:
                raise EstelleSemanticError(
                    f"initialize refers to undeclared state {init.to_state!r} "
                    f"(states: {sorted(state_set)})",
                    init.loc,
                )
            self._check_block(node, init.statements, ip_roles, array_bounds, has_when=False)
            namespace["INITIAL_STATE"] = init.to_state or (states[0] if states else None)
            namespace["initialise"] = _make_initialise(init, self.body_classes)
        elif states:
            namespace["INITIAL_STATE"] = states[0]

        for index, trans_node in enumerate(node.transitions):
            declared = self._lower_transition(
                node, trans_node, index, state_set, ip_roles, array_bounds
            )
            # The namespace already holds the reserved class attributes, the
            # IP declarations and every earlier transition, so one membership
            # check rejects duplicates *and* silent clobbering (a transition
            # named like an interaction point or 'initialise').
            if declared.name in namespace:
                raise EstelleSemanticError(
                    f"transition name {declared.name!r} collides with another "
                    f"declaration of body {node.name!r} (duplicate transition, "
                    "interaction point, or reserved module attribute)",
                    trans_node.loc,
                )
            namespace[declared.name] = declared

        self.body_classes[node.name] = type(node.name, (Module,), namespace)
        self.body_nodes[node.name] = node

    def _resolve_ip_role(
        self,
        header_name: str,
        ip_roles: Dict[str, ChannelRole],
        array_bounds: Dict[str, Tuple[int, int]],
        name: str,
        loc: SourceLocation,
        clause: str,
    ) -> ChannelRole:
        """Resolve an interaction-point reference with precise diagnostics.

        Distinguishes an out-of-range index on a declared array, a missing
        index on an array, an index on a scalar, and a plainly undeclared
        interaction point — each with the reference's source location.
        """
        role = ip_roles.get(name)
        if role is not None:
            return role
        base, index = split_ip_reference(name)
        bounds = array_bounds.get(base)
        if bounds is not None:
            low, high = bounds
            if index is None:
                raise EstelleSemanticError(
                    f"{clause} refers to interaction-point array {base!r} of "
                    f"module {header_name!r} without an index; declared range "
                    f"is [{low}..{high}]",
                    loc,
                )
            raise EstelleSemanticError(
                f"{clause} index {index} is out of the declared range "
                f"[{low}..{high}] of interaction-point array {base!r} of "
                f"module {header_name!r}",
                loc,
            )
        if index is not None and base in ip_roles:
            raise EstelleSemanticError(
                f"{clause} indexes interaction point {base!r} of module "
                f"{header_name!r}, which is not declared as an array",
                loc,
            )
        raise EstelleSemanticError(
            f"{clause} refers to undeclared interaction point {name!r} of "
            f"module {header_name!r} (declared: {sorted(ip_roles)})",
            loc,
        )

    def _lower_transition(
        self,
        body: ast.BodyNode,
        node: ast.TransNode,
        index: int,
        state_set: set,
        ip_roles: Dict[str, ChannelRole],
        array_bounds: Dict[str, Tuple[int, int]],
    ) -> Transition:
        for state in node.from_states:
            if state not in state_set:
                raise EstelleSemanticError(
                    f"transition refers to undeclared from-state {state!r} "
                    f"(states: {sorted(state_set)})",
                    node.loc,
                )
        if node.to_state is not None and node.to_state not in state_set:
            raise EstelleSemanticError(
                f"transition refers to undeclared to-state {node.to_state!r} "
                f"(states: {sorted(state_set)})",
                node.loc,
            )
        if node.when is not None:
            ip_name, interaction_name = node.when
            role = self._resolve_ip_role(
                body.header,
                ip_roles,
                array_bounds,
                ip_name,
                node.when_loc or node.loc,
                "'when'",
            )
            # Incoming interactions are the ones the *peer* role sends.
            if interaction_name not in role.peer.interactions:
                raise EstelleSemanticError(
                    f"interaction point {ip_name!r} (role {role.name!r} of channel "
                    f"{role.channel.name!r}) never receives {interaction_name!r}; "
                    f"receivable: {sorted(role.peer.interactions)}",
                    node.when_loc or node.loc,
                )
        self._check_block(
            body, node.statements, ip_roles, array_bounds, has_when=node.when is not None
        )
        if node.provided is not None and node.when is None:
            ref = _find_param_ref(node.provided)
            if ref is not None:
                raise EstelleSemanticError(
                    "'msg' may only be used in transitions with a 'when' clause",
                    ref.loc,
                )

        guard = _make_guard(node.provided) if node.provided is not None else None
        action = _make_action(node, self.body_classes)
        name = node.name or f"trans_{index}"
        action.__name__ = name
        try:
            return transition(
                from_state=tuple(node.from_states) if node.from_states else None,
                to_state=node.to_state,
                when=node.when,
                provided=guard,
                priority=node.priority,
                delay=node.delay,
                delay_max=node.delay_max,
                cost=node.cost,
                name=name,
            )(action)
        except EstelleError as exc:
            raise EstelleSemanticError(str(exc), node.loc) from exc

    def _check_block(
        self,
        body: ast.BodyNode,
        statements: Tuple[ast.Stmt, ...],
        ip_roles: Dict[str, ChannelRole],
        array_bounds: Dict[str, Tuple[int, int]],
        has_when: bool,
    ) -> None:
        for stmt in _walk_statements(statements):
            if isinstance(stmt, ast.OutputStmt):
                role = self._resolve_ip_role(
                    body.header, ip_roles, array_bounds, stmt.ip, stmt.loc, "'output'"
                )
                if not role.allows(stmt.interaction):
                    raise EstelleSemanticError(
                        f"interaction point {stmt.ip!r} (role {role.name!r} of "
                        f"channel {role.channel.name!r}) may not send "
                        f"{stmt.interaction!r}; sendable: {sorted(role.interactions)}",
                        stmt.loc,
                    )
        if not has_when:
            for expr in _walk_expressions(statements):
                ref = _find_param_ref(expr)
                if ref is not None:
                    raise EstelleSemanticError(
                        "'msg' may only be used in transitions with a 'when' clause",
                        ref.loc,
                    )

    # -- assembly -----------------------------------------------------------------

    def _assemble(self) -> Specification:
        spec = Specification(self.node.name)
        # Every lowered body is replayable by name: the multiprocess
        # coordinator resolves worker-reported dynamic 'init' events here.
        for body_class in self.body_classes.values():
            spec.register_body_class(body_class)
        instances: Dict[str, Module] = {}
        for inst in self.node.instances:
            if inst.name in instances:
                raise EstelleSemanticError(
                    f"duplicate instance name {inst.name!r}", inst.loc
                )
            body_class = self.body_classes.get(inst.body)
            if body_class is None:
                raise EstelleSemanticError(
                    f"instance {inst.name!r} refers to undeclared body {inst.body!r}",
                    inst.loc,
                )
            variables = {}
            for var, expr in inst.variables:
                value = _eval_constant(expr)
                variables[var] = value
            try:
                instances[inst.name] = spec.add_system_module(
                    body_class, inst.name, location=inst.location, **variables
                )
            except EstelleError as exc:
                raise EstelleSemanticError(str(exc), inst.loc) from exc
        for conn in self.node.connections:
            a = self._resolve_ip(instances, conn.a, conn.loc)
            b = self._resolve_ip(instances, conn.b, conn.loc)
            try:
                spec.connect(a, b)
            except EstelleError as exc:
                raise EstelleSemanticError(str(exc), conn.loc) from exc
        try:
            spec.validate()
        except EstelleSemanticError:
            raise
        except SpecificationError as exc:
            raise EstelleSemanticError(str(exc), self.node.loc) from exc
        return spec

    def _resolve_ip(
        self,
        instances: Dict[str, Module],
        ref: Tuple[str, str],
        loc: SourceLocation,
    ):
        instance_name, ip_name = ref
        instance = instances.get(instance_name)
        if instance is None:
            raise EstelleSemanticError(
                f"connect refers to undeclared instance {instance_name!r} "
                f"(declared: {sorted(instances)})",
                loc,
            )
        point = instance.ips.get(ip_name)
        if point is None:
            # Give connect the same precise array diagnostics (out-of-range
            # index, missing index, indexing a scalar) as when/output; plain
            # unknown names keep the instance-flavoured message below.
            body_name = type(instance).__name__
            header_name = self.body_nodes[body_name].header
            info = self._header_ip_info.get(header_name)
            if info is not None:
                ip_roles, array_bounds = info
                base, index = split_ip_reference(ip_name)
                if base in array_bounds or (index is not None and base in ip_roles):
                    self._resolve_ip_role(
                        header_name, ip_roles, array_bounds, ip_name, loc, "'connect'"
                    )
            raise EstelleSemanticError(
                f"instance {instance_name!r} has no interaction point {ip_name!r} "
                f"(declared: {sorted(instance.ips)})",
                loc,
            )
        return point


def _eval_constant(expr: ast.Expr) -> Any:
    """Evaluate an instance-variable initialiser (constants only)."""
    if isinstance(expr, (ast.Name, ast.ParamRef)):
        raise EstelleSemanticError(
            "instance variable initialisers must be constant expressions", expr.loc
        )
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Unary):
        value = _eval_constant(expr.operand)
        return (not value) if expr.op == "not" else -value
    if isinstance(expr, ast.Binary):
        probe = _find_param_ref(expr)
        if probe is not None:
            raise EstelleSemanticError(
                "instance variable initialisers must be constant expressions",
                probe.loc,
            )
        # Reuse the interpreter with a dummy module: Name nodes are rejected
        # above and by the recursion, so module state is never consulted.
        left = _eval_constant(expr.left)
        right = _eval_constant(expr.right)
        tmp = ast.Binary(loc=expr.loc, op=expr.op, left=ast.Literal(expr.loc, left), right=ast.Literal(expr.loc, right))
        return _eval(tmp, None, None)  # type: ignore[arg-type]
    raise EstelleSemanticError("instance variable initialisers must be constant expressions", expr.loc)


# -- closure factories -------------------------------------------------------------


def _make_guard(expr: ast.Expr) -> Callable[..., bool]:
    def guard(module, interaction=None):
        return bool(_eval(expr, module, interaction))

    guard._estelle_expr = expr
    guard._python_source = expr_to_python(expr)
    return guard


def _make_action(
    node: ast.TransNode, body_classes: Optional[Dict[str, Type[Module]]] = None
) -> Callable[..., None]:
    def action(module, interaction=None):
        _execute(node.statements, module, interaction, body_classes=body_classes)

    action._estelle_statements = node.statements
    return action


def _make_initialise(
    init: ast.InitializeNode, body_classes: Optional[Dict[str, Type[Module]]] = None
) -> Callable[[Module], None]:
    def initialise(self) -> None:
        Module.initialise(self)
        _execute(init.statements, self, None, as_defaults=True, body_classes=body_classes)
        if init.to_state is not None:
            self.state = init.to_state

    return initialise


def lower_specification(node: ast.SpecificationNode) -> Specification:
    """Lower a parsed specification AST to a validated :class:`Specification`."""
    return _Lowering(node).run()


class SpecificationTemplate:
    """A lowered-once specification that can instantiate many times.

    Lowering is the expensive half of compilation: every ``body`` becomes a
    dynamically created :class:`~repro.estelle.module.Module` subclass whose
    transitions close over their action ASTs.  Those classes carry no
    per-instance state (module state, variables, queues and timers all live
    on the instances), so one lowering can back any number of independent
    :class:`~repro.estelle.specification.Specification` trees —
    :meth:`instantiate` only re-runs the assembly step (fresh instances,
    connections, validation), which is O(instance state).

    Because all instances share the module *classes*, they also share every
    per-class compiled artefact downstream: the code generator's dispatch
    selectors (cached per class) and the fused planner's code objects (cached
    by generated source).  This is the compile-once contract the
    :mod:`repro.serve` registry builds on.

    ``instantiate`` is safe to call concurrently from multiple threads: it
    only reads the lowered template and builds fresh objects.
    """

    def __init__(self, node: ast.SpecificationNode):
        self._lowering = _Lowering(node)
        for channel_node in node.channels:
            self._lowering._lower_channel(channel_node)
        for header in node.headers:
            self._lowering._check_header(header)
        for body in node.bodies:
            self._lowering._lower_body(body)
        self._lowering._check_deferred_inits()
        # Fail at template-compile time, not on the first instantiate: the
        # assembly step performs the instance-level semantic checks
        # (duplicate instances, unknown bodies, connect diagnostics).
        self._lowering._assemble()

    @property
    def name(self) -> str:
        return self._lowering.node.name

    @property
    def body_classes(self) -> Dict[str, Type[Module]]:
        """The shared lowered module classes, by body name."""
        return dict(self._lowering.body_classes)

    def instantiate(self) -> Specification:
        """Build a fresh validated specification from the lowered template."""
        return self._lowering._assemble()


def lower_bodies(node: ast.SpecificationNode) -> Dict[str, Type[Module]]:
    """Lower only the module classes (no instances); useful for tooling."""
    lowering = _Lowering(node)
    for channel_node in node.channels:
        lowering._lower_channel(channel_node)
    for header in node.headers:
        lowering._check_header(header)
    for body in node.bodies:
        lowering._lower_body(body)
    lowering._check_deferred_inits()
    return dict(lowering.body_classes)
