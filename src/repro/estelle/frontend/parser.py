"""Recursive-descent parser for the Estelle subset.

One token of lookahead suffices for the whole grammar (see the EBNF in
:mod:`repro.estelle.frontend`).  All diagnostics are
:class:`~repro.estelle.frontend.errors.EstelleSyntaxError` with the location
of the offending token.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from . import astnodes as ast
from .errors import EstelleSyntaxError, SourceLocation
from .lexer import Token, tokenize

_ATTRIBUTES = ("systemprocess", "systemactivity", "process", "activity")

_COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")
_ADDITIVE_OPS = ("+", "-")
_MULTIPLICATIVE_OPS = ("*", "/")


class Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.index = 0

    # -- token-stream helpers ----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "EOF":
            self.index += 1
        return token

    def check(self, kind: str, value=None) -> bool:
        token = self.current
        if token.kind != kind:
            return False
        return value is None or token.value == value

    def accept(self, kind: str, value=None) -> Optional[Token]:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value=None, context: str = "") -> Token:
        if self.check(kind, value):
            return self.advance()
        expected = value if value is not None else kind.lower()
        suffix = f" {context}" if context else ""
        raise EstelleSyntaxError(
            f"expected {expected!r}{suffix}, got {self.current.describe()}",
            self.current.location,
        )

    def expect_ident(self, context: str) -> Token:
        if self.check("IDENT"):
            return self.advance()
        raise EstelleSyntaxError(
            f"expected {context}, got {self.current.describe()}",
            self.current.location,
        )

    # -- top level ----------------------------------------------------------------

    def parse_specification(self) -> ast.SpecificationNode:
        loc = self.expect("KW", "specification").location
        name = self.expect_ident("a specification name").value
        self.expect("OP", ";", context="after the specification name")
        node = ast.SpecificationNode(name=name, loc=loc)
        while True:
            if self.check("KW", "channel"):
                node.channels.append(self._parse_channel())
            elif self.check("KW", "module"):
                node.headers.append(self._parse_module_header())
            elif self.check("KW", "body"):
                node.bodies.append(self._parse_body())
            elif self.check("KW", "modvar"):
                node.instances.append(self._parse_instance())
            elif self.check("KW", "connect"):
                node.connections.append(self._parse_connect())
            elif self.check("KW", "end"):
                self.advance()
                self.expect("OP", ".", context="to terminate the specification")
                break
            elif self.check("KW", "init") or self.check("KW", "release"):
                keyword = self.current
                raise EstelleSyntaxError(
                    f"{keyword.value!r} is a statement and is only allowed inside "
                    "a transition (or initialize) action block, not at the "
                    "specification's top level",
                    keyword.location,
                )
            else:
                raise EstelleSyntaxError(
                    "expected a declaration (channel, module, body, modvar, "
                    f"connect) or 'end.', got {self.current.describe()}",
                    self.current.location,
                )
        if not self.check("EOF"):
            raise EstelleSyntaxError(
                f"unexpected input after 'end.': {self.current.describe()}",
                self.current.location,
            )
        return node

    # -- channel ------------------------------------------------------------------

    def _parse_channel(self) -> ast.ChannelNode:
        loc = self.advance().location  # 'channel'
        name = self.expect_ident("a channel name").value
        self.expect("OP", "(", context="before the channel's role list")
        role_a = self.expect_ident("a role name")
        self.expect("OP", ",", context="between the two channel roles")
        role_b = self.expect_ident("a role name")
        self.expect("OP", ")", context="after the channel's role list")
        self.expect("OP", ";", context="after the channel header")

        declared = {role_a.value: role_a.location, role_b.value: role_b.location}
        if len(declared) != 2:
            raise EstelleSyntaxError(
                f"channel {name!r} declares role {role_a.value!r} twice",
                role_b.location,
            )
        interactions = {role_a.value: [], role_b.value: []}
        while self.check("KW", "by"):
            by_loc = self.advance().location
            role = self.expect_ident("a role name after 'by'")
            if role.value not in interactions:
                raise EstelleSyntaxError(
                    f"channel {name!r} has no role {role.value!r} "
                    f"(roles: {sorted(interactions)})",
                    role.location,
                )
            self.expect("OP", ":", context="after the role name")
            interactions[role.value].extend(self._parse_ident_list("an interaction name"))
            self.expect("OP", ";", context="after the interaction list")
            del by_loc
        self.expect("KW", "end", context="to close the channel definition")
        self.expect("OP", ";", context="after 'end' of the channel definition")
        roles = tuple(
            ast.RoleNode(role_name, tuple(interactions[role_name]), declared[role_name])
            for role_name in (role_a.value, role_b.value)
        )
        return ast.ChannelNode(name=name, roles=roles, loc=loc)

    def _parse_ident_list(self, what: str) -> List[str]:
        names = [self.expect_ident(what).value]
        while self.accept("OP", ","):
            names.append(self.expect_ident(what).value)
        return names

    # -- module header ------------------------------------------------------------

    def _parse_module_header(self) -> ast.ModuleHeaderNode:
        loc = self.advance().location  # 'module'
        name = self.expect_ident("a module name").value
        if self.current.kind == "KW" and self.current.value in _ATTRIBUTES:
            attribute = self.advance().value
        else:
            raise EstelleSyntaxError(
                "expected a module attribute (systemprocess, systemactivity, "
                f"process, activity), got {self.current.describe()}",
                self.current.location,
            )
        self.expect("OP", ";", context="after the module attribute")
        ips: List[ast.IPDeclNode] = []
        while self.check("KW", "ip"):
            ip_loc = self.advance().location
            ip_name = self.expect_ident("an interaction-point name").value
            self.expect("OP", ":", context="after the interaction-point name")
            low: Optional[int] = None
            high: Optional[int] = None
            if self.check("KW", "array"):
                # ip name : array [ low .. high ] of Channel ( role ) ;
                self.advance()
                self.expect("OP", "[", context="after 'array'")
                low = self._parse_array_bound("lower")
                self.expect("OP", "..", context="between the array bounds")
                high = self._parse_array_bound("upper")
                self.expect("OP", "]", context="after the array bounds")
                self.expect("KW", "of", context="after the array bounds")
            channel = self.expect_ident("a channel name").value
            self.expect("OP", "(", context="before the interaction point's role")
            role = self.expect_ident("a role name").value
            self.expect("OP", ")", context="after the interaction point's role")
            self.expect("OP", ";", context="after the interaction-point declaration")
            ips.append(
                ast.IPDeclNode(
                    name=ip_name,
                    channel=channel,
                    role=role,
                    loc=ip_loc,
                    low=low,
                    high=high,
                )
            )
        self.expect("KW", "end", context="to close the module header")
        self.expect("OP", ";", context="after 'end' of the module header")
        return ast.ModuleHeaderNode(name=name, attribute=attribute, ips=tuple(ips), loc=loc)

    def _parse_array_bound(self, which: str) -> int:
        token = self.expect("NUMBER", context=f"as the array's {which} bound")
        if not isinstance(token.value, int):
            raise EstelleSyntaxError(
                f"interaction-point array bounds must be integers, "
                f"got {token.value!r}",
                token.location,
            )
        return token.value

    def _parse_indexed_ip_name(self, context: str) -> str:
        """An interaction-point reference: ``name`` or ``name [ index ]``.

        Returns the composed spelling (``pts[2]``) used throughout the
        lowered runtime — identifiers cannot contain brackets, so the base
        name and index stay recoverable (see ``lower.split_ip_reference``).
        """
        name_token = self.expect_ident(context)
        if not self.check("OP", "["):
            return name_token.value
        self.advance()
        index = self.expect("NUMBER", context="as the interaction-point index")
        if not isinstance(index.value, int):
            raise EstelleSyntaxError(
                f"interaction-point indices must be integer literals, "
                f"got {index.value!r}",
                index.location,
            )
        self.expect("OP", "]", context="after the interaction-point index")
        return f"{name_token.value}[{index.value}]"

    # -- body ---------------------------------------------------------------------

    def _parse_body(self) -> ast.BodyNode:
        loc = self.advance().location  # 'body'
        name = self.expect_ident("a body name").value
        self.expect("KW", "for", context="after the body name")
        header = self.expect_ident("the name of the module header").value
        self.expect("OP", ";", context="after the body header")

        states: List[Tuple[str, SourceLocation]] = []
        if self.check("KW", "state"):
            self.advance()
            token = self.expect_ident("a state name")
            states.append((token.value, token.location))
            while self.accept("OP", ","):
                token = self.expect_ident("a state name")
                states.append((token.value, token.location))
            self.expect("OP", ";", context="after the state list")

        initialize: Optional[ast.InitializeNode] = None
        if self.check("KW", "initialize"):
            init_loc = self.advance().location
            to_state = None
            if self.accept("KW", "to"):
                to_state = self.expect_ident("the initial state name").value
            statements = self._parse_block()
            self.expect("OP", ";", context="after the initialize block")
            initialize = ast.InitializeNode(
                to_state=to_state, statements=statements, loc=init_loc
            )

        transitions: List[ast.TransNode] = []
        while self.check("KW", "trans"):
            transitions.append(self._parse_trans())
        self.expect("KW", "end", context="to close the body")
        self.expect("OP", ";", context="after 'end' of the body")
        return ast.BodyNode(
            name=name,
            header=header,
            states=tuple(states),
            initialize=initialize,
            transitions=tuple(transitions),
            loc=loc,
        )

    def _parse_trans(self) -> ast.TransNode:
        loc = self.advance().location  # 'trans'
        from_states: Tuple[str, ...] = ()
        to_state: Optional[str] = None
        when: Optional[Tuple[str, str]] = None
        when_loc: Optional[SourceLocation] = None
        provided: Optional[ast.Expr] = None
        priority = 0
        delay = 0.0
        delay_max: Optional[float] = None
        cost = 1.0
        name: Optional[str] = None
        seen = set()

        def once(clause: str, location: SourceLocation) -> None:
            if clause in seen:
                raise EstelleSyntaxError(
                    f"duplicate {clause!r} clause in transition", location
                )
            seen.add(clause)

        while not self.check("KW", "begin"):
            token = self.current
            if token.kind != "KW":
                raise EstelleSyntaxError(
                    "expected a transition clause (from, to, when, provided, "
                    f"priority, delay, cost, name) or 'begin', got {token.describe()}",
                    token.location,
                )
            if token.value == "from":
                once("from", token.location)
                self.advance()
                if self.accept("KW", "any"):
                    from_states = ()
                else:
                    from_states = tuple(self._parse_ident_list("a state name"))
            elif token.value == "to":
                once("to", token.location)
                self.advance()
                to_state = self.expect_ident("a state name after 'to'").value
            elif token.value == "when":
                once("when", token.location)
                when_loc = self.advance().location
                ip_name = self._parse_indexed_ip_name(
                    "an interaction-point name after 'when'"
                )
                self.expect("OP", ".", context="between interaction point and interaction")
                interaction = self.expect_ident("an interaction name").value
                when = (ip_name, interaction)
            elif token.value == "provided":
                once("provided", token.location)
                self.advance()
                provided = self._parse_expr()
            elif token.value == "priority":
                once("priority", token.location)
                self.advance()
                negative = self.accept("OP", "-") is not None
                number = self.expect("NUMBER", context="after 'priority'")
                if not isinstance(number.value, int):
                    raise EstelleSyntaxError(
                        "priority must be an integer", number.location
                    )
                priority = -number.value if negative else number.value
            elif token.value == "delay":
                once("delay", token.location)
                self.advance()
                if self.accept("OP", "("):
                    # The paper's pair form: delay (min, max).  The
                    # nondeterministic window is resolved deterministically
                    # to the lower bound at lowering time (see
                    # repro.estelle.transition.transition).
                    delay = float(
                        self.expect(
                            "NUMBER", context="as the delay lower bound"
                        ).value
                    )
                    self.expect("OP", ",", context="between the delay bounds")
                    delay_max = float(
                        self.expect(
                            "NUMBER", context="as the delay upper bound"
                        ).value
                    )
                    self.expect("OP", ")", context="after the delay bounds")
                else:
                    delay = float(self.expect("NUMBER", context="after 'delay'").value)
            elif token.value == "cost":
                once("cost", token.location)
                self.advance()
                cost = float(self.expect("NUMBER", context="after 'cost'").value)
            elif token.value == "name":
                once("name", token.location)
                self.advance()
                name = self.expect_ident("a transition name after 'name'").value
            else:
                raise EstelleSyntaxError(
                    f"unexpected keyword {token.value!r} in transition clauses",
                    token.location,
                )
        statements = self._parse_block()
        self.expect("OP", ";", context="after the transition's action block")
        return ast.TransNode(
            from_states=from_states,
            to_state=to_state,
            when=when,
            provided=provided,
            priority=priority,
            delay=delay,
            delay_max=delay_max,
            cost=cost,
            name=name,
            statements=statements,
            loc=loc,
            when_loc=when_loc,
        )

    # -- instances and connections ---------------------------------------------------

    def _parse_instance(self) -> ast.InstanceNode:
        loc = self.advance().location  # 'modvar'
        name = self.expect_ident("an instance name").value
        self.expect("OP", ":", context="after the instance name")
        body = self.expect_ident("a body name").value
        self.expect("KW", "at", context="after the body name")
        location = self.expect("STRING", context="a machine name after 'at'").value
        variables: List[Tuple[str, ast.Expr]] = []
        if self.accept("KW", "with"):
            while True:
                var = self.expect_ident("a variable name").value
                self.expect("OP", ":=", context="after the variable name")
                variables.append((var, self._parse_expr()))
                if not self.accept("OP", ","):
                    break
        self.expect("OP", ";", context="after the modvar declaration")
        return ast.InstanceNode(
            name=name, body=body, location=location, variables=tuple(variables), loc=loc
        )

    def _parse_connect(self) -> ast.ConnectNode:
        loc = self.advance().location  # 'connect'
        a = self._parse_ip_ref()
        self.expect("KW", "to", context="between the two connection endpoints")
        b = self._parse_ip_ref()
        self.expect("OP", ";", context="after the connect statement")
        return ast.ConnectNode(a=a, b=b, loc=loc)

    def _parse_ip_ref(self) -> Tuple[str, str]:
        instance = self.expect_ident("an instance name").value
        self.expect("OP", ".", context="between instance and interaction point")
        ip_name = self._parse_indexed_ip_name("an interaction-point name")
        return (instance, ip_name)

    # -- statements ----------------------------------------------------------------

    def _parse_block(self) -> Tuple[ast.Stmt, ...]:
        self.expect("KW", "begin", context="to open the action block")
        statements = self._parse_statements(("end",))
        self.expect("KW", "end", context="to close the action block")
        return statements

    def _parse_statements(self, terminators: Tuple[str, ...]) -> Tuple[ast.Stmt, ...]:
        statements: List[ast.Stmt] = []
        while True:
            while self.accept("OP", ";"):
                pass
            if self.current.kind == "KW" and self.current.value in terminators:
                return tuple(statements)
            statements.append(self._parse_statement())
            if not self.check("OP", ";"):
                if self.current.kind == "KW" and self.current.value in terminators:
                    return tuple(statements)
                raise EstelleSyntaxError(
                    f"expected ';' between statements, got {self.current.describe()}",
                    self.current.location,
                )

    def _parse_statement(self) -> ast.Stmt:
        token = self.current
        if token.kind == "KW" and token.value == "output":
            return self._parse_output()
        if token.kind == "KW" and token.value == "if":
            return self._parse_if()
        if token.kind == "KW" and token.value == "init":
            return self._parse_init()
        if token.kind == "KW" and token.value == "release":
            return self._parse_release()
        if token.kind == "IDENT":
            target = self.advance()
            self.expect("OP", ":=", context="after the assignment target")
            expr = self._parse_expr()
            return ast.Assign(loc=target.location, target=target.value, expr=expr)
        raise EstelleSyntaxError(
            "expected a statement (assignment, output, if, init, release), "
            f"got {token.describe()}",
            token.location,
        )

    def _parse_init(self) -> ast.InitStmt:
        loc = self.advance().location  # 'init'
        var = self.expect_ident("a module-variable name after 'init'").value
        self.expect("KW", "with", context="after the init variable")
        body = self.expect_ident("a body name after 'with'").value
        params: List[Tuple[str, ast.Expr]] = []
        if self.accept("OP", "("):
            if not self.check("OP", ")"):
                while True:
                    param = self.expect_ident("a variable name").value
                    self.expect("OP", ":=", context="after the variable name")
                    params.append((param, self._parse_expr()))
                    if not self.accept("OP", ","):
                        break
            self.expect("OP", ")", context="after the init parameter list")
        return ast.InitStmt(loc=loc, var=var, body=body, params=tuple(params))

    def _parse_release(self) -> ast.ReleaseStmt:
        loc = self.advance().location  # 'release'
        var = self.expect_ident("a module-variable name after 'release'").value
        return ast.ReleaseStmt(loc=loc, var=var)

    def _parse_output(self) -> ast.OutputStmt:
        loc = self.advance().location  # 'output'
        ip_name = self._parse_indexed_ip_name(
            "an interaction-point name after 'output'"
        )
        self.expect("OP", ".", context="between interaction point and interaction")
        interaction = self.expect_ident("an interaction name").value
        params: List[Tuple[str, ast.Expr]] = []
        if self.accept("OP", "("):
            if not self.check("OP", ")"):
                while True:
                    param = self.expect_ident("a parameter name").value
                    self.expect("OP", ":=", context="after the parameter name")
                    params.append((param, self._parse_expr()))
                    if not self.accept("OP", ","):
                        break
            self.expect("OP", ")", context="after the output parameter list")
        return ast.OutputStmt(
            loc=loc, ip=ip_name, interaction=interaction, params=tuple(params)
        )

    def _parse_if(self) -> ast.IfStmt:
        loc = self.advance().location  # 'if'
        condition = self._parse_expr()
        self.expect("KW", "then", context="after the if condition")
        then_branch = self._parse_statements(("else", "end"))
        else_branch: Tuple[ast.Stmt, ...] = ()
        if self.accept("KW", "else"):
            else_branch = self._parse_statements(("end",))
        self.expect("KW", "end", context="to close the if statement")
        return ast.IfStmt(
            loc=loc, condition=condition, then_branch=then_branch, else_branch=else_branch
        )

    # -- expressions ----------------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self.check("KW", "or"):
            loc = self.advance().location
            right = self._parse_and()
            left = ast.Binary(loc=loc, op="or", left=left, right=right)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self.check("KW", "and"):
            loc = self.advance().location
            right = self._parse_not()
            left = ast.Binary(loc=loc, op="and", left=left, right=right)
        return left

    def _parse_not(self) -> ast.Expr:
        if self.check("KW", "not"):
            loc = self.advance().location
            return ast.Unary(loc=loc, op="not", operand=self._parse_not())
        if self.current.kind == "KW" and self.current.value in ("exist", "forall"):
            return self._parse_quantified()
        return self._parse_comparison()

    def _parse_quantified(self) -> ast.Quantified:
        token = self.advance()  # 'exist' | 'forall'
        var = self.expect_ident(f"a bound-variable name after {token.value!r}").value
        self.expect("OP", ":", context="after the quantifier's bound variable")
        low = self._parse_additive()
        self.expect("OP", "..", context="between the quantifier's domain bounds")
        high = self._parse_additive()
        self.expect("KW", "suchthat", context="after the quantifier's domain")
        body = self._parse_expr()
        return ast.Quantified(
            loc=token.location, kind=token.value, var=var, low=low, high=high, body=body
        )

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        if self.current.kind == "OP" and self.current.value in _COMPARISON_OPS:
            token = self.advance()
            right = self._parse_additive()
            return ast.Binary(loc=token.location, op=token.value, left=left, right=right)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_term()
        while self.current.kind == "OP" and self.current.value in _ADDITIVE_OPS:
            token = self.advance()
            right = self._parse_term()
            left = ast.Binary(loc=token.location, op=token.value, left=left, right=right)
        return left

    def _parse_term(self) -> ast.Expr:
        left = self._parse_factor()
        while (
            self.current.kind == "OP" and self.current.value in _MULTIPLICATIVE_OPS
        ) or (self.current.kind == "KW" and self.current.value in ("div", "mod")):
            token = self.advance()
            right = self._parse_factor()
            left = ast.Binary(loc=token.location, op=token.value, left=left, right=right)
        return left

    def _parse_factor(self) -> ast.Expr:
        if self.check("OP", "-"):
            loc = self.advance().location
            return ast.Unary(loc=loc, op="-", operand=self._parse_factor())
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind == "NUMBER" or token.kind == "STRING":
            self.advance()
            return ast.Literal(loc=token.location, value=token.value)
        if token.kind == "KW" and token.value in ("true", "false"):
            self.advance()
            return ast.Literal(loc=token.location, value=token.value == "true")
        if self.accept("OP", "("):
            expr = self._parse_expr()
            self.expect("OP", ")", context="to close the parenthesised expression")
            return expr
        if token.kind == "IDENT":
            self.advance()
            if self.accept("OP", "."):
                field = self.expect_ident("a parameter name after '.'")
                if token.value != "msg":
                    raise EstelleSyntaxError(
                        f"dotted access is only supported on 'msg' "
                        f"(the matched interaction), not {token.value!r}",
                        token.location,
                    )
                return ast.ParamRef(loc=token.location, param=field.value)
            return ast.Name(loc=token.location, ident=token.value)
        raise EstelleSyntaxError(
            f"expected an expression, got {token.describe()}", token.location
        )


def parse_source(source: str, filename: Optional[str] = None) -> ast.SpecificationNode:
    """Parse Estelle source text into a :class:`SpecificationNode`."""
    return Parser(tokenize(source, filename)).parse_specification()
