"""Source-located diagnostics for the Estelle text front-end.

An Estelle compiler reports two classes of static errors: *syntax* errors
(the token stream does not match the grammar) and *static-semantic* errors
(the parse tree is well-formed but violates a semantic rule — an undeclared
state, a duplicate module name, an interaction a channel role may not send).
Both carry a :class:`SourceLocation` so tooling and tests can point at the
offending line and column of the ``.estelle`` source.

The exceptions extend the existing :mod:`repro.estelle.errors` hierarchy so
callers that already catch :class:`~repro.estelle.errors.EstelleError` (or
:class:`~repro.estelle.errors.SpecificationError` for semantic problems)
keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import EstelleError, SpecificationError


@dataclass(frozen=True)
class SourceLocation:
    """A position in an Estelle source text (1-based line and column)."""

    line: int
    column: int
    filename: Optional[str] = None

    def __str__(self) -> str:
        prefix = f"{self.filename}:" if self.filename else ""
        return f"{prefix}line {self.line}, column {self.column}"


class EstelleFrontendError(EstelleError):
    """Base class for front-end diagnostics; carries the source location.

    ``line`` and ``column`` are exposed directly (in addition to
    ``location``) because that is what tests and editor integrations want to
    assert against.
    """

    def __init__(self, message: str, location: Optional[SourceLocation] = None):
        self.bare_message = message
        self.location = location
        if location is not None:
            message = f"{location}: {message}"
        super().__init__(message)

    @property
    def line(self) -> Optional[int]:
        return self.location.line if self.location else None

    @property
    def column(self) -> Optional[int]:
        return self.location.column if self.location else None


class EstelleSyntaxError(EstelleFrontendError):
    """The source text does not match the supported Estelle grammar."""


class EstelleSemanticError(EstelleFrontendError, SpecificationError):
    """A well-formed parse tree violates a static-semantic rule.

    Also a :class:`~repro.estelle.errors.SpecificationError`, because these
    are exactly the violations the specification-level validation reports for
    hand-built module trees.
    """
