"""Tokenizer for the Estelle text front-end.

Produces a flat list of :class:`Token` objects with 1-based line/column
positions.  Lexical conventions follow ISO 9074's Pascal heritage:

* keywords are case-insensitive (``TRANS`` == ``trans``); identifiers keep
  the case they were written in,
* comments are ``{ ... }`` or ``(* ... *)`` and may span lines,
* strings use single or double quotes with ``\\``-escapes,
* numbers are unsigned integer or decimal literals, optionally with a
  Pascal-style exponent (``1e-3``, ``2.5E6``); signs are handled by the
  expression grammar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from .errors import EstelleSyntaxError, SourceLocation

#: Reserved words of the supported subset (matched case-insensitively).
KEYWORDS = frozenset(
    {
        "specification",
        "channel",
        "by",
        "end",
        "module",
        "body",
        "for",
        "ip",
        "state",
        "initialize",
        "to",
        "trans",
        "from",
        "when",
        "provided",
        "priority",
        "delay",
        "cost",
        "name",
        "begin",
        "output",
        "if",
        "then",
        "else",
        "any",
        "modvar",
        "at",
        "with",
        "connect",
        "init",
        "release",
        "array",
        "of",
        "exist",
        "forall",
        "suchthat",
        "and",
        "or",
        "not",
        "div",
        "mod",
        "true",
        "false",
        "systemprocess",
        "systemactivity",
        "process",
        "activity",
    }
)

#: Multi-character operators first so maximal munch works.
_OPERATORS = (":=", "<=", ">=", "<>", "..", ";", ":", ",", ".", "(", ")", "[", "]", "=", "<", ">", "+", "-", "*", "/")

_ESCAPES = {"n": "\n", "t": "\t", "\\": "\\", "'": "'", '"': '"'}


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is one of ``KW`` (keyword, ``value`` lower-cased), ``IDENT``,
    ``NUMBER`` (``value`` is int or float), ``STRING``, ``OP`` or ``EOF``.
    """

    kind: str
    value: Any
    location: SourceLocation

    def describe(self) -> str:
        if self.kind == "EOF":
            return "end of input"
        return repr(str(self.value))


class _Scanner:
    def __init__(self, source: str, filename: Optional[str] = None):
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    def location(self) -> SourceLocation:
        return SourceLocation(self.line, self.column, self.filename)

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def advance(self) -> str:
        ch = self.source[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return ch

    def at_end(self) -> bool:
        return self.pos >= len(self.source)


def tokenize(source: str, filename: Optional[str] = None) -> List[Token]:
    """Tokenize ``source``; raises :class:`EstelleSyntaxError` on bad input."""
    scanner = _Scanner(source, filename)
    tokens: List[Token] = []
    while True:
        _skip_trivia(scanner)
        if scanner.at_end():
            tokens.append(Token("EOF", None, scanner.location()))
            return tokens
        loc = scanner.location()
        ch = scanner.peek()
        if ch.isalpha() or ch == "_":
            tokens.append(_lex_word(scanner, loc))
        elif ch.isdigit():
            tokens.append(_lex_number(scanner, loc))
        elif ch in ("'", '"'):
            tokens.append(_lex_string(scanner, loc))
        else:
            tokens.append(_lex_operator(scanner, loc))


def _skip_trivia(scanner: _Scanner) -> None:
    while not scanner.at_end():
        ch = scanner.peek()
        if ch.isspace():
            scanner.advance()
        elif ch == "{":
            _skip_comment(scanner, close="}")
        elif ch == "(" and scanner.peek(1) == "*":
            _skip_comment(scanner, close="*)")
        else:
            return


def _skip_comment(scanner: _Scanner, close: str) -> None:
    loc = scanner.location()
    scanner.advance()
    if close == "*)":
        scanner.advance()  # the '*' of '(*'
    while not scanner.at_end():
        if close == "}" and scanner.peek() == "}":
            scanner.advance()
            return
        if close == "*)" and scanner.peek() == "*" and scanner.peek(1) == ")":
            scanner.advance()
            scanner.advance()
            return
        scanner.advance()
    raise EstelleSyntaxError("unterminated comment", loc)


def _lex_word(scanner: _Scanner, loc: SourceLocation) -> Token:
    chars: List[str] = []
    while not scanner.at_end() and (scanner.peek().isalnum() or scanner.peek() == "_"):
        chars.append(scanner.advance())
    word = "".join(chars)
    if word.lower() in KEYWORDS:
        return Token("KW", word.lower(), loc)
    return Token("IDENT", word, loc)


def _lex_number(scanner: _Scanner, loc: SourceLocation) -> Token:
    chars: List[str] = []
    is_float = False
    while not scanner.at_end() and scanner.peek().isdigit():
        chars.append(scanner.advance())
    # A fraction only when the dot is followed by a digit, so that the
    # specification terminator "end." never glues onto a preceding number.
    if scanner.peek() == "." and scanner.peek(1).isdigit():
        is_float = True
        chars.append(scanner.advance())
        while not scanner.at_end() and scanner.peek().isdigit():
            chars.append(scanner.advance())
    # Pascal-style exponent: 1e-3, 2.5E6.  Only entered when the 'e' is
    # followed by a digit or a sign — an 'e' followed by a letter stays a
    # separate word (so "2else" keeps lexing as NUMBER(2) KW(else)); a sign
    # with no digits after it is a malformed exponent and gets a located
    # diagnostic instead of the baffling NUMBER-then-IDENT downstream error.
    if scanner.peek() in ("e", "E") and (
        scanner.peek(1).isdigit() or scanner.peek(1) in ("+", "-")
    ):
        exponent_loc = scanner.location()
        is_float = True
        chars.append(scanner.advance())  # the 'e' / 'E'
        if scanner.peek() in ("+", "-"):
            chars.append(scanner.advance())
        if not scanner.peek().isdigit():
            raise EstelleSyntaxError(
                "malformed exponent in numeric literal: expected digits after "
                f"{''.join(chars)!r}",
                exponent_loc,
            )
        while not scanner.at_end() and scanner.peek().isdigit():
            chars.append(scanner.advance())
    if is_float:
        return Token("NUMBER", float("".join(chars)), loc)
    return Token("NUMBER", int("".join(chars)), loc)


def _lex_string(scanner: _Scanner, loc: SourceLocation) -> Token:
    quote = scanner.advance()
    chars: List[str] = []
    while True:
        if scanner.at_end() or scanner.peek() == "\n":
            raise EstelleSyntaxError("unterminated string literal", loc)
        ch = scanner.advance()
        if ch == quote:
            return Token("STRING", "".join(chars), loc)
        if ch == "\\":
            if scanner.at_end():
                raise EstelleSyntaxError("unterminated string literal", loc)
            escape = scanner.advance()
            chars.append(_ESCAPES.get(escape, escape))
        else:
            chars.append(ch)


def _lex_operator(scanner: _Scanner, loc: SourceLocation) -> Token:
    for op in _OPERATORS:
        if scanner.source.startswith(op, scanner.pos):
            for _ in op:
                scanner.advance()
            return Token("OP", op, loc)
    raise EstelleSyntaxError(f"unexpected character {scanner.peek()!r}", loc)
