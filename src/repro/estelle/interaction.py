"""Interactions, channels and interaction points.

Estelle modules communicate exclusively by exchanging *interactions*
(typed, parameterised messages) over *channels*.  A channel definition names
two *roles* and, for each role, the set of interactions that a module playing
that role may send.  A module exposes *interaction points* (IPs); each IP is
typed by a channel and a role, and two IPs can be connected when they refer to
the same channel with complementary roles.

The classes here are deliberately plain data classes: the scheduling and cost
semantics live in :mod:`repro.runtime`, keeping the specification layer purely
descriptive, in the spirit of the paper's "formal description first" method.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, Mapping, Optional, Tuple

from .errors import ChannelError

_interaction_sequence = itertools.count(1)


@dataclass(frozen=True)
class Interaction:
    """A single message exchanged between two interaction points.

    Parameters
    ----------
    name:
        The interaction (message) type name, e.g. ``"MConnectRequest"``.
    params:
        Immutable mapping of parameter name to value.  Values are arbitrary
        Python objects; when an interaction crosses the presentation layer the
        values are ASN.1-encodable structures.
    """

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)
    uid: int = field(default_factory=lambda: next(_interaction_sequence))

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))

    def param(self, key: str, default: Any = None) -> Any:
        """Return a single parameter value (``default`` when absent)."""
        return self.params.get(key, default)

    def with_params(self, **updates: Any) -> "Interaction":
        """Return a copy of this interaction with some parameters replaced."""
        merged = dict(self.params)
        merged.update(updates)
        return Interaction(self.name, merged)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interaction({self.name!r}, {dict(self.params)!r})"


class ChannelRole:
    """One of the two roles of a channel definition."""

    def __init__(self, channel: "Channel", name: str, interactions: Iterable[str]):
        self.channel = channel
        self.name = name
        self.interactions = frozenset(interactions)

    def allows(self, interaction_name: str) -> bool:
        """Whether a module playing this role may *send* ``interaction_name``."""
        return interaction_name in self.interactions

    @property
    def peer(self) -> "ChannelRole":
        """The complementary role of the same channel."""
        return self.channel.peer_of(self)

    def __repr__(self) -> str:  # pragma: no cover
        return f"ChannelRole({self.channel.name}.{self.name})"


class Channel:
    """An Estelle channel definition.

    A channel has exactly two roles.  Each role lists the interactions the
    role is allowed to *send*; the peer role receives them.  Example::

        MCAM_SERVICE = Channel(
            "McamService",
            user={"MConnectRequest", "MPlayRequest"},
            provider={"MConnectConfirm", "MPlayConfirm"},
        )
    """

    def __init__(self, name: str, **roles: Iterable[str]):
        if len(roles) != 2:
            raise ChannelError(
                f"channel {name!r} must define exactly two roles, got {sorted(roles)}"
            )
        self.name = name
        self._roles: Dict[str, ChannelRole] = {
            role_name: ChannelRole(self, role_name, interactions)
            for role_name, interactions in roles.items()
        }

    def role(self, name: str) -> ChannelRole:
        """Look up a role by name."""
        try:
            return self._roles[name]
        except KeyError as exc:
            raise ChannelError(
                f"channel {self.name!r} has no role {name!r}; "
                f"roles are {sorted(self._roles)}"
            ) from exc

    def roles(self) -> Tuple[ChannelRole, ChannelRole]:
        """Return both roles (declaration order)."""
        values = tuple(self._roles.values())
        return values[0], values[1]

    def peer_of(self, role: ChannelRole) -> ChannelRole:
        """Return the role complementary to ``role``."""
        first, second = self.roles()
        if role is first:
            return second
        if role is second:
            return first
        raise ChannelError(f"role {role!r} does not belong to channel {self.name!r}")

    def all_interactions(self) -> frozenset:
        """Every interaction name either role may send."""
        first, second = self.roles()
        return first.interactions | second.interactions

    def __repr__(self) -> str:  # pragma: no cover
        return f"Channel({self.name!r})"


class InteractionPoint:
    """An interaction point owned by a module instance.

    The IP holds the inbound FIFO queue (interactions received from the peer
    but not yet consumed by a transition) as required by Estelle's
    individual-queue discipline.
    """

    def __init__(self, owner: "Any", name: str, role: ChannelRole):
        self.owner = owner
        self.name = name
        self.role = role
        self.peer: Optional["InteractionPoint"] = None
        self.queue: Deque[Interaction] = deque()
        # Count of every interaction ever enqueued; used by the runtime's
        # metrics and by tests asserting FIFO behaviour.
        self.received_count = 0
        self.sent_count = 0

    # -- connection management -------------------------------------------------

    @property
    def connected(self) -> bool:
        return self.peer is not None

    def connect_to(self, other: "InteractionPoint") -> None:
        """Bidirectionally connect this IP with ``other``.

        Both IPs must be unconnected, belong to the same channel and play
        complementary roles.
        """
        if self.connected or other.connected:
            raise ChannelError(
                f"cannot connect {self.full_name} to {other.full_name}: "
                "one of the interaction points is already connected"
            )
        if self.role.channel is not other.role.channel:
            raise ChannelError(
                f"cannot connect {self.full_name} to {other.full_name}: "
                f"different channels ({self.role.channel.name} vs {other.role.channel.name})"
            )
        if self.role is other.role:
            raise ChannelError(
                f"cannot connect {self.full_name} to {other.full_name}: "
                f"both ends play role {self.role.name!r}; roles must be complementary"
            )
        self.peer = other
        other.peer = self

    def disconnect(self) -> None:
        """Remove the connection (both directions); queues are preserved."""
        if self.peer is not None:
            self.peer.peer = None
            self.peer = None

    # -- message exchange -------------------------------------------------------

    def output(self, interaction: Interaction) -> None:
        """Send ``interaction`` to the peer IP's queue.

        Raises :class:`ChannelError` when the IP is unconnected or the role
        does not permit sending this interaction type.
        """
        if not self.role.allows(interaction.name):
            raise ChannelError(
                f"{self.full_name} (role {self.role.name!r} of channel "
                f"{self.role.channel.name!r}) may not send {interaction.name!r}"
            )
        if self.peer is None:
            raise ChannelError(f"{self.full_name} is not connected; cannot output")
        self.peer.enqueue(interaction)
        self.sent_count += 1

    def enqueue(self, interaction: Interaction) -> None:
        """Place an interaction in this IP's inbound queue (FIFO)."""
        self.queue.append(interaction)
        self.received_count += 1
        hook = getattr(self.owner, "_dirty_hook", None)
        if hook is not None:
            # A new queue head (or pending count) can change the owner's
            # enabled transitions / external readiness.
            hook(self.owner)

    def head(self) -> Optional[Interaction]:
        """Peek the oldest queued interaction without removing it."""
        return self.queue[0] if self.queue else None

    def consume(self) -> Interaction:
        """Remove and return the oldest queued interaction."""
        if not self.queue:
            raise ChannelError(f"{self.full_name}: consume() on an empty queue")
        interaction = self.queue.popleft()
        hook = getattr(self.owner, "_dirty_hook", None)
        if hook is not None:
            hook(self.owner)
        return interaction

    def pending(self) -> int:
        """Number of interactions waiting in the inbound queue."""
        return len(self.queue)

    @property
    def full_name(self) -> str:
        owner_name = getattr(self.owner, "path", None) or getattr(
            self.owner, "name", repr(self.owner)
        )
        return f"{owner_name}.{self.name}"

    def __repr__(self) -> str:  # pragma: no cover
        return f"InteractionPoint({self.full_name}, queued={len(self.queue)})"


@dataclass(frozen=True)
class IPDeclaration:
    """Declarative description of an interaction point on a module class."""

    name: str
    channel: Channel
    role: str
    # An "array" of IPs (Estelle: ip name : channel(role) array) is modelled
    # by letting the module create indexed IPs at runtime.
    array: bool = False

    def instantiate(self, owner: Any, index: Optional[int] = None) -> InteractionPoint:
        ip_name = self.name if index is None else f"{self.name}[{index}]"
        return InteractionPoint(owner, ip_name, self.channel.role(self.role))
