"""F3 — Figure 3: mapping MCAM onto Estelle modules.

Figure 3 shows how an MCAM instance maps onto Estelle modules: the MCA is
specified fully in Estelle (header and body), the DUA / SPA(SUA) / ECA(EUA)
modules only declare their interfaces in Estelle with hand-written bodies,
the application interface sits above the MCA, and the presentation interface
(ISODE or generated presentation/session) sits below it.  The benchmark
builds the specification, validates the Estelle static semantics and reports
the module inventory with its Estelle-vs-external split.
"""

from __future__ import annotations

import pytest

from repro.harness import ExperimentRecord, print_experiment
from repro.mcam import build_mcam_specification, build_server_context


def build_specification(stack: str = "generated"):
    context = build_server_context()
    spec, broker = build_mcam_specification(context, clients=1, stack=stack)
    spec.validate()
    return spec


def reproduce_figure3():
    rows = []
    for stack in ("generated", "isode"):
        spec = build_specification(stack)
        entity = spec.find("server/entity-0")
        for name, module in entity.children.items():
            rows.append(
                {
                    "stack": stack,
                    "module": name,
                    "attribute": module.attribute.value,
                    "body": "external (C++-style)" if module.EXTERNAL else "Estelle",
                    "transitions": len(type(module).declared_transitions()),
                    "interaction points": len(module.ips),
                }
            )
    record = ExperimentRecord(
        experiment_id="F3",
        title="Mapping of MCAM to Estelle modules (server entity)",
        paper_claim="only the MCA is fully specified in Estelle; DUA/SUA/EUA and the ISODE "
        "interface have external (hand-written) bodies",
        rows=rows,
    )
    print_experiment(record)
    return rows


class TestFigure3:
    def test_module_mapping(self, benchmark):
        rows = benchmark.pedantic(reproduce_figure3, rounds=1, iterations=1)
        generated = {r["module"]: r for r in rows if r["stack"] == "generated"}
        isode = {r["module"]: r for r in rows if r["stack"] == "isode"}
        # The MCA is a genuine Estelle body with a non-trivial transition set.
        assert generated["mca"]["body"] == "Estelle"
        assert generated["mca"]["transitions"] >= 7
        # The three agents are interface-only (external bodies), as in Fig. 3.
        for agent in ("dua", "sua", "eua"):
            assert generated[agent]["body"].startswith("external")
            assert generated[agent]["transitions"] == 0
        # The generated variant carries presentation + session below the MCA,
        # the hand-coded variant a single ISODE interface module.
        assert "presentation" in generated and "session" in generated
        assert "isode" in isode and "presentation" not in isode

    def test_specification_builds_quickly(self, benchmark):
        spec = benchmark(build_specification)
        assert spec.module_count() >= 10
