"""E4 — Section 5.2: hard-coded vs table-driven transition selection.

*"As newer performance measurements show, the table-controlled approach is
significantly better than the hard-coded one when the number of transitions
becomes larger than four."*

The benchmark sweeps the number of transitions per module and reports the
per-selection cost of both strategies under the runtime's cost model, plus a
wall-clock micro-benchmark of selection on a large module.  The crossover
must sit in the paper's region (around four transitions).
"""

from __future__ import annotations

import pytest

from repro.estelle import Module, ModuleAttribute, transition
from repro.harness import ExperimentRecord, print_experiment
from repro.runtime import HardCodedDispatch, TableDrivenDispatch

TRANSITION_SWEEP = (2, 4, 6, 8, 12, 16)


def make_module(total_transitions: int):
    """A module with ``total_transitions`` spread round-robin over four states.

    No transition is ever enabled, so both strategies scan their full
    candidate list — the worst case the selection-cost comparison is about
    (the hard-coded function walks every transition, the table-driven one
    only the current state's row).
    """
    states = ("s0", "s1", "s2", "s3")
    namespace = {
        "ATTRIBUTE": ModuleAttribute.SYSTEMPROCESS,
        "STATES": states,
        "INITIAL_STATE": "s0",
    }
    for count in range(total_transitions):
        name = f"t{count}"

        def action(self):
            pass

        action.__name__ = name
        namespace[name] = transition(
            from_state=states[count % len(states)],
            provided=(lambda m: False),
            cost=1.0,
            name=name,
        )(action)
    cls = type(f"Synthetic{total_transitions}", (Module,), namespace)
    return cls(f"m{total_transitions}")


def reproduce_dispatch_crossover():
    hard = HardCodedDispatch(scan_cost=0.08)
    table = TableDrivenDispatch(scan_cost=0.08, table_overhead=0.25)
    record = ExperimentRecord(
        experiment_id="E4",
        title="Transition selection: hard-coded scan vs table-driven",
        paper_claim="table-driven is significantly better once a module has more than ~4 transitions",
    )
    costs = {}
    for total in TRANSITION_SWEEP:
        module = make_module(total)
        hard_cost = hard.select(module).cost
        table_cost = table.select(module).cost
        costs[total] = (hard_cost, table_cost)
        record.add_row(
            transitions=total,
            hard_coded_cost=round(hard_cost, 3),
            table_driven_cost=round(table_cost, 3),
            winner="table" if table_cost < hard_cost else "hard-coded",
        )
    print_experiment(record)
    return costs


class TestTransitionDispatch:
    def test_crossover_near_four_transitions(self, benchmark):
        costs = benchmark.pedantic(reproduce_dispatch_crossover, rounds=1, iterations=1)
        # Few transitions: hard-coded is at least as good.
        hard_small, table_small = costs[2]
        assert hard_small <= table_small
        # Beyond the paper's threshold the table wins, and the gap widens.
        for total in (6, 8, 12, 16):
            hard_cost, table_cost = costs[total]
            assert table_cost < hard_cost
        gap_8 = costs[8][0] - costs[8][1]
        gap_16 = costs[16][0] - costs[16][1]
        assert gap_16 > gap_8

    def test_wallclock_selection_large_module(self, benchmark):
        """Real (wall-clock) selection time on a 16-transition module, table-driven."""
        module = make_module(16)
        table = TableDrivenDispatch()
        result = benchmark(lambda: table.select(module))
        assert result.examined <= 4  # only the current state's row is scanned

    def test_wallclock_selection_hardcoded(self, benchmark):
        module = make_module(16)
        hard = HardCodedDispatch()
        result = benchmark(lambda: hard.select(module))
        assert result.examined == 16  # the full transition list is scanned
