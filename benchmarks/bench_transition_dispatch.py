"""E4 — Section 5.2: hard-coded vs table-driven vs generated selection.

*"As newer performance measurements show, the table-controlled approach is
significantly better than the hard-coded one when the number of transitions
becomes larger than four."*

The benchmark sweeps the number of transitions per module and reports the
per-selection cost of all three strategies under the runtime's cost model —
the paper's two alternatives plus the optimizing code generator's specialized
selection functions (:mod:`repro.runtime.codegen`) — plus wall-clock
micro-benchmarks of selection on a large module.  The hard-coded/table
crossover must sit in the paper's region (around four transitions), and the
generated strategy must be at least as fast as the table-driven one
everywhere.
"""

from __future__ import annotations

import pytest

from repro.estelle import Module, ModuleAttribute, transition
from repro.harness import ExperimentRecord, print_experiment
from repro.runtime import (
    GeneratedDispatchStrategy,
    HardCodedDispatch,
    TableDrivenDispatch,
)

TRANSITION_SWEEP = (2, 4, 6, 8, 12, 16)


def make_module(total_transitions: int):
    """A module with ``total_transitions`` spread round-robin over four states.

    No transition is ever enabled, so every strategy scans its full
    candidate list — the worst case the selection-cost comparison is about
    (the hard-coded function walks every transition, the table-driven and
    generated ones only the current state's row).
    """
    states = ("s0", "s1", "s2", "s3")
    namespace = {
        "ATTRIBUTE": ModuleAttribute.SYSTEMPROCESS,
        "STATES": states,
        "INITIAL_STATE": "s0",
    }
    for count in range(total_transitions):
        name = f"t{count}"

        def action(self):
            pass

        action.__name__ = name
        namespace[name] = transition(
            from_state=states[count % len(states)],
            provided=(lambda m: False),
            cost=1.0,
            name=name,
        )(action)
    cls = type(f"Synthetic{total_transitions}", (Module,), namespace)
    return cls(f"m{total_transitions}")


def dispatch_cost_sweep():
    """Per-selection modelled cost of the three strategies over the sweep.

    Returns a list of row dicts; consumed by ``benchmarks/run_all.py`` to
    record the perf trajectory in ``BENCH_results.json``.
    """
    hard = HardCodedDispatch(scan_cost=0.08)
    table = TableDrivenDispatch(scan_cost=0.08, table_overhead=0.25)
    generated = GeneratedDispatchStrategy(scan_cost=0.08, generated_overhead=0.15)
    rows = []
    for total in TRANSITION_SWEEP:
        module = make_module(total)
        rows.append(
            {
                "transitions": total,
                "hard-coded": hard.select(module).cost,
                "table-driven": table.select(module).cost,
                "generated": generated.select(module).cost,
            }
        )
    return rows


def reproduce_dispatch_crossover():
    record = ExperimentRecord(
        experiment_id="E4",
        title="Transition selection: hard-coded vs table-driven vs generated",
        paper_claim="table-driven is significantly better once a module has more than "
        "~4 transitions; generated specialized selection is never worse than the table",
    )
    costs = {}
    for row in dispatch_cost_sweep():
        total = row["transitions"]
        hard_cost = row["hard-coded"]
        table_cost = row["table-driven"]
        generated_cost = row["generated"]
        costs[total] = (hard_cost, table_cost, generated_cost)
        winner = min(
            (("hard-coded", hard_cost), ("table", table_cost), ("generated", generated_cost)),
            key=lambda item: item[1],
        )[0]
        record.add_row(
            transitions=total,
            hard_coded_cost=round(hard_cost, 3),
            table_driven_cost=round(table_cost, 3),
            generated_cost=round(generated_cost, 3),
            winner=winner,
        )
    print_experiment(record)
    return costs


class TestTransitionDispatch:
    def test_crossover_near_four_transitions(self, benchmark):
        costs = benchmark.pedantic(reproduce_dispatch_crossover, rounds=1, iterations=1)
        # Few transitions: hard-coded is at least as good as the table.
        hard_small, table_small, _ = costs[2]
        assert hard_small <= table_small
        # Beyond the paper's threshold the table wins, and the gap widens.
        for total in (6, 8, 12, 16):
            hard_cost, table_cost, _ = costs[total]
            assert table_cost < hard_cost
        gap_8 = costs[8][0] - costs[8][1]
        gap_16 = costs[16][0] - costs[16][1]
        assert gap_16 > gap_8
        # The generated strategy is at least as fast as table-driven at every
        # point of the sweep (same rows, cheaper specialized indexing).
        for total, (_, table_cost, generated_cost) in costs.items():
            assert generated_cost <= table_cost

    def test_wallclock_selection_large_module(self, benchmark):
        """Real (wall-clock) selection time on a 16-transition module, table-driven."""
        module = make_module(16)
        table = TableDrivenDispatch()
        result = benchmark(lambda: table.select(module))
        assert result.examined <= 4  # only the current state's row is scanned

    def test_wallclock_selection_hardcoded(self, benchmark):
        module = make_module(16)
        hard = HardCodedDispatch()
        result = benchmark(lambda: hard.select(module))
        assert result.examined == 16  # the full transition list is scanned

    def test_wallclock_selection_generated(self, benchmark):
        """Generated selection on the same module: specialized row code."""
        module = make_module(16)
        generated = GeneratedDispatchStrategy()
        generated.compiled_for(type(module))  # compile outside the timed loop
        result = benchmark(lambda: generated.select(module))
        assert result.examined <= 4  # never examines more than the table row
