"""E-RELAX — conservative lookahead: relaxing the global round barrier.

ISSUE 10's before/after: the multiprocess coordinator used to synchronise
*every* execution unit at *every* round — a select/fold/fire/barrier cycle
even for units whose subtrees provably cannot interact with the rest of the
specification within the round.  ``MultiprocessBackend(relax_barrier=True)``
lets such units (whole-root ownership, no delay transitions) run windows of
rounds locally and stream their round summaries to the coordinator, which
folds them asynchronously into the canonical trace.

The record keeps the backend's contract front and centre:

* **byte identity** — every workload's relaxed trace must equal the
  in-process reference (``traces_identical`` is a run_all.py gate);
* **barrier fraction** — barrier unit-rounds over total unit-rounds, read
  from the ``repro_parallel_{barrier,lookahead}_rounds_total`` counters.
  Lookahead-friendly workloads (``osi_transfer``, ``mcam_sessions``) must
  sit below 1.0 (gated); the delay-paced ``xmovie_stream`` control must
  sit at exactly 1.0 — relaxation must refuse workloads it cannot prove;
* **sync wall-clock** — the per-unit ``repro_parallel_unit_sync_seconds``
  totals and round-loop wall seconds next to a strict-barrier run of the
  same workload.  Wall-clock numbers are hardware-honest (recorded with a
  ``comparable`` flag, never gated): on a time-sliced CI host the strict
  and relaxed runs contend for the same cores.

``benchmarks/run_all.py`` consolidates this under ``barrier_relaxation``
in ``BENCH_results.json``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.obs import Observability
from repro.runtime import (
    GroupedMapping,
    InProcessBackend,
    MultiprocessBackend,
    SpecSource,
)
from repro.runtime.parallel import trace_diff
from repro.sim import Cluster, Machine

SPEC_DIR = Path(__file__).parent.parent / "examples" / "specs"

#: (workload name, machines, lookahead-friendly?) — friendly workloads are
#: gated on a barrier fraction < 1.0; the delay-paced control is pinned to
#: exactly 1.0 (the conservative fallback must hold the barrier).
WORKLOADS = (
    ("osi_transfer.estelle", ("ksr1", "client-ws-1"), True),
    ("mcam_sessions.estelle", ("ksr1", "client-ws-1", "client-ws-2"), True),
    ("mcam_core.estelle", ("ksr1", "client-ws-1"), True),
    ("xmovie_stream.estelle", ("ksr1", "client-ws-1"), False),
)


def build_cluster(machines, processors: int = 2) -> Cluster:
    cluster = Cluster()
    for name in machines:
        cluster.add(Machine(name, processors))
    return cluster


def _sync_seconds(obs: Observability) -> float:
    family = obs.registry.counter(
        "repro_parallel_unit_sync_seconds_total", "", labelnames=("unit",)
    )
    return sum(child.value for _, child in family.children())


def _counter(obs: Observability, name: str) -> float:
    return obs.registry.counter(name, "").value


def relaxation_cell(spec_name: str, machines, lookahead_friendly: bool) -> dict:
    source = SpecSource.from_estelle_file(SPEC_DIR / spec_name)
    reference = InProcessBackend().execute(
        source, build_cluster(machines), mapping=GroupedMapping()
    )

    relaxed_obs = Observability()
    relaxed = MultiprocessBackend(relax_barrier=True).execute(
        source, build_cluster(machines), mapping=GroupedMapping(), obs=relaxed_obs
    )
    barrier_rounds = _counter(relaxed_obs, "repro_parallel_barrier_rounds_total")
    lookahead_rounds = _counter(
        relaxed_obs, "repro_parallel_lookahead_rounds_total"
    )
    unit_rounds = barrier_rounds + lookahead_rounds

    strict_obs = Observability()
    strict = MultiprocessBackend().execute(
        source, build_cluster(machines), mapping=GroupedMapping(), obs=strict_obs
    )

    divergence = trace_diff(reference.trace, relaxed.trace)
    strict_divergence = trace_diff(reference.trace, strict.trace)
    return {
        "workload": f"examples/specs/{spec_name}",
        "lookahead_friendly": lookahead_friendly,
        "rounds": relaxed.rounds,
        "workers": relaxed.workers,
        "transitions_fired": relaxed.transitions_fired,
        "simulated_time": relaxed.simulated_time,
        "traces_identical": divergence is None and strict_divergence is None,
        "trace_divergence": divergence or strict_divergence,
        "barrier_unit_rounds": barrier_rounds,
        "lookahead_unit_rounds": lookahead_rounds,
        "barrier_round_fraction": (
            barrier_rounds / unit_rounds if unit_rounds else 1.0
        ),
        "relaxed_wall_s": relaxed.wall_seconds,
        "strict_wall_s": strict.wall_seconds,
        "relaxed_sync_s": _sync_seconds(relaxed_obs),
        "strict_sync_s": _sync_seconds(strict_obs),
    }


def barrier_relaxation_results() -> dict:
    """The E-RELAX record consolidated into ``BENCH_results.json``."""
    cells = [relaxation_cell(*workload) for workload in WORKLOADS]
    by_name = {cell["workload"].rsplit("/", 1)[-1]: cell for cell in cells}
    friendly = [cell for cell in cells if cell["lookahead_friendly"]]
    control = by_name["xmovie_stream.estelle"]
    return {
        "cells": cells,
        "traces_identical": all(cell["traces_identical"] for cell in cells),
        # The tentpole's observable effect: lookahead-friendly workloads
        # leave the barrier (fraction < 1.0) ...
        "lookahead_effective": all(
            cell["barrier_round_fraction"] < 1.0 for cell in friendly
        ),
        # ... and the delay-paced control never does (fraction == 1.0).
        "control_holds_barrier": (
            control["barrier_round_fraction"] == 1.0
            and control["lookahead_unit_rounds"] == 0
        ),
        # Hardware honesty: wall/sync deltas are recorded for the trend but
        # only meaningful when the host can actually run workers in
        # parallel; the byte-identity and fraction gates carry the claim.
        "sync_reduced_on_osi": (
            by_name["osi_transfer.estelle"]["relaxed_sync_s"]
            <= by_name["osi_transfer.estelle"]["strict_sync_s"]
        ),
    }


class TestBarrierRelaxationBench:
    def test_relaxation_record(self, benchmark):
        results = benchmark.pedantic(
            barrier_relaxation_results, rounds=1, iterations=1
        )
        bad = [
            cell["workload"]
            for cell in results["cells"]
            if not cell["traces_identical"]
        ]
        assert results["traces_identical"], bad
        assert results["lookahead_effective"], [
            (cell["workload"], cell["barrier_round_fraction"])
            for cell in results["cells"]
        ]
        assert results["control_holds_barrier"]
        for cell in results["cells"]:
            assert cell["rounds"] > 0
            assert cell["workers"] > 1

    def test_fully_relaxable_workload_never_hits_the_barrier(self, benchmark):
        cell = benchmark.pedantic(
            relaxation_cell,
            args=("osi_transfer.estelle", ("ksr1", "client-ws-1"), True),
            rounds=1,
            iterations=1,
        )
        # Every OSI unit wholly owns its delay-free subtree under
        # GroupedMapping: no unit-round synchronises globally.
        assert cell["traces_identical"], cell["trace_divergence"]
        assert cell["barrier_unit_rounds"] == 0
        assert cell["lookahead_unit_rounds"] == cell["rounds"] * cell["workers"]


if __name__ == "__main__":
    import json

    print(json.dumps(barrier_relaxation_results(), indent=2))
