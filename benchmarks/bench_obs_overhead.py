"""E-OBS — the observability layer's cost on the planner hot path.

ISSUE 7's second invariant: instrumentation must be *near-free*.  Disabled
(the default ``NULL_OBS``), every record point is an attribute load plus an
empty method call on a shared null singleton; enabled, the planner's per-
round cost is three counter increments against the registry — both must be
invisible next to the planning work itself.

The workload is the same sparse-activity regime as E-PLAN
(``bench_round_planner.py``): a large idle population with a couple of
driver modules firing every round, i.e. the case where per-round planning
is cheapest and a fixed instrumentation tax would show up most.  Each mode
plans and fires the identical schedule; timings are best-of-``REPEATS``
minima with the modes interleaved, which cancels warm-up and drift instead
of attributing them to whichever mode ran last.

Recorded in ``BENCH_results.json`` (``obs_overhead``); ``run_all.py`` and
the test below gate the enabled/disabled ratio at <= 1.05 on the planner
sweep — observability that costs more than 5% of the hot path does not get
to call itself zero-perturbation.
"""

from __future__ import annotations

import gc
import time

from repro.estelle import Module, ModuleAttribute, Specification, transition
from repro.harness import ExperimentRecord, print_experiment
from repro.obs import Observability, RingBufferSink
from repro.runtime import IncrementalRoundPlanner

#: system modules (each brings CHILDREN extra process modules).
SYSTEMS = 64
CHILDREN = 3
#: modules that fire each round; the rest idle (the planner's best case).
DRIVERS = 2
ROUNDS = 150
#: independent timed runs per mode; the minimum is the reported figure.
REPEATS = 5

#: the run_all.py gate: enabled may cost at most 5% over disabled.
OVERHEAD_CEILING = 1.05


def _has_token(m):
    return m.variables.get("tokens", 0) > 0


class SparseSystem(Module):
    ATTRIBUTE = ModuleAttribute.SYSTEMPROCESS
    STATES = ("run",)

    @transition(from_state="run", provided=_has_token, cost=1.0, name="tick")
    def tick(self):
        self.variables["tokens"] -= 1


class SparseChild(SparseSystem):
    ATTRIBUTE = ModuleAttribute.PROCESS


def build_sparse_spec(n_system: int = SYSTEMS, rounds: int = ROUNDS) -> Specification:
    spec = Specification(f"sparse-obs-{n_system}")
    for index in range(n_system):
        tokens = rounds + 1 if index < DRIVERS else 0
        system = spec.add_system_module(SparseSystem, f"s{index}", tokens=tokens)
        for child_index in range(CHILDREN):
            system.create_child(SparseChild, f"c{child_index}", tokens=0)
    spec.validate()
    return spec


def _observability_for(mode: str):
    if mode == "disabled":
        return None  # the planner substitutes the shared NULL_OBS
    obs = Observability()
    obs.events.attach(RingBufferSink())
    return obs


def timed_planner_run(mode: str, rounds: int = ROUNDS) -> float:
    """Cumulative ``plan_round`` seconds over one full run in ``mode``.

    Only planning is timed — firing is identical work in every mode and
    would dilute the ratio the gate is about.  The warm-up round (program
    generation + initial full sweep) is excluded, as in E-PLAN.
    """
    spec = build_sparse_spec(rounds=rounds)
    planner = IncrementalRoundPlanner(spec, obs=_observability_for(mode))
    planning_seconds = 0.0
    for round_index in range(rounds):
        started = time.perf_counter()
        plan = planner.plan_round()
        if round_index > 0:
            planning_seconds += time.perf_counter() - started
        if not plan.firings:
            break
        for firing in plan.firings:
            firing.result.transition.fire(firing.module)
    return planning_seconds


MODES = ("disabled", "enabled")


def obs_overhead_results() -> dict:
    """The record ``benchmarks/run_all.py`` writes into BENCH_results.json."""
    best = {mode: float("inf") for mode in MODES}
    for repeat in range(REPEATS):
        # Interleave AND alternate the order: each run allocates a fresh
        # 256-module spec, so whichever mode runs second inherits the
        # first's GC pressure — alternating cancels that bias, collecting
        # up front keeps it out of the timed region altogether.
        ordered = MODES if repeat % 2 == 0 else tuple(reversed(MODES))
        for mode in ordered:
            gc.collect()
            best[mode] = min(best[mode], timed_planner_run(mode))
    ratio = best["enabled"] / best["disabled"]
    record = ExperimentRecord(
        experiment_id="E-OBS",
        title="Observability overhead on the incremental planner hot path",
        paper_claim="the runtime can be observable in production: metrics and "
        "events must cost (almost) nothing, on or off",
        notes=f"best-of-{REPEATS} minima, modes interleaved; "
        f"gate: enabled/disabled <= {OVERHEAD_CEILING}",
    )
    record.add_row(
        modules=SYSTEMS * (1 + CHILDREN),
        rounds=ROUNDS,
        disabled_ms=round(best["disabled"] * 1e3, 3),
        enabled_ms=round(best["enabled"] * 1e3, 3),
        overhead_ratio=round(ratio, 4),
        within_ceiling=ratio <= OVERHEAD_CEILING,
    )
    print_experiment(record)
    return {
        "workload": f"sparse-activity planner sweep ({DRIVERS} drivers, "
        f"{SYSTEMS * (1 + CHILDREN)} modules, {ROUNDS} rounds)",
        "repeats": REPEATS,
        "disabled_seconds": best["disabled"],
        "enabled_seconds": best["enabled"],
        "overhead_ratio": ratio,
        "overhead_ceiling": OVERHEAD_CEILING,
        "within_ceiling": ratio <= OVERHEAD_CEILING,
    }


class TestObsOverheadBench:
    def test_enabled_overhead_within_ceiling(self, benchmark):
        results = benchmark.pedantic(obs_overhead_results, rounds=1, iterations=1)
        assert results["disabled_seconds"] > 0
        assert results["overhead_ratio"] <= OVERHEAD_CEILING, results

    def test_observed_run_actually_recorded(self):
        """The enabled mode is not vacuously fast because nothing recorded."""
        obs = Observability()
        planner = IncrementalRoundPlanner(build_sparse_spec(rounds=10), obs=obs)
        for _ in range(10):
            plan = planner.plan_round()
            for firing in plan.firings:
                firing.result.transition.fire(firing.module)
        planner.flush_metrics()  # counters are batch-synced from the tallies
        assert obs.registry.get("repro_planner_rounds_total").value == 10
        assert obs.registry.get("repro_planner_evaluated_total").value > 0
