"""E1 — Section 5.1: sequential vs parallel implementation.

The paper: *"we used presentation and session kernel, without ASN.1
encoding/decoding, and we transmitted very small P-Data units.  This is the
worst case for parallelization.  Even with this environment, we got a speedup
(in comparison with the sequential version) of 1.4 to 2 with 2 connections,
parallel presentation and session and a varying number of Data requests."*

The benchmark sweeps the number of Data requests and connections, runs the
same specification sequentially (one processor, one execution unit) and in
parallel (KSR1-like machine, one thread per module) and reports the speedup
series.  The 2-connection speedups must fall in the paper's 1.4-2 band.
"""

from __future__ import annotations

import pytest

from repro.harness import ExperimentRecord, print_experiment
from repro.osi import build_transfer_specification, transfer_progress
from repro.runtime import SequentialMapping, ThreadPerModuleMapping, run_specification
from repro.sim import Cluster, Machine

DATA_REQUEST_SWEEP = (10, 20, 40)
CONNECTION_SWEEP = (1, 2, 4)
PARALLEL_PROCESSORS = 8


def ksr_cluster(processors: int) -> Cluster:
    cluster = Cluster()
    cluster.add(Machine("ksr1", processors))
    return cluster


def run_pair(connections: int, data_requests: int):
    sequential_spec = build_transfer_specification(
        connections=connections, data_requests=data_requests, payload_size=2
    )
    parallel_spec = build_transfer_specification(
        connections=connections, data_requests=data_requests, payload_size=2
    )
    sequential, _ = run_specification(
        sequential_spec, ksr_cluster(1), mapping=SequentialMapping()
    )
    parallel, _ = run_specification(
        parallel_spec, ksr_cluster(PARALLEL_PROCESSORS), mapping=ThreadPerModuleMapping()
    )
    assert transfer_progress(sequential_spec) == transfer_progress(parallel_spec)
    return sequential, parallel


def reproduce_speedup_series():
    record = ExperimentRecord(
        experiment_id="E1",
        title="Sequential vs parallel execution of the presentation/session test environment",
        paper_claim="speedup 1.4-2.0 with 2 connections, tiny P-Data units (worst case)",
    )
    speedups = {}
    for connections in CONNECTION_SWEEP:
        for data_requests in DATA_REQUEST_SWEEP:
            sequential, parallel = run_pair(connections, data_requests)
            speedup = parallel.speedup_against(sequential)
            speedups[(connections, data_requests)] = speedup
            record.add_row(
                connections=connections,
                data_requests=data_requests,
                sequential_time=round(sequential.elapsed_time, 1),
                parallel_time=round(parallel.elapsed_time, 1),
                speedup=round(speedup, 2),
            )
    print_experiment(record)
    return speedups


class TestSpeedup:
    def test_speedup_series(self, benchmark):
        speedups = benchmark.pedantic(reproduce_speedup_series, rounds=1, iterations=1)
        two_connection = [v for (c, _), v in speedups.items() if c == 2]
        # The paper's band for two connections.
        assert all(1.3 <= s <= 2.2 for s in two_connection), two_connection
        # More connections never hurt; one connection gains less than two.
        for data_requests in DATA_REQUEST_SWEEP:
            assert speedups[(1, data_requests)] <= speedups[(2, data_requests)] + 0.05
            assert speedups[(4, data_requests)] >= speedups[(2, data_requests)] - 0.05
        # Parallelism always helps at least a little, even in the worst case.
        assert min(speedups.values()) > 1.0

    def test_single_pair_runtime(self, benchmark):
        """Wall-clock cost of one sequential-vs-parallel comparison (2 connections)."""
        sequential, parallel = benchmark.pedantic(run_pair, args=(2, 20), rounds=1, iterations=1)
        assert parallel.elapsed_time < sequential.elapsed_time
