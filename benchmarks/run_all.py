#!/usr/bin/env python3
"""Run every ``bench_*.py`` in smoke mode and consolidate ``BENCH_results.json``.

Each benchmark file is executed through pytest with the timing machinery
disabled (``--benchmark-disable``) — the assertions about the reproduced
claims still run, so this is the cheap gate CI uses.  The consolidated
results file accumulates one entry per invocation (newest first, bounded
history), so the repository carries its own perf trajectory:

* per-benchmark pass/fail status and wall-clock duration,
* the E4 dispatch-selection cost sweep (hard-coded / table-driven /
  generated), including the headline check that the generated strategy is
  at least as fast as the table-driven one,
* the E-PAR parallel-backend record: the multiprocess backend's *measured*
  wall-clock speedup on the OSI transfer workload next to the cost model's
  *predicted* speedup (with a ``comparable`` honesty flag for undersized
  hosts), the trace-equivalence verdict, and the full
  {backend} x {table-driven, generated, planner} equivalence matrix (see
  ROADMAP.md, "Execution backends", for how to read the numbers),
* the E-PLAN round-planner record: the incremental fused planner's
  planning+selection time against the interpreted full rescan over a
  module-count sweep (ROADMAP.md, "Hot path"),
* the E-DELAY record: the delay-paced xmovie stream workload — the paced
  vs delay-stripped schedule (pinning the old silently-ignored-delay bug)
  and the {backend} x {dispatch} equivalence matrix on the delayed spec,
  including identical simulated-time stamps,
* the E-DYN record: the dynamic-topology mcam_sessions workload — session
  handler modules spawned/released at runtime through Estelle init/release,
  the planner's structure-epoch/rebuild accounting, and the full
  {backend} x {dispatch} equivalence matrix on the dynamic spec,
* the E-SERVE record: the multi-session service under load — 1000
  concurrent mcam_sessions instances through ``repro.serve``, with
  sessions/sec, p50/p99 step latency, the registry's compile-once count
  and the sampled interleaved-vs-sequential trace identity (ROADMAP.md
  item 1),
* the E-OBS record: the observability layer's cost on the planner hot
  path — best-of-N enabled vs disabled planning time on the sparse
  workload, gated at an enabled/disabled ratio of <= 1.05 (the
  "near-no-op" half of the obs subsystem's contract; the other half,
  zero trace perturbation, is gated by ``tests/test_obs_equivalence.py``),
* the E-RESIL record: the resilience machinery — wall-clock cost of a
  supervised worker-crash recovery next to the fault-free run (gated on
  byte-identical recovered traces), plus session checkpoint/restore
  latency and the restart-resumes-with-identical-suffix verdict
  (``docs/RESILIENCE.md``),
* the E-RELAX record: conservative lookahead (``relax_barrier=True``) —
  per-workload barrier-round fractions and sync wall-clock next to a
  strict-barrier run, gated on byte-identical traces, a fraction < 1.0 on
  the lookahead-friendly workloads and exactly 1.0 on the delay-paced
  control (``docs/DISTRIBUTION.md``, "Conservative lookahead").

Run with:  PYTHONPATH=src python benchmarks/run_all.py [--output PATH]
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).parent
REPO_ROOT = BENCH_DIR.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_results.json"
HISTORY_LIMIT = 20


def bench_files():
    return sorted(BENCH_DIR.glob("bench_*.py"))


def run_one(path: Path) -> dict:
    """Smoke-run one benchmark file under pytest; returns a result row."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    started = time.perf_counter()
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            str(path),
            "-q",
            "-p",
            "no:cacheprovider",
            "--benchmark-disable",
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )
    duration = time.perf_counter() - started
    row = {
        "file": path.name,
        "status": "passed" if proc.returncode == 0 else "failed",
        "duration_s": round(duration, 2),
    }
    if proc.returncode != 0:
        tail = (proc.stdout + proc.stderr).splitlines()[-25:]
        row["output_tail"] = tail
    return row


def _load_bench_module(name: str):
    """Import a ``bench_*.py`` file directly (the bench dir is no package)."""
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    spec = importlib.util.spec_from_file_location(name, BENCH_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _round_floats(mapping: dict) -> dict:
    return {
        key: (round(value, 4) if isinstance(value, float) else value)
        for key, value in mapping.items()
    }


def dispatch_selection_results() -> dict:
    """The E4 cost sweep, recorded so the perf trajectory is diffable."""
    module = _load_bench_module("bench_transition_dispatch")
    rows = [_round_floats(row) for row in module.dispatch_cost_sweep()]
    return {
        "sweep": rows,
        "generated_at_most_table_driven": all(
            row["generated"] <= row["table-driven"] for row in rows
        ),
    }


def parallel_backend_results() -> dict:
    """E-PAR: measured multiprocess speedup next to the model's prediction,
    plus the full {backend} x {dispatch} trace-equivalence matrix."""
    module = _load_bench_module("bench_parallel_backend")
    rounded = _round_floats(module.measured_vs_predicted())
    rounded["workload"] = "examples/specs/osi_transfer.estelle"
    rounded["equivalence_matrix"] = module.equivalence_matrix()
    return rounded


def round_planner_results() -> dict:
    """E-PLAN: the incremental fused planner vs the interpreted rescan."""
    module = _load_bench_module("bench_round_planner")
    results = module.planner_sweep()
    results["sweep"] = [_round_floats(row) for row in results["sweep"]]
    return _round_floats(results)


def delay_round_results() -> dict:
    """E-DELAY: delay-paced xmovie schedule + backend/dispatch equivalence."""
    module = _load_bench_module("bench_delay_round")
    results = module.delay_round_results()
    results["pacing"]["paced"] = _round_floats(results["pacing"]["paced"])
    results["pacing"]["undelayed"] = _round_floats(results["pacing"]["undelayed"])
    results["matrix"]["cells"] = [
        _round_floats(cell) for cell in results["matrix"]["cells"]
    ]
    return results


def dynamic_topology_results() -> dict:
    """E-DYN: dynamic init/release equivalence + planner rebuild accounting."""
    module = _load_bench_module("bench_dynamic_topology")
    results = module.dynamic_topology_results()
    results["matrix"]["cells"] = [
        _round_floats(cell) for cell in results["matrix"]["cells"]
    ]
    return results


def serve_load_results() -> dict:
    """E-SERVE: the session service under a 1000-instance load."""
    module = _load_bench_module("bench_serve_load")
    return _round_floats(module.serve_load_results())


def obs_overhead_results() -> dict:
    """E-OBS: metrics/events cost on the planner hot path, on vs off."""
    module = _load_bench_module("bench_obs_overhead")
    return _round_floats(module.obs_overhead_results())


def resilience_results() -> dict:
    """E-RESIL: crash-recovery fidelity/cost + checkpoint/restore latency."""
    module = _load_bench_module("bench_resilience")
    results = module.resilience_results()
    results["recovery"] = _round_floats(results["recovery"])
    results["persistence"] = _round_floats(results["persistence"])
    return results


def barrier_relaxation_results() -> dict:
    """E-RELAX: relaxed-barrier fidelity, barrier fractions and sync cost."""
    module = _load_bench_module("bench_barrier_relaxation")
    results = module.barrier_relaxation_results()
    results["cells"] = [_round_floats(cell) for cell in results["cells"]]
    return results


def load_history(output: Path) -> list:
    if not output.exists():
        return []
    try:
        document = json.loads(output.read_text())
    except (json.JSONDecodeError, OSError):
        return []
    return list(document.get("runs", []))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="results file to write"
    )
    args = parser.parse_args(argv)
    if not args.output.parent.is_dir():
        parser.error(f"output directory does not exist: {args.output.parent}")

    results = []
    for path in bench_files():
        print(f"== {path.name} ==", flush=True)
        row = run_one(path)
        print(f"   {row['status']} in {row['duration_s']}s")
        if "output_tail" in row:
            print("\n".join(f"   | {line}" for line in row["output_tail"]))
        results.append(row)

    run_entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "mode": "smoke",
        "benchmarks": results,
        "dispatch_selection": dispatch_selection_results(),
        "parallel_backend": parallel_backend_results(),
        "round_planner": round_planner_results(),
        "delay_round": delay_round_results(),
        "dynamic_topology": dynamic_topology_results(),
        "serve_load": serve_load_results(),
        "obs_overhead": obs_overhead_results(),
        "resilience": resilience_results(),
        "barrier_relaxation": barrier_relaxation_results(),
    }
    runs = [run_entry] + load_history(args.output)
    args.output.write_text(json.dumps({"runs": runs[:HISTORY_LIMIT]}, indent=2) + "\n")

    failed = [row["file"] for row in results if row["status"] != "passed"]
    print(f"\n{len(results) - len(failed)}/{len(results)} benchmarks passed; "
          f"results in {args.output}")
    if failed:
        print("failed:", ", ".join(failed))
        return 1
    if not run_entry["dispatch_selection"]["generated_at_most_table_driven"]:
        print("regression: generated dispatch slower than table-driven")
        return 1
    parallel = run_entry["parallel_backend"]
    if not parallel["traces_identical"]:
        print(
            "regression: multiprocess backend trace diverged: "
            f"{parallel['trace_divergence']}"
        )
        return 1
    if not parallel["equivalence_matrix"]["all_traces_identical"]:
        bad = [
            f"{cell['workload']}/{cell['backend']}/{cell['dispatch']}"
            for cell in parallel["equivalence_matrix"]["cells"]
            if not cell["traces_identical"]
        ]
        print(f"regression: trace divergence in equivalence matrix cells: {bad}")
        return 1
    if not parallel.get("comparable", True):
        # Honesty annotation, not a regression: on an undersized host the
        # workers time-slice, so measured_speedup < 1 is the expected shape.
        print(
            f"note: measured_speedup={parallel['measured_speedup']} is not "
            f"comparable to predicted_speedup={round(parallel['predicted_speedup'], 2)} "
            f"on this host ({parallel['host_cpus']} CPU(s) < "
            f"{parallel['workers']} workers); recorded for the trend only."
        )
    planner = run_entry["round_planner"]
    if not planner["all_plans_identical"]:
        print("regression: incremental planner plans diverged from the rescan")
        return 1
    if not planner["planner_faster_than_interpreted"]:
        print(
            "regression: incremental planner slower than the interpreted walk "
            f"at {planner['largest_point_modules']} modules "
            f"(speedup {planner['largest_point_speedup']})"
        )
        return 1
    # Delay-eligibility checks must not regress the planner's cache reuse on
    # the (undelayed) sparse workload: timer refresh is a per-class no-op
    # there, so the reuse ratio has no reason to fall.
    sparse_reuse = planner["sweep"][-1]["reuse_ratio"]
    if sparse_reuse < 0.9:
        print(
            "regression: planner reuse_ratio fell to "
            f"{sparse_reuse} on the sparse workload (delay-eligibility "
            "checks dirtying clean modules?)"
        )
        return 1
    delay_round = run_entry["delay_round"]
    if not delay_round["matrix"]["all_traces_identical"]:
        bad = [
            f"{cell['backend']}/{cell['dispatch']}"
            for cell in delay_round["matrix"]["cells"]
            if not cell["traces_identical"]
        ]
        print(f"regression: delayed-spec trace divergence in cells: {bad}")
        return 1
    if not delay_round["pacing"]["pacing_effective"]:
        print(
            "regression: delay clauses no longer pace the xmovie stream "
            "(silent-ignore bug resurfaced?)"
        )
        return 1
    dynamic = run_entry["dynamic_topology"]
    if not dynamic["matrix"]["all_traces_identical"]:
        bad = [
            f"{cell['backend']}/{cell['dispatch']}"
            for cell in dynamic["matrix"]["cells"]
            if not cell["traces_identical"]
        ]
        print(f"regression: dynamic-topology trace divergence in cells: {bad}")
        return 1
    if not dynamic["dynamic"]["rebuilds_track_epochs"]:
        print(
            "regression: planner rebuild count "
            f"({dynamic['dynamic']['planner_rebuilds']}) no longer tracks "
            f"structure-epoch bumps ({dynamic['dynamic']['structure_epoch_bumps']})"
        )
        return 1
    serve = run_entry["serve_load"]
    if not serve["compile_once"]:
        print(
            "regression: serve registry compiled the spec "
            f"{serve['registry_compile_count']}x for "
            f"{serve['registry_instantiations']} session spawns"
        )
        return 1
    if serve["sessions_per_sec"] < serve["sessions_per_sec_floor"]:
        print(
            f"regression: serve throughput {serve['sessions_per_sec']}/s "
            f"below the {serve['sessions_per_sec_floor']}/s floor"
        )
        return 1
    if not serve["sampled_traces_identical"]:
        print(
            "regression: serve session trace diverged from the sequential "
            f"reference: {serve['trace_divergence']}"
        )
        return 1
    obs = run_entry["obs_overhead"]
    if not obs["within_ceiling"]:
        print(
            f"regression: observability overhead ratio {obs['overhead_ratio']} "
            f"exceeds the {obs['overhead_ceiling']} ceiling on the planner sweep"
        )
        return 1
    resilience = run_entry["resilience"]
    if not resilience["recovery"]["recovered_trace_identical"]:
        print(
            "regression: crash-recovered trace diverged from the fault-free "
            f"reference: {resilience['recovery']['trace_divergence']}"
        )
        return 1
    if not resilience["persistence"]["restored_suffix_identical"]:
        print(
            "regression: session restored from state_dir no longer resumes "
            "with the reference trace suffix"
        )
        return 1
    if not resilience["persistence"]["all_sessions_restored"]:
        print(
            "regression: engine restart restored "
            f"{resilience['persistence']['sessions_restored']}/"
            f"{resilience['persistence']['sessions']} persisted sessions"
        )
        return 1
    relaxation = run_entry["barrier_relaxation"]
    if not relaxation["traces_identical"]:
        bad = [
            f"{cell['workload']}: {cell['trace_divergence']}"
            for cell in relaxation["cells"]
            if not cell["traces_identical"]
        ]
        print(f"regression: relaxed-barrier trace divergence: {bad}")
        return 1
    if not relaxation["lookahead_effective"]:
        fractions = [
            (cell["workload"], cell["barrier_round_fraction"])
            for cell in relaxation["cells"]
            if cell["lookahead_friendly"]
        ]
        print(
            "regression: conservative lookahead no longer leaves the round "
            f"barrier on lookahead-friendly workloads: {fractions}"
        )
        return 1
    if not relaxation["control_holds_barrier"]:
        print(
            "regression: the delay-paced control workload ran lookahead "
            "rounds — relaxation accepted a workload it cannot prove"
        )
        return 1
    print(
        "barrier relaxation: "
        + ", ".join(
            f"{cell['workload'].rsplit('/', 1)[-1]} at barrier fraction "
            f"{cell['barrier_round_fraction']}"
            for cell in relaxation["cells"]
        )
        + "; all relaxed traces byte-identical"
    )
    print(
        f"obs overhead: enabled/disabled planning-time ratio "
        f"{obs['overhead_ratio']} on {obs['workload']} "
        f"(ceiling {obs['overhead_ceiling']})"
    )
    print(
        f"serve load: {serve['sessions']} sessions "
        f"(peak {serve['peak_sessions']}) at {serve['sessions_per_sec']}/s, "
        f"step p50 {serve['p50_latency_ms']} ms / p99 "
        f"{serve['p99_latency_ms']} ms; registry compiled "
        f"{serve['registry_compile_count']}x for "
        f"{serve['registry_instantiations']} spawns; "
        f"{serve['equivalence_sample']} sampled traces byte-identical"
    )
    print(
        f"dynamic topology: {len(dynamic['dynamic']['dynamic_module_paths'])} "
        f"session handler(s) spawned, {dynamic['dynamic']['sessions_released']} "
        f"released, planner rebuilt {dynamic['dynamic']['planner_rebuilds']}x "
        f"for {dynamic['dynamic']['structure_epoch_bumps']} epoch bumps; "
        f"{len(dynamic['matrix']['cells'])} backend x dispatch cells "
        "byte-identical"
    )
    print(
        f"delay round: xmovie paced at >= {delay_round['pacing']['frame_delay']} "
        f"sim units/frame (paced sim time "
        f"{delay_round['pacing']['paced']['simulated_time']} vs undelayed "
        f"{delay_round['pacing']['undelayed']['simulated_time']}); "
        f"{len(delay_round['matrix']['cells'])} backend x dispatch cells "
        "byte-identical"
    )
    print(
        f"round planner: {planner['largest_point_speedup']}x less "
        f"planning+selection time than the interpreted rescan at "
        f"{planner['largest_point_modules']} modules "
        f"(>=2x target met: {planner['planner_at_least_2x']})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
