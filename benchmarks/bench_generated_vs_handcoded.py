"""E6 — Section 3: generated vs hand-written control stack.

*"The second stack places the MCAM module directly on top of the ISODE
presentation interface.  With these two versions we can measure performance
differences between generated and hand-written code."*

The benchmark runs the same MCAM workload over both stack variants and
compares the control-plane cost (simulated work-unit time) and the functional
results, which must be identical.  A second experiment keeps the generated
stack fixed and swaps the transition-selection strategy — hard-coded scan,
table-driven, and the code generator's specialized selection functions
(:mod:`repro.runtime.codegen`) — which must again be functionally
interchangeable while the generated selection spends the least time in
dispatch.
"""

from __future__ import annotations

import pytest

from repro.harness import ExperimentRecord, print_experiment
from repro.mcam import MovieSystem
from repro.runtime import SequentialMapping, dispatch_by_name


def run_workload(stack: str, dispatch_name: str = None):
    dispatch = dispatch_by_name(dispatch_name) if dispatch_name else None
    system = MovieSystem(
        clients=1,
        stack=stack,
        server_processors=4,
        mapping=SequentialMapping(),
        dispatch=dispatch,
    )
    client = system.client(0)
    responses = []
    responses.append(client.connect()["status"])
    responses.append(client.create_movie("e6-movie", duration_seconds=1)["status"])
    responses.append(len(client.query_attributes(filter_expression="imageFormat=mjpeg")))
    responses.append(client.select_movie("e6-movie")["status"])
    responses.append(client.modify_attributes("e6-movie", {"owner": "e6"})["status"])
    responses.append(client.delete_movie("e6-movie")["status"])
    responses.append(client.release()["status"])
    return system, responses


def reproduce_generated_vs_handcoded():
    generated_system, generated_responses = run_workload("generated")
    isode_system, isode_responses = run_workload("isode")
    record = ExperimentRecord(
        experiment_id="E6",
        title="Generated (Estelle presentation + session) vs hand-coded (ISODE interface) stack",
        paper_claim="both stacks are functionally interchangeable under MCAM; the hand-written "
        "path is cheaper per operation, the generated one is maintainable and parallelisable",
    )
    for name, system in (("generated", generated_system), ("isode (hand-coded)", isode_system)):
        metrics = system.metrics
        record.add_row(
            stack=name,
            modules=system.specification.module_count(),
            elapsed_work=round(metrics.elapsed_time, 1),
            transitions=metrics.transitions_fired,
            external_steps=metrics.external_steps,
            rounds=metrics.rounds,
        )
    print_experiment(record)
    return generated_system, isode_system, generated_responses, isode_responses


DISPATCH_STRATEGIES = ("hard-coded", "table-driven", "generated")


def reproduce_dispatch_strategies():
    """The same MCAM workload under the three transition-selection strategies."""
    record = ExperimentRecord(
        experiment_id="E6b",
        title="MCAM workload under hard-coded / table-driven / generated selection",
        paper_claim="selection strategies are functionally interchangeable; the generated "
        "specialized selection spends the least time choosing transitions",
    )
    results = {}
    for dispatch_name in DISPATCH_STRATEGIES:
        system, responses = run_workload("generated", dispatch_name=dispatch_name)
        results[dispatch_name] = (system, responses)
        metrics = system.metrics
        record.add_row(
            dispatch=dispatch_name,
            elapsed_work=round(metrics.elapsed_time, 1),
            dispatch_time=round(metrics.dispatch_time, 1),
            transitions=metrics.transitions_fired,
            rounds=metrics.rounds,
        )
    print_experiment(record)
    return results


class TestDispatchStrategiesOnMcam:
    def test_functional_equivalence_and_dispatch_cost(self, benchmark):
        results = benchmark.pedantic(reproduce_dispatch_strategies, rounds=1, iterations=1)
        baseline = results["table-driven"][1]
        for dispatch_name in DISPATCH_STRATEGIES:
            assert results[dispatch_name][1] == baseline
        table_metrics = results["table-driven"][0].metrics
        generated_metrics = results["generated"][0].metrics
        # Identical behaviour ...
        assert generated_metrics.transitions_fired == table_metrics.transitions_fired
        assert generated_metrics.rounds == table_metrics.rounds
        # ... but the generated selection is cheaper than the interpreted table.
        assert generated_metrics.dispatch_time <= table_metrics.dispatch_time
        assert generated_metrics.elapsed_time <= table_metrics.elapsed_time


class TestGeneratedVsHandcoded:
    def test_comparison(self, benchmark):
        generated_system, isode_system, generated_responses, isode_responses = benchmark.pedantic(
            reproduce_generated_vs_handcoded, rounds=1, iterations=1
        )
        # Functional equivalence: the MCAM user sees identical results.
        assert generated_responses == isode_responses
        assert generated_responses[0] == "success"
        # The hand-coded stack needs fewer modules and less work per session.
        assert isode_system.specification.module_count() < generated_system.specification.module_count()
        assert isode_system.metrics.elapsed_time < generated_system.metrics.elapsed_time
        # But only the generated stack exposes layer modules the runtime can
        # distribute over processors (the reason the paper generates code at all).
        assert generated_system.specification.find("server/entity-0/session")
        assert generated_system.metrics.transitions_fired > isode_system.metrics.transitions_fired
