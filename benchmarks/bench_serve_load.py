"""E-SERVE — load generator for the multi-session service (ISSUE 6).

Drives ``repro.serve`` the way a call-control deployment would: spawn a
large population of ``mcam_sessions`` instances (one per simulated
user/call), then sweep them to quiescence a timeslice at a time over the
engine's worker pool.  Records, under the ``serve_load`` key of
``BENCH_results.json``:

* ``sessions_per_sec`` — completed sessions per second of total wall time
  (spawn + drive),
* ``p50_latency_ms`` / ``p99_latency_ms`` — per-operation latency of the
  service's unit of work (one ``engine.step`` timeslice of one session),
* ``spawn_p50_ms`` / ``spawn_p99_ms`` — session-creation latency, the
  number the compile-once registry exists to keep flat,
* ``peak_sessions`` — the concurrent-instance high-water mark (the
  acceptance floor is 1000),
* the **compile-once contract**: the registry must report exactly one
  front-end compile for the spec regardless of population size,
* the **isolation contract**: a sample of session traces must be
  byte-identical to a sequential single-session reference run.

Environment knobs: ``SERVE_LOAD_SESSIONS`` (default 1000),
``SERVE_LOAD_SLICE`` (rounds per timeslice, default 7).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.runtime.executor import SpecSource
from repro.runtime.parallel.trace import canonical_trace_bytes, trace_diff
from repro.serve.engine import SessionEngine
from repro.sim.metrics import percentile

SPEC_PATH = Path(__file__).parent.parent / "examples" / "specs" / "mcam_sessions.estelle"
SESSIONS = int(os.environ.get("SERVE_LOAD_SESSIONS", "1000"))
SLICE_ROUNDS = int(os.environ.get("SERVE_LOAD_SLICE", "7"))
DISPATCH = "planner"
#: sessions whose full trace is compared against the sequential reference.
EQUIVALENCE_SAMPLE = 25
#: CI floor: the service must clear this on a 1-CPU runner with headroom
#: (the container this was tuned on sustains ~450/s).
SESSIONS_PER_SEC_FLOOR = 25.0


def reference_trace_bytes(source: SpecSource):
    """Canonical bytes of one session run sequentially to quiescence."""
    with SessionEngine(default_dispatch=DISPATCH) as engine:
        sid = engine.create_session(source)
        engine.run_to_quiescence(sid)
        trace = engine._session(sid).executor.trace
        return canonical_trace_bytes(trace), trace


def serve_load_results(sessions: int = SESSIONS) -> dict:
    """Run the load scenario; returns the ``serve_load`` record."""
    source = SpecSource.from_estelle_file(SPEC_PATH)
    reference_bytes, reference = reference_trace_bytes(source)

    engine = SessionEngine(default_dispatch=DISPATCH, workers=8)
    started = time.perf_counter()

    spawn_latencies = []
    ids = []
    for _ in range(sessions):
        op_started = time.perf_counter()
        ids.append(engine.create_session(source))
        spawn_latencies.append((time.perf_counter() - op_started) * 1e3)
    spawned = time.perf_counter()

    # Drive all sessions to quiescence, a timeslice at a time, measuring the
    # latency of each step operation (the service's unit of work) from the
    # caller's side — queueing on the pool included, like a client would see.
    step_latencies = []
    live = set(ids)
    sweeps = 0

    def step_one(sid: str):
        op_started = time.perf_counter()
        health = engine.step(sid, rounds=SLICE_ROUNDS)
        return sid, health, (time.perf_counter() - op_started) * 1e3

    with ThreadPoolExecutor(max_workers=8) as pool:
        while live:
            sweeps += 1
            for sid, health, latency in pool.map(step_one, sorted(live)):
                step_latencies.append(latency)
                if health["stop_reason"] == "quiescent":
                    live.discard(sid)
    finished = time.perf_counter()

    sample = ids[:: max(1, len(ids) // EQUIVALENCE_SAMPLE)][:EQUIVALENCE_SAMPLE]
    divergence = None
    for sid in sample:
        trace = engine._session(sid).executor.trace
        if canonical_trace_bytes(trace) != reference_bytes:
            divergence = f"{sid}: {trace_diff(reference, trace)}"
            break

    stats = engine.stats()
    entry = stats["registry"]["specs"][0]
    engine.shutdown()

    total_seconds = finished - started
    return {
        "workload": str(SPEC_PATH.relative_to(SPEC_PATH.parents[2])),
        "dispatch": DISPATCH,
        "sessions": sessions,
        "peak_sessions": stats["peak_sessions"],
        "slice_rounds": SLICE_ROUNDS,
        "sweeps": sweeps,
        "spawn_seconds": spawned - started,
        "drive_seconds": finished - spawned,
        "total_seconds": total_seconds,
        "sessions_per_sec": sessions / total_seconds if total_seconds > 0 else 0.0,
        "p50_latency_ms": percentile(step_latencies, 0.50),
        "p99_latency_ms": percentile(step_latencies, 0.99),
        "spawn_p50_ms": percentile(spawn_latencies, 0.50),
        "spawn_p99_ms": percentile(spawn_latencies, 0.99),
        "step_operations": len(step_latencies),
        "registry_compile_count": entry["compile_count"],
        "registry_instantiations": entry["instantiations"],
        "compile_once": entry["compile_count"] == 1,
        "equivalence_sample": len(sample),
        "sampled_traces_identical": divergence is None,
        "trace_divergence": divergence,
        "sessions_per_sec_floor": SESSIONS_PER_SEC_FLOOR,
    }


# -- pytest gates (run by run_all.py / CI with --benchmark-disable) -------------

_RESULTS_CACHE = {}


def _results() -> dict:
    if "record" not in _RESULTS_CACHE:
        _RESULTS_CACHE["record"] = serve_load_results()
    return _RESULTS_CACHE["record"]


def test_sustains_target_population():
    record = _results()
    assert record["peak_sessions"] >= min(1000, SESSIONS), (
        f"peak concurrent sessions {record['peak_sessions']} below target"
    )
    assert record["sessions_per_sec"] >= SESSIONS_PER_SEC_FLOOR, (
        f"throughput {record['sessions_per_sec']:.1f}/s below the "
        f"{SESSIONS_PER_SEC_FLOOR}/s floor"
    )


def test_compile_once_contract():
    record = _results()
    assert record["compile_once"], (
        "registry compiled the spec "
        f"{record['registry_compile_count']}x for "
        f"{record['registry_instantiations']} instantiations"
    )


def test_sampled_traces_identical():
    record = _results()
    assert record["sampled_traces_identical"], record["trace_divergence"]


if __name__ == "__main__":
    import json

    print(json.dumps(serve_load_results(), indent=2))
