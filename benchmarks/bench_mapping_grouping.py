"""E2 — Section 5.2: grouping modules into as many units as processors.

*"Consider the situation in which the number of Estelle modules exceeds the
number of processors. ... Our solution to this problem is to group certain
Estelle modules into one unit, and run this unit by one thread.  We take as
many of these units as there are processors. ... First measurements with the
new grouping scheme show further performance gains."*

The benchmark runs the Section 5.1 environment with many more modules than
processors, comparing one-thread-per-module against the grouping scheme.
"""

from __future__ import annotations

import pytest

from repro.harness import ExperimentRecord, print_experiment
from repro.osi import build_transfer_specification, transfer_progress
from repro.runtime import GroupedMapping, SequentialMapping, ThreadPerModuleMapping, run_specification
from repro.sim import Cluster, Machine

CONNECTIONS = 6          # 6 connections * 9 modules + 3 system modules >> 4 processors
PROCESSORS = 4
DATA_REQUESTS = 15


def run_with(mapping_cls):
    spec = build_transfer_specification(connections=CONNECTIONS, data_requests=DATA_REQUESTS, payload_size=2)
    cluster = Cluster()
    cluster.add(Machine("ksr1", PROCESSORS))
    metrics, _ = run_specification(spec, cluster, mapping=mapping_cls())
    sent, received = transfer_progress(spec)
    assert sent == received == CONNECTIONS * DATA_REQUESTS
    return metrics


def reproduce_grouping():
    per_module = run_with(ThreadPerModuleMapping)
    grouped = run_with(GroupedMapping)
    sequential = run_with(SequentialMapping)
    record = ExperimentRecord(
        experiment_id="E2",
        title="Thread-per-module vs grouping (modules >> processors)",
        paper_claim="grouping into as many units as processors avoids synchronisation and "
        "context-switch losses and gives further performance gains",
    )
    for name, metrics in (
        ("sequential (1 unit)", sequential),
        ("thread-per-module", per_module),
        ("grouped (units = processors)", grouped),
    ):
        record.add_row(
            mapping=name,
            elapsed=round(metrics.elapsed_time, 1),
            sync_time=round(metrics.sync_time, 1),
            context_switch_time=round(metrics.context_switch_time, 1),
            speedup_vs_sequential=round(sequential.elapsed_time / metrics.elapsed_time, 2),
        )
    print_experiment(record)
    return sequential, per_module, grouped


class TestGrouping:
    def test_grouping_beats_thread_per_module(self, benchmark):
        sequential, per_module, grouped = benchmark.pedantic(reproduce_grouping, rounds=1, iterations=1)
        # Grouping wins when modules exceed processors.
        assert grouped.elapsed_time < per_module.elapsed_time
        # And both parallel mappings still beat the sequential baseline.
        assert grouped.elapsed_time < sequential.elapsed_time
        # The win comes from avoided context switches and synchronisation.
        assert grouped.context_switch_time < per_module.context_switch_time
        assert grouped.sync_time <= per_module.sync_time
