"""E-RESIL — cost and fidelity of the resilience machinery (ISSUE 8).

Two questions, recorded under the ``resilience`` key of
``BENCH_results.json``:

* **What does recovery cost?**  Run the multiprocess backend on the same
  workload fault-free and with a scheduled worker crash; record both wall
  times and their ratio.  A crash costs a respawn (process start + shard
  restore + batch re-send), so the ratio is > 1 — the record tracks its
  trajectory, the gate only checks fidelity.
* **What does it preserve?**  The recovered run's canonical trace must be
  byte-identical to the fault-free one, and a session engine restarted
  from its ``state_dir`` must produce the exact reference trace as
  prefix (pre-crash) + suffix (post-restore).  Checkpoint write/restore
  latencies are recorded per session.

Environment knobs: ``RESIL_SESSIONS`` (persisted-session population,
default 50), ``RESIL_MAX_ROUNDS`` (default 60).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.faults import FaultPlan, WorkerCrash
from repro.obs import Observability
from repro.runtime import GroupedMapping, InProcessBackend, MultiprocessBackend
from repro.runtime.executor import SpecSource
from repro.runtime.parallel.trace import (
    canonical_rounds,
    canonical_trace_bytes,
    trace_diff,
)
from repro.serve.engine import SessionEngine
from repro.sim import Cluster, Machine
from repro.sim.metrics import percentile

SPEC_PATH = Path(__file__).parent.parent / "examples" / "specs" / "mcam_sessions.estelle"
SESSIONS = int(os.environ.get("RESIL_SESSIONS", "50"))
MAX_ROUNDS = int(os.environ.get("RESIL_MAX_ROUNDS", "60"))
DISPATCH = "planner"
CRASH = WorkerCrash(unit=1, round_index=2)


def _cluster() -> Cluster:
    cluster = Cluster()
    for name in ("ksr1", "client-ws-1", "client-ws-2", "sun-1"):
        cluster.add(Machine(name, 2))
    return cluster


def recovery_overhead(source: SpecSource) -> dict:
    """Fault-free vs crashed-and-recovered multiprocess runs."""
    reference = InProcessBackend().execute(
        source, _cluster(), mapping=GroupedMapping(), dispatch=DISPATCH,
        max_rounds=MAX_ROUNDS,
    )
    reference_bytes = canonical_trace_bytes(reference.trace)

    started = time.perf_counter()
    clean = MultiprocessBackend().execute(
        source, _cluster(), mapping=GroupedMapping(), dispatch=DISPATCH,
        max_rounds=MAX_ROUNDS,
    )
    clean_seconds = time.perf_counter() - started

    obs = Observability()
    plan = FaultPlan(worker_crashes=(CRASH,))
    started = time.perf_counter()
    recovered = MultiprocessBackend().execute(
        source, _cluster(), mapping=GroupedMapping(), dispatch=DISPATCH,
        max_rounds=MAX_ROUNDS, obs=obs, fault_plan=plan,
    )
    recovered_seconds = time.perf_counter() - started

    clean_ok = canonical_trace_bytes(clean.trace) == reference_bytes
    recovered_ok = canonical_trace_bytes(recovered.trace) == reference_bytes
    recoveries = obs.registry.get("repro_resil_recoveries_total")
    return {
        "crash": {"unit": CRASH.unit, "round_index": CRASH.round_index},
        "clean_seconds": clean_seconds,
        "recovered_seconds": recovered_seconds,
        "recovery_overhead_ratio": (
            recovered_seconds / clean_seconds if clean_seconds > 0 else 0.0
        ),
        "recoveries": recoveries.value if recoveries is not None else 0,
        "clean_trace_identical": clean_ok,
        "recovered_trace_identical": recovered_ok,
        "trace_divergence": (
            None if recovered_ok else trace_diff(reference.trace, recovered.trace)
        ),
    }


def persistence_latency(source: SpecSource, sessions: int, state_dir: str) -> dict:
    """Checkpoint + restart a session population; verify one trace suffix."""
    with SessionEngine(default_dispatch=DISPATCH) as reference_engine:
        ref_id = reference_engine.create_session(source)
        reference_engine.run_to_quiescence(ref_id)
        reference_rounds = canonical_rounds(
            reference_engine._session(ref_id).executor.trace
        )

    first = SessionEngine(default_dispatch=DISPATCH, state_dir=state_dir)
    ids = [first.create_session(source) for _ in range(sessions)]
    for sid in ids:
        first.step(sid, rounds=5)
    prefix = canonical_rounds(first._session(ids[0]).executor.trace)

    write_latencies = []
    for sid in ids:
        op_started = time.perf_counter()
        first.persist_session(sid)
        write_latencies.append((time.perf_counter() - op_started) * 1e3)
    first.shutdown()

    restore_started = time.perf_counter()
    second = SessionEngine(default_dispatch=DISPATCH, state_dir=state_dir)
    restore_seconds = time.perf_counter() - restore_started
    try:
        restored = len(second.session_ids())
        second.run_to_quiescence(ids[0])
        suffix = canonical_rounds(second._session(ids[0]).executor.trace)
        suffix_ok = prefix + suffix == reference_rounds
    finally:
        second.shutdown()

    return {
        "sessions": sessions,
        "checkpoint_p50_ms": percentile(write_latencies, 0.50),
        "checkpoint_p99_ms": percentile(write_latencies, 0.99),
        "restore_seconds_total": restore_seconds,
        "restore_ms_per_session": (
            restore_seconds * 1e3 / sessions if sessions else 0.0
        ),
        "sessions_restored": restored,
        "all_sessions_restored": restored == sessions,
        "restored_suffix_identical": suffix_ok,
    }


def resilience_results(sessions: int = SESSIONS) -> dict:
    """Run both scenarios; returns the ``resilience`` record."""
    import tempfile

    source = SpecSource.from_estelle_file(SPEC_PATH)
    record = {
        "workload": str(SPEC_PATH.relative_to(SPEC_PATH.parents[2])),
        "dispatch": DISPATCH,
        "max_rounds": MAX_ROUNDS,
        "recovery": recovery_overhead(source),
    }
    with tempfile.TemporaryDirectory(prefix="resil-bench-") as state_dir:
        record["persistence"] = persistence_latency(source, sessions, state_dir)
    return record


# -- pytest gates (run by run_all.py / CI with --benchmark-disable) -------------

_RESULTS_CACHE = {}


def _results() -> dict:
    if "record" not in _RESULTS_CACHE:
        _RESULTS_CACHE["record"] = resilience_results()
    return _RESULTS_CACHE["record"]


def test_recovered_trace_identical():
    recovery = _results()["recovery"]
    assert recovery["clean_trace_identical"], "fault-free MP trace diverged"
    assert recovery["recovered_trace_identical"], recovery["trace_divergence"]
    assert recovery["recoveries"] == 1


def test_restart_preserves_traces():
    persistence = _results()["persistence"]
    assert persistence["all_sessions_restored"], (
        f"only {persistence['sessions_restored']}/{persistence['sessions']} "
        "sessions restored"
    )
    assert persistence["restored_suffix_identical"], (
        "restored session's trace suffix diverged from the reference"
    )


if __name__ == "__main__":
    import json

    print(json.dumps(resilience_results(), indent=2))
