"""E-PAR — the multiprocess backend: measured wall-clock vs predicted speedup.

The paper predicts speedup from decentralised scheduling and module grouping;
``repro.runtime.executor`` reproduces those *predictions* with its cost
model.  The multiprocess backend turns the prediction into a measurement:
the same OSI transfer specification runs once on the in-process backend
(serial wall-clock baseline) and once with one OS worker process per
execution unit, both burning the same emulated per-firing processing time
(``busy_work_us_per_cost``), so the wall-clock ratio measures how much of
the modelled overlap the real backend achieves on the host it runs on.

Two caveats the recorded numbers carry explicitly:

* measured speedup is hardware-honest — on a single-core CI runner the
  workers time-slice one CPU and the ratio sits below 1 while the *model*
  (which assumes one processor per unit) still predicts > 1;
* trace equivalence is asserted on every run: a measured number from a
  backend that diverged behaviourally would be worthless.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.harness import ExperimentRecord, print_experiment
from repro.runtime import (
    ConnectionPerProcessorMapping,
    InProcessBackend,
    MultiprocessBackend,
    SequentialMapping,
    SpecSource,
    ThreadPerModuleMapping,
    run_specification,
)
from repro.runtime.parallel import trace_diff
from repro.sim import Cluster, Machine

SPEC_PATH = Path(__file__).parent.parent / "examples" / "specs" / "osi_transfer.estelle"
#: Emulated per-firing processing time (µs per cost unit) for the measured
#: comparison; large enough that firing work dominates queue chatter.
BUSY_WORK_US = 400.0
PROCESSORS_PER_MACHINE = 2


def connection_of(module) -> str:
    """The connection id encoded in the instance names (``*_c1`` / ``*_c2``)."""
    return module.name.rsplit("_", 1)[-1]


def parallel_mapping() -> ConnectionPerProcessorMapping:
    """The paper's winning mapping: one unit per connection per machine."""
    return ConnectionPerProcessorMapping(key=connection_of)


def build_cluster(processors: int) -> Cluster:
    cluster = Cluster()
    cluster.add(Machine("ksr1", processors))
    cluster.add(Machine("client-ws-1", processors))
    return cluster


def predicted_speedup() -> dict:
    """The cost model's prediction: sequential vs connection-per-processor."""
    sequential, _ = run_specification(
        SpecSource.from_estelle_file(SPEC_PATH).build(),
        build_cluster(1),
        mapping=SequentialMapping(),
    )
    parallel, _ = run_specification(
        SpecSource.from_estelle_file(SPEC_PATH).build(),
        build_cluster(PROCESSORS_PER_MACHINE),
        mapping=parallel_mapping(),
    )
    return {
        "sequential_model_time": sequential.elapsed_time,
        "parallel_model_time": parallel.elapsed_time,
        "predicted_speedup": parallel.speedup_against(sequential),
    }


def measured_speedup(
    busy_work_us: float = BUSY_WORK_US, transport: str = "mp-queue"
) -> dict:
    """Measured wall-clock: in-process serial vs multiprocess workers."""
    source = SpecSource.from_estelle_file(SPEC_PATH)
    cluster = build_cluster(PROCESSORS_PER_MACHINE)
    in_process = InProcessBackend().execute(
        source,
        cluster,
        mapping=parallel_mapping(),
        busy_work_us_per_cost=busy_work_us,
    )
    multiprocess = MultiprocessBackend(transport=transport).execute(
        source,
        cluster,
        mapping=parallel_mapping(),
        busy_work_us_per_cost=busy_work_us,
    )
    divergence = trace_diff(in_process.trace, multiprocess.trace)
    host_cpus = os.cpu_count() or 1
    return {
        "busy_work_us_per_cost": busy_work_us,
        "transport": multiprocess.transport,
        "workers": multiprocess.workers,
        "rounds": multiprocess.rounds,
        "transitions_fired": multiprocess.transitions_fired,
        "in_process_wall_s": in_process.wall_seconds,
        "multiprocess_wall_s": multiprocess.wall_seconds,
        "measured_speedup": in_process.wall_seconds / multiprocess.wall_seconds,
        "traces_identical": divergence is None,
        "trace_divergence": divergence,
        "host_cpus": os.cpu_count(),
        # Honesty flag: the measured number only speaks to the predicted one
        # when the host can actually run one worker per processor.  On an
        # undersized host (e.g. host_cpus=1, workers=4) the workers
        # time-slice and measured_speedup < 1 is expected, not a regression.
        "comparable": host_cpus >= multiprocess.workers,
    }


def oversubscribed_cell(transport: str, busy_work_us: float = 50.0) -> dict:
    """Deliberately run more workers than the host has CPUs (ROADMAP 3c).

    One worker per module (12 units on the OSI workload) oversubscribes any
    realistic runner, so the honesty flags — ``oversubscribed`` and
    ``comparable`` — are exercised *explicitly* per transport instead of
    depending on whichever machine CI happens to land on.  The trace oracle
    still applies: time-slicing may destroy the speedup, never the bytes.
    """
    source = SpecSource.from_estelle_file(SPEC_PATH)
    cluster = build_cluster(PROCESSORS_PER_MACHINE)
    reference = InProcessBackend().execute(
        source,
        cluster,
        mapping=ThreadPerModuleMapping(),
        busy_work_us_per_cost=busy_work_us,
    )
    result = MultiprocessBackend(transport=transport).execute(
        source,
        cluster,
        mapping=ThreadPerModuleMapping(),
        busy_work_us_per_cost=busy_work_us,
    )
    divergence = trace_diff(reference.trace, result.trace)
    host_cpus = os.cpu_count() or 1
    return {
        "transport": result.transport,
        "workers": result.workers,
        "host_cpus": os.cpu_count(),
        "oversubscribed": result.workers > host_cpus,
        "comparable": host_cpus >= result.workers,
        "measured_speedup": reference.wall_seconds / result.wall_seconds,
        "traces_identical": divergence is None,
        "trace_divergence": divergence,
    }


def measured_vs_predicted(busy_work_us: float = BUSY_WORK_US) -> dict:
    """The record ``benchmarks/run_all.py`` writes into BENCH_results.json."""
    record = ExperimentRecord(
        experiment_id="E-PAR",
        title="Multiprocess backend: measured wall-clock vs model-predicted speedup",
        paper_claim="decentralised scheduling keeps selection off the critical "
        "path, so grouped units approach the modelled parallel speedup",
    )
    results = {**predicted_speedup(), **measured_speedup(busy_work_us)}
    results["oversubscribed_cells"] = [
        oversubscribed_cell(transport) for transport in ("mp-queue", "tcp")
    ]
    record.add_row(
        transport=results["transport"],
        workers=results["workers"],
        predicted_speedup=round(results["predicted_speedup"], 2),
        measured_speedup=round(results["measured_speedup"], 2),
        in_process_wall_ms=round(results["in_process_wall_s"] * 1e3, 1),
        multiprocess_wall_ms=round(results["multiprocess_wall_s"] * 1e3, 1),
        traces_identical=results["traces_identical"],
        host_cpus=results["host_cpus"],
        comparable=results["comparable"],
    )
    for cell in results["oversubscribed_cells"]:
        record.add_row(
            transport=cell["transport"],
            workers=cell["workers"],
            measured_speedup=round(cell["measured_speedup"], 2),
            traces_identical=cell["traces_identical"],
            host_cpus=cell["host_cpus"],
            oversubscribed=cell["oversubscribed"],
            comparable=cell["comparable"],
        )
    print_experiment(record)
    if not results["comparable"]:
        print(
            f"   note: measured_speedup is NOT comparable to predicted_speedup "
            f"on this host ({results['host_cpus']} CPU(s) < "
            f"{results['workers']} workers); workers time-slice, so a ratio "
            "below 1 is expected here and does not indicate a regression."
        )
    return results


#: The equivalence matrix of ISSUE 3 (+ the delay workload of ISSUE 4):
#: every backend × dispatch combination must produce byte-identical
#: canonical firing traces on every workload — including simulated time on
#: the delay-paced xmovie stream.
MATRIX_DISPATCHES = ("table-driven", "generated", "planner")
MATRIX_SPECS = {
    "mcam_core.estelle": SPEC_PATH.parent / "mcam_core.estelle",
    "osi_transfer.estelle": SPEC_PATH,
    "xmovie_stream.estelle": SPEC_PATH.parent / "xmovie_stream.estelle",
}


def equivalence_matrix() -> dict:
    """{in-process, multiprocess × {mp-queue, tcp}} × the three dispatches.

    The in-process table-driven trace of each workload is the reference; a
    cell records whether its trace is byte-identical to that reference, so
    ``traces_identical`` being true everywhere proves all nine combinations
    per workload agree with each other.  The transport axis (ISSUE 9) is a
    real matrix dimension, not a bypass: the tcp mesh must reproduce the
    bytes under every dispatch, exactly like mp-queue.

    The multiprocess cells run with ``relax_barrier=True`` (ISSUE 10): the
    conservative-lookahead coordinator is the *default under test*, so the
    27-cell byte-identity proof covers the relaxed round loop — and its
    full-barrier fallback, which the delay-paced xmovie workload forces.
    """
    cells = []
    all_identical = True
    for spec_name, spec_path in MATRIX_SPECS.items():
        source = SpecSource.from_estelle_file(spec_path)
        reference = None
        for dispatch in MATRIX_DISPATCHES:
            for backend_name, transport, backend in (
                ("in-process", None, InProcessBackend()),
                (
                    "multiprocess",
                    "mp-queue",
                    MultiprocessBackend(relax_barrier=True),
                ),
                (
                    "multiprocess",
                    "tcp",
                    MultiprocessBackend(transport="tcp", relax_barrier=True),
                ),
            ):
                result = backend.execute(
                    source,
                    build_cluster(PROCESSORS_PER_MACHINE),
                    mapping=parallel_mapping(),
                    dispatch=dispatch,
                )
                if reference is None:
                    reference = result.trace
                divergence = trace_diff(reference, result.trace)
                cells.append(
                    {
                        "workload": spec_name,
                        "backend": backend_name,
                        "transport": transport,
                        "relax_barrier": backend_name == "multiprocess",
                        "dispatch": dispatch,
                        "rounds": result.rounds,
                        "transitions_fired": result.transitions_fired,
                        "traces_identical": divergence is None,
                        "trace_divergence": divergence,
                    }
                )
                all_identical = all_identical and divergence is None
    return {"cells": cells, "all_traces_identical": all_identical}


class TestParallelBackendBench:
    def test_measured_vs_predicted(self, benchmark):
        results = benchmark.pedantic(measured_vs_predicted, rounds=1, iterations=1)
        # Behavioural equivalence is non-negotiable for a valid measurement.
        assert results["traces_identical"], results["trace_divergence"]
        # The model's prediction must land in the paper's two-connection band.
        assert 1.3 <= results["predicted_speedup"] <= 2.2
        # The measurement itself is hardware-honest: only sanity-check it.
        assert results["measured_speedup"] > 0.0
        assert results["workers"] == 4
        assert results["transport"] == "mp-queue"
        # The oversubscribed cells force workers > host CPUs per transport:
        # flags must be explicit and the trace oracle must survive slicing.
        assert [c["transport"] for c in results["oversubscribed_cells"]] == [
            "mp-queue",
            "tcp",
        ]
        for cell in results["oversubscribed_cells"]:
            assert cell["traces_identical"], cell["trace_divergence"]
            assert cell["workers"] > 4
            if (cell["host_cpus"] or 1) < cell["workers"]:
                assert cell["oversubscribed"] and not cell["comparable"]
        if (results["host_cpus"] or 1) >= results["workers"]:
            # With enough real processors, the measured run must actually
            # overlap firing work (well below the serial wall-clock).
            assert results["measured_speedup"] > 1.0

    def test_busy_work_scales_wall_clock(self, benchmark):
        """More emulated processing time means more measured wall-clock."""
        light = benchmark.pedantic(
            measured_speedup, kwargs={"busy_work_us": 50.0}, rounds=1, iterations=1
        )
        assert light["traces_identical"]
        assert light["in_process_wall_s"] > 0

    def test_equivalence_matrix_all_cells_identical(self, benchmark):
        """Every backend × dispatch cell must match the reference trace."""
        matrix = benchmark.pedantic(equivalence_matrix, rounds=1, iterations=1)
        failures = [c for c in matrix["cells"] if not c["traces_identical"]]
        assert matrix["all_traces_identical"], failures
        # 3 workloads × 3 dispatches × {in-process, mp over mp-queue, mp over tcp}
        assert len(matrix["cells"]) == 27
