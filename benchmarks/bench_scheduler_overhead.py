"""E5 — Section 5.2: the Estelle scheduler as the bottleneck.

*"For protocols with small processing time, the Estelle scheduler of many
available compilers becomes the bottleneck for the speedup.  Measurements show
a runtime percentage of the scheduler of up to 80%.  Our scheduler shows
better runtime behavior, as it is decentralized."*

The benchmark runs the test environment with progressively smaller
per-transition processing costs and reports the share of total work spent in
scheduling (selection bookkeeping + transition scanning) for the conventional
centralised scheduler, and the elapsed-time advantage of the decentralised
scheduler.
"""

from __future__ import annotations

import pytest

from repro.harness import ExperimentRecord, print_experiment
from repro.osi import build_transfer_specification
from repro.runtime import (
    CentralisedScheduler,
    DecentralisedScheduler,
    ThreadPerModuleMapping,
    run_specification,
)
from repro.sim import Cluster, CostModel, Machine

#: progressively smaller protocol processing cost (1.0 = the normal kernel cost)
PROCESSING_SCALES = (1.0, 0.5, 0.2, 0.1)
PROCESSORS = 8


def run_with(scheduler, scale: float):
    cost_model = CostModel().scaled(transition_cost_scale=scale)
    spec = build_transfer_specification(connections=2, data_requests=20, payload_size=2)
    cluster = Cluster()
    cluster.add(Machine("ksr1", PROCESSORS, cost_model))
    metrics, _ = run_specification(
        spec,
        cluster,
        mapping=ThreadPerModuleMapping(),
        scheduler=scheduler,
        cost_model=cost_model,
    )
    return metrics


def scheduling_share(metrics) -> float:
    """Share of the elapsed runtime spent in the (serial) scheduler.

    For the centralised scheduler every bit of selection bookkeeping and
    transition scanning happens in one thread, so its share of the elapsed
    time is what the paper reports as "runtime percentage of the scheduler".
    """
    if metrics.elapsed_time <= 0:
        return 0.0
    return (metrics.scheduler_time + metrics.dispatch_time) / metrics.elapsed_time


def reproduce_scheduler_overhead():
    record = ExperimentRecord(
        experiment_id="E5",
        title="Scheduler overhead for protocols with small processing times",
        paper_claim="centralised scheduler consumes up to 80% of the runtime; a decentralised "
        "scheduler behaves better",
    )
    results = {}
    for scale in PROCESSING_SCALES:
        central = run_with(CentralisedScheduler(per_module_cost=0.25), scale)
        decentral = run_with(DecentralisedScheduler(per_module_cost=0.25), scale)
        results[scale] = (central, decentral)
        record.add_row(
            processing_scale=scale,
            central_scheduling_share=round(scheduling_share(central), 2),
            central_elapsed=round(central.elapsed_time, 1),
            decentral_elapsed=round(decentral.elapsed_time, 1),
            decentral_advantage=round(central.elapsed_time / decentral.elapsed_time, 2),
        )
    print_experiment(record)
    return results


class TestSchedulerOverhead:
    def test_scheduler_share_and_decentralised_advantage(self, benchmark):
        results = benchmark.pedantic(reproduce_scheduler_overhead, rounds=1, iterations=1)
        shares = {scale: scheduling_share(central) for scale, (central, _) in results.items()}
        # The scheduling share grows as protocol processing shrinks ...
        assert shares[0.1] > shares[1.0]
        # ... and approaches the paper's "up to 80%" regime for tiny processing costs.
        assert 0.55 <= shares[0.1] <= 0.9
        # The decentralised scheduler is faster in every configuration, and its
        # advantage is largest exactly where the centralised one bottlenecks.
        for scale, (central, decentral) in results.items():
            assert decentral.elapsed_time < central.elapsed_time
        advantage_small = results[0.1][0].elapsed_time / results[0.1][1].elapsed_time
        advantage_large = results[1.0][0].elapsed_time / results[1.0][1].elapsed_time
        assert advantage_small >= advantage_large
        assert advantage_small >= 1.5
