"""E8 — Section 5.2: splitting long-running modules into pipelines.

*"Modules which perform several long-running computations sequentially may be
split in two or more modules resulting in a module pipeline where data is
processed in parallel.  The right decision of whether to integrate modules or
split them depends highly on the module runtime and on the performance
requirements of the user."*

The benchmark processes a stream of items through one computation module and
through the same computation split into a two-stage pipeline, sweeping the
per-item computation cost.  Splitting must only pay off once the computation
is long relative to the synchronisation cost of the extra module boundary —
the crossover the paper's advice is about.
"""

from __future__ import annotations

import pytest

from repro.estelle import Channel, Module, ModuleAttribute, Specification, ip, transition
from repro.harness import ExperimentRecord, print_experiment
from repro.runtime import ThreadPerModuleMapping, run_specification
from repro.sim import Cluster, Machine

WORK = Channel("Work", upstream={"Item"}, downstream={"Credit"})

ITEMS = 30
COMPUTATION_SWEEP = (1.0, 2.0, 4.0, 8.0, 16.0)
PROCESSORS = 8


class Source(Module):
    ATTRIBUTE = ModuleAttribute.PROCESS
    STATES = ("sending", "done")
    out = ip("out", WORK, role="upstream")

    @transition(
        from_state="sending",
        provided=lambda m: m.variables.get("sent", 0) < m.variables.get("items", ITEMS),
        cost=0.5,
    )
    def emit(self) -> None:
        self.variables["sent"] = self.variables.get("sent", 0) + 1
        self.output("out", "Item", sequence=self.variables["sent"])
        if self.variables["sent"] >= self.variables.get("items", ITEMS):
            self.state = "done"


class Sink(Module):
    ATTRIBUTE = ModuleAttribute.PROCESS
    STATES = ("collecting",)
    inp = ip("inp", WORK, role="downstream")

    @transition(from_state="collecting", when=("inp", "Item"), cost=0.5)
    def collect(self, interaction) -> None:
        self.variables["received"] = self.variables.get("received", 0) + 1


def make_stage(cost: float):
    """A computation stage forwarding each item after ``cost`` work units."""

    class Stage(Module):
        ATTRIBUTE = ModuleAttribute.PROCESS
        STATES = ("working",)
        inp = ip("inp", WORK, role="downstream")
        out = ip("out", WORK, role="upstream")

        @transition(from_state="working", when=("inp", "Item"), cost=cost)
        def process(self, interaction) -> None:
            self.output("out", "Item", sequence=interaction.param("sequence"))

    Stage.__name__ = f"Stage{int(cost * 10)}"
    return Stage


class PipelineSystem(Module):
    """System module wiring source -> stage(s) -> sink according to variables."""

    ATTRIBUTE = ModuleAttribute.SYSTEMPROCESS
    STATES = ("running",)

    def initialise(self) -> None:
        super().initialise()
        stage_costs = self.variables["stage_costs"]
        source = self.create_child(Source, "source", items=self.variables.get("items", ITEMS))
        previous_out = source.ip_named("out")
        for index, cost in enumerate(stage_costs):
            stage = self.create_child(make_stage(cost), f"stage-{index}")
            previous_out.connect_to(stage.ip_named("inp"))
            previous_out = stage.ip_named("out")
        sink = self.create_child(Sink, "sink")
        previous_out.connect_to(sink.ip_named("inp"))


def run_pipeline(stage_costs):
    spec = Specification("pipeline")
    spec.add_system_module(PipelineSystem, "line", location="ksr1", stage_costs=list(stage_costs), items=ITEMS)
    spec.validate()
    cluster = Cluster()
    cluster.add(Machine("ksr1", PROCESSORS))
    metrics, _ = run_specification(spec, cluster, mapping=ThreadPerModuleMapping())
    assert spec.find("line/sink").variables.get("received") == ITEMS
    return metrics


def reproduce_pipeline_split():
    record = ExperimentRecord(
        experiment_id="E8",
        title="Integrated module vs two-stage module pipeline",
        paper_claim="splitting pays off only for long-running computations; for small processing "
        "times the extra synchronisation dominates",
    )
    results = {}
    for computation in COMPUTATION_SWEEP:
        integrated = run_pipeline([computation])
        split = run_pipeline([computation / 2.0, computation / 2.0])
        results[computation] = (integrated, split)
        gain = integrated.elapsed_time / split.elapsed_time if split.elapsed_time else 1.0
        record.add_row(
            per_item_cost=computation,
            integrated_elapsed=round(integrated.elapsed_time, 1),
            split_elapsed=round(split.elapsed_time, 1),
            split_gain=round(gain, 2),
            split_extra_sync=round(split.sync_time - integrated.sync_time, 1),
            worth_splitting="yes" if gain >= 1.2 else "no",
        )
    print_experiment(record)
    return results


class TestPipelineSplit:
    def test_split_only_pays_for_long_computations(self, benchmark):
        results = benchmark.pedantic(reproduce_pipeline_split, rounds=1, iterations=1)
        smallest = COMPUTATION_SWEEP[0]
        largest = COMPUTATION_SWEEP[-1]
        integrated_small, split_small = results[smallest]
        integrated_large, split_large = results[largest]
        ratio_small = integrated_small.elapsed_time / split_small.elapsed_time
        ratio_large = integrated_large.elapsed_time / split_large.elapsed_time
        # For cheap computations splitting is not worth it: the gain is marginal
        # while the extra module boundary costs real synchronisation work ...
        assert ratio_small < 1.2
        assert split_small.sync_time > integrated_small.sync_time
        # ... for long-running computations the pipeline clearly wins.
        assert ratio_large > 1.5
        # And the benefit grows with the module's computation time.
        assert ratio_large > ratio_small
