"""F2 — Figure 2: the example configuration.

Figure 2 shows MCAM clients on single-processor workstations controlling
CM streams served by MCAM server entities that all run on the KSR1, with the
control connections over the OSI stack and the CM streams over MTP.  The
benchmark builds that configuration (two client workstations, server entities
on a multi-processor machine), runs a video-on-demand workload on every
client concurrently and reports per-client control latency and stream QoS.
"""

from __future__ import annotations

import pytest

from repro.harness import ExperimentRecord, print_experiment
from repro.mcam import MovieSystem


CLIENTS = 2


def reproduce_figure2():
    system = MovieSystem(
        clients=CLIENTS,
        stack="generated",
        server_processors=16,
        client_locations=[f"client-ws-{i + 1}" for i in range(CLIENTS)],
    )
    rows = []
    playbacks = []
    for index in range(CLIENTS):
        client = system.client(index)
        before = system.metrics.elapsed_time
        client.connect()
        client.create_movie(f"fig2-movie-{index}", duration_seconds=1, frame_rate=25)
        client.select_movie(f"fig2-movie-{index}")
        control_time = system.metrics.elapsed_time - before
        playback = client.play()
        playbacks.append(playback)
        client.stop(playback.stream_id)
        client.release()
        rows.append(
            {
                "client": f"client-{index} @ client-ws-{index + 1}",
                "control work units": round(control_time, 1),
                "stream frames": f"{playback.frames_delivered}/{playback.frames_sent}",
                "mean delay (ms)": round(playback.qos.mean_delay_ms, 2),
                "jitter (ms)": round(playback.qos.jitter_ms, 3),
                "throughput (kbit/s)": round(playback.qos.throughput_kbps, 1),
            }
        )
    record = ExperimentRecord(
        experiment_id="F2",
        title="Example configuration: clients on workstations, server entities on the KSR1",
        paper_claim="2 clients / 3 server entities; control over OSI, CM streams over MTP",
        rows=rows,
        notes=f"server entities: {CLIENTS}; cross-machine control messages: "
        f"{system.metrics.messages_cross_machine}",
    )
    print_experiment(record)
    return system, playbacks


class TestFigure2:
    def test_configuration(self, benchmark):
        system, playbacks = benchmark.pedantic(reproduce_figure2, rounds=1, iterations=1)
        # Every client completed its session and received its stream.
        assert len(playbacks) == CLIENTS
        for playback in playbacks:
            assert playback.response["status"] == "success"
            assert playback.frames_delivered == playback.frames_sent
        # The control connections really crossed machines (client ws -> KSR1).
        assert system.metrics.messages_cross_machine > 0
        # Each client got its own server entity (per-connection parallelism).
        for index in range(CLIENTS):
            mca = system.specification.find(f"server/entity-{index}/mca")
            assert mca.variables["requests_handled"] > 0
