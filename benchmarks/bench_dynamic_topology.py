"""E-DYN — dynamic module topology: the mcam_sessions workload.

ISSUE 5's before/after: the runtime always had ``Module.create_child`` /
``release_child`` and the planner always had a structure-epoch rebuild path,
but no ``.estelle`` text could reach them — dynamic topology was dead-on-
arrival machinery.  This benchmark runs ``examples/specs/mcam_sessions.
estelle`` — the paper's MCAM videoconference model: a manager spawning and
releasing per-call session handler modules through the new ``init`` /
``release`` statements and an interaction-point array — and records:

* the **dynamic story**: how many handler modules were spawned and released,
  that a released variable was re-inited under a fresh deterministic name,
  and the planner's structure-epoch/rebuild accounting (rebuild count must
  equal epoch bumps + the initial build on this workload);
* the **dynamic equivalence matrix**: {in-process, multiprocess} ×
  {table-driven, generated, planner} on the dynamic workload, all required
  byte-identical — a dynamically created child runs on its parent's
  execution unit in the multiprocess backend, so even ``unit_id`` and
  ``machine`` trace fields must agree;
* round-loop wall-clock per cell, so the cost of topology replay on the
  multiprocess round protocol stays visible.

``benchmarks/run_all.py`` consolidates the record under ``dynamic_topology``
in ``BENCH_results.json`` and fails on any trace divergence.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.harness import ExperimentRecord, print_experiment
from repro.runtime import (
    GroupedMapping,
    InProcessBackend,
    MultiprocessBackend,
    SpecSource,
    dispatch_by_name,
)
from repro.runtime.executor import SpecificationExecutor
from repro.runtime.parallel import trace_diff
from repro.sim import Cluster, Machine

SPEC_PATH = Path(__file__).parent.parent / "examples" / "specs" / "mcam_sessions.estelle"
DISPATCHES = ("table-driven", "generated", "planner")


def build_cluster(processors: int = 2) -> Cluster:
    cluster = Cluster()
    for name in ("ksr1", "client-ws-1", "client-ws-2"):
        cluster.add(Machine(name, processors))
    return cluster


def dynamic_report() -> dict:
    """The dynamic-topology story on the in-process planner executor."""
    specification = SpecSource.from_estelle_file(SPEC_PATH).build()
    executor = SpecificationExecutor(
        specification,
        build_cluster(),
        mapping=GroupedMapping(),
        dispatch=dispatch_by_name("planner"),
        trace=True,
    )
    executor.run()
    planner = executor.planner
    fired_paths = [e.module_path for e in executor.trace.all_firings()]
    dynamic_paths = sorted({p for p in fired_paths if "#" in p})
    spawned = {
        e.transition_name for e in executor.trace.all_firings()
    } & {"accept_1", "accept_2"}
    releases = sum(
        1
        for e in executor.trace.all_firings()
        if e.transition_name in ("close_1", "close_2")
    )
    epoch = planner.tracker.structure_epoch
    return {
        "dynamic_module_paths": dynamic_paths,
        "reinited_serial_paths": [p for p in dynamic_paths if p.endswith("#2")],
        "sessions_released": releases,
        "structure_epoch_bumps": epoch,
        "planner_rebuilds": planner.stats.rebuilds,
        # On this workload every epoch bump lands between two plans, so the
        # rebuild count must track the epochs exactly (+1 initial build).
        "rebuilds_track_epochs": planner.stats.rebuilds == epoch + 1,
        "spawn_transitions_seen": sorted(spawned),
        "deadlocked": executor.deadlocked,
    }


def dynamic_matrix() -> dict:
    """{in-process, multiprocess} × dispatch on the dynamic workload."""
    source = SpecSource.from_estelle_file(SPEC_PATH)
    cells = []
    all_identical = True
    reference = None
    for dispatch in DISPATCHES:
        for backend_name, backend in (
            ("in-process", InProcessBackend()),
            ("multiprocess", MultiprocessBackend()),
        ):
            started = time.perf_counter()
            result = backend.execute(
                source, build_cluster(), mapping=GroupedMapping(), dispatch=dispatch
            )
            wall_ms = (time.perf_counter() - started) * 1e3
            if reference is None:
                reference = result.trace
            divergence = trace_diff(reference, result.trace)
            cells.append(
                {
                    "backend": backend_name,
                    "dispatch": dispatch,
                    "rounds": result.rounds,
                    "transitions_fired": result.transitions_fired,
                    "simulated_time": result.simulated_time,
                    "wall_ms": wall_ms,
                    "traces_identical": divergence is None,
                    "trace_divergence": divergence,
                }
            )
            all_identical = all_identical and divergence is None
    return {"cells": cells, "all_traces_identical": all_identical}


def dynamic_topology_results() -> dict:
    """The record ``benchmarks/run_all.py`` writes into BENCH_results.json."""
    record = ExperimentRecord(
        experiment_id="E-DYN",
        title="Dynamic topology: MCAM session handlers spawned and released",
        paper_claim="the MCAM model attaches a dedicated handler module to "
        "every multimedia call; Estelle init/release must reach the runtime "
        "and stay trace-equivalent across backends",
    )
    report = dynamic_report()
    matrix = dynamic_matrix()
    record.add_row(
        dynamic_modules=len(report["dynamic_module_paths"]),
        sessions_released=report["sessions_released"],
        epoch_bumps=report["structure_epoch_bumps"],
        rebuilds_track_epochs=report["rebuilds_track_epochs"],
        matrix_identical=matrix["all_traces_identical"],
        matrix_cells=len(matrix["cells"]),
    )
    print_experiment(record)
    return {
        "workload": "examples/specs/mcam_sessions.estelle",
        "dynamic": report,
        "matrix": matrix,
    }


class TestDynamicTopologyBench:
    def test_dynamic_story(self, benchmark):
        report = benchmark.pedantic(dynamic_report, rounds=1, iterations=1)
        assert not report["deadlocked"]
        # Three sessions across the run: two first calls plus the re-dial.
        assert len(report["dynamic_module_paths"]) == 3
        assert report["reinited_serial_paths"]  # alice's second call: s1#2
        assert report["sessions_released"] == 3
        assert report["structure_epoch_bumps"] == 6  # 3 inits + 3 releases
        assert report["rebuilds_track_epochs"], report

    def test_dynamic_matrix_byte_identical(self, benchmark):
        matrix = benchmark.pedantic(dynamic_matrix, rounds=1, iterations=1)
        failures = [c for c in matrix["cells"] if not c["traces_identical"]]
        assert matrix["all_traces_identical"], failures
        assert len(matrix["cells"]) == 6  # 2 backends × 3 dispatches
        simulated = {round(c["simulated_time"], 9) for c in matrix["cells"]}
        assert len(simulated) == 1  # one shared clock reading everywhere
