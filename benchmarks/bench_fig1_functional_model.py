"""F1 — Figure 1: the MCAM functional model.

Figure 1 decomposes an MCAM entity into the Movie Control Agent plus three
user agents (DUA, SUA, EUA) talking to the directory level (DSAs), the CM
stream level (SPA/SPS) and the equipment level (ECA/ECS).  The benchmark
builds the full functional model, verifies every agent of the figure is
present and wired, and pushes one operation through each agent pair.
"""

from __future__ import annotations

import pytest

from repro.harness import ExperimentRecord, print_experiment
from repro.mcam import (
    DirectoryAgentModule,
    EquipmentAgentModule,
    MovieSystem,
    ServerMca,
    StreamAgentModule,
)


def build_and_exercise():
    system = MovieSystem(clients=1, stack="generated", server_processors=4)
    client = system.client(0)
    client.connect()
    client.create_movie("fig1-movie", duration_seconds=1)      # exercises SUA + DUA
    client.query_attributes(name="fig1-movie")                  # exercises DUA
    client.select_movie("fig1-movie")
    playback = client.play()                                    # exercises EUA + SUA + SPS
    client.stop(playback.stream_id)
    client.release()
    return system, playback


def reproduce_figure1():
    system, playback = build_and_exercise()
    entity = system.specification.find("server/entity-0")
    agent_rows = []
    for name, child in entity.children.items():
        agent_rows.append(
            {
                "module": name,
                "class": type(child).__name__,
                "body": "external (hand-coded)" if child.EXTERNAL else "Estelle transitions",
                "fired/stepped": child.fired_count,
            }
        )
    record = ExperimentRecord(
        experiment_id="F1",
        title="MCAM functional model (agents of one server entity)",
        paper_claim="MCAM = MCA + DUA + SUA + EUA over directory, stream and equipment systems",
        rows=agent_rows,
        notes=(
            f"directory: {system.directory_summary()} | "
            f"equipment commands: {system.context.eca.commands_handled} | "
            f"stream frames delivered: {playback.frames_delivered}/{playback.frames_sent}"
        ),
    )
    print_experiment(record)
    return system, playback


class TestFigure1:
    def test_functional_model(self, benchmark):
        system, playback = benchmark.pedantic(reproduce_figure1, rounds=1, iterations=1)
        entity = system.specification.find("server/entity-0")
        # All four agents of Fig. 1 exist, with the paper's Estelle/external split.
        assert isinstance(entity.children["mca"], ServerMca)
        assert isinstance(entity.children["dua"], DirectoryAgentModule)
        assert isinstance(entity.children["sua"], StreamAgentModule)
        assert isinstance(entity.children["eua"], EquipmentAgentModule)
        assert not entity.children["mca"].EXTERNAL
        assert all(entity.children[a].EXTERNAL for a in ("dua", "sua", "eua"))
        # Every agent did work during the session.
        assert all(entity.children[a].requests_handled > 0 for a in ("dua", "sua", "eua"))
        # The directory, equipment and stream substrates were all reached.
        assert system.directory_summary()["entries"] >= 2
        assert system.context.eca.commands_handled > 0
        assert playback.frames_delivered > 0
